"""repro — reproduction of Masson & Midonnet (2007).

*The Design and Implementation of Real-time Event-based Applications
with RTSJ* (WPDRTS / IPDPS 2007).

Subpackages
-----------
``repro.core``
    The paper's contribution: the Task Server Framework (servable
    events, abstract task server, Polling and Deferrable policies,
    Section 7's O(1) on-line response-time machinery).
``repro.rtsj``
    The emulated RTSJ substrate: a deterministic virtual-time runtime
    with realtime threads, async events, timers, ``Timed`` asynchronous
    transfer of control and a calibrated overhead model.
``repro.sim``
    RTSS, the discrete-event real-time system simulator: FP / EDF /
    D-OVER scheduling, six ideal aperiodic-server policies, temporal
    diagrams and the AART/AIR/ASR metrics.
``repro.analysis``
    Off-line feasibility: exact RTA, server-aware analysis (PS as a
    periodic task, DS double hit), utilization bounds, and the
    decentralised ``getInterference()`` design.
``repro.workload``
    The random real-time system generator (platform-independent
    streams, the paper's Section 6.1 parameters).
``repro.experiments``
    Harness regenerating every table and figure of the evaluation.
``repro.faults``
    Fault injection (WCET overruns, bursts, jitter, drops, timer drift),
    cost-overrun enforcement policies and the deadline-miss watchdog —
    the overload-resilience layer.
"""

from . import analysis, core, experiments, faults, rtsj, sim, workload

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "experiments",
    "faults",
    "rtsj",
    "sim",
    "workload",
    "__version__",
]
