"""Gate the engine-throughput fast path against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py \
        --benchmark-json=bench-results.json -q
    python benchmarks/check_bench_regression.py bench-results.json

Reads the ``guards`` section of ``benchmarks/BENCH_engine.json``.  Each
guard names a fast-path benchmark and its default-kernel companion from
the *same* pytest-benchmark run and requires the fast/default median
ratio to stay under ``max_ratio`` (the baseline ratio plus 25%).
Comparing a ratio measured within one process keeps the gate meaningful
across machines and noisy CI runners, where absolute millisecond
baselines are not.
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).with_name("BENCH_engine.json")


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    results = json.loads(pathlib.Path(argv[1]).read_text())
    baseline = json.loads(BASELINE.read_text())
    medians = {
        bench["name"]: bench["stats"]["median"]
        for bench in results["benchmarks"]
    }
    failures = 0
    for guard in baseline["guards"]:
        fast, default = guard["fast"], guard["default"]
        if fast not in medians or default not in medians:
            print(f"SKIP  {fast}: benchmark missing from results")
            continue
        ratio = medians[fast] / medians[default]
        verdict = "ok" if ratio <= guard["max_ratio"] else "REGRESSION"
        print(
            f"{verdict:>10}  {fast}: fast/default median ratio "
            f"{ratio:.3f} (baseline {guard['baseline_ratio']:.3f}, "
            f"max {guard['max_ratio']:.3f})"
        )
        if ratio > guard["max_ratio"]:
            failures += 1
    if failures:
        print(f"\n{failures} guard(s) regressed by more than 25%")
        return 1
    print("\nall benchmark guards within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
