"""Shard router (PR 8): idempotency, overrides, breakers, retries."""

from __future__ import annotations

import asyncio

import pytest

from repro.fabric import AdmissionFabric, FabricClient, FabricConfig
from repro.service import Decision, EventRequest, ServiceConfig

CONFIG = ServiceConfig(capacity=2.0, period=2.0, detector=None)


def _fabric(shards: int = 2, sources: int = 4,
            **kw) -> AdmissionFabric:
    fabric_config = FabricConfig(
        shards=shards,
        sources=tuple(f"src-{i}" for i in range(sources)),
        supervised=False, **kw,
    )
    return AdmissionFabric(fabric_config, CONFIG)


def _req(rid: str, source: str = "src-0", cost: float = 0.5,
         deadline: float = 40.0, **kw) -> EventRequest:
    return EventRequest(request_id=rid, cost=cost,
                        relative_deadline=deadline, source=source, **kw)


class TestRouting:
    def test_requests_route_by_source_placement(self):
        async def scenario():
            fabric = await _fabric().start()
            for i in range(4):
                source = f"src-{i}"
                ticket = await fabric.router.submit(
                    _req(f"r{i}", source=source)
                )
                assert ticket.admitted
                home = fabric.placement.shard_for(source)
                assert f"r{i}" in fabric.shards[home].service.planner.jobs
            await fabric.drain()

        asyncio.run(scenario())

    def test_duplicate_submission_replays_cached_ticket(self):
        async def scenario():
            fabric = await _fabric().start()
            first = await fabric.router.submit(_req("dup"))
            again = await fabric.router.submit(_req("dup"))
            assert first.admitted
            assert again.duplicate and again.decision is first.decision
            assert fabric.router.deduplicated == 1
            # the shard saw the request exactly once
            home = fabric.placement.shard_for("src-0")
            assert fabric.shards[home].service.submitted == 1
            await fabric.drain()

        asyncio.run(scenario())

    def test_dead_shard_is_unreachable_and_retryable(self):
        async def scenario():
            fabric = await _fabric().start()
            home = fabric.placement.shard_for("src-0")
            fabric.kill_shard(home)
            ticket = await fabric.router.submit(_req("r0"))
            assert ticket.decision is Decision.REJECT_UNREACHABLE
            assert ticket.retryable
            assert fabric.router.unreachable == 1
            await fabric.drain()

        asyncio.run(scenario())

    def test_override_reroutes_source_to_sibling(self):
        async def scenario():
            fabric = await _fabric().start()
            home = fabric.placement.shard_for("src-0")
            sibling = (home + 1) % 2
            fabric.kill_shard(home)
            fabric.router.set_override("src-0", sibling)
            ticket = await fabric.router.submit(_req("r0"))
            assert ticket.admitted
            assert "r0" in fabric.shards[sibling].service.planner.jobs
            assert fabric.router.failover_routed == 1
            assert fabric.failover_admits == [("r0", sibling)]
            await fabric.drain()

        asyncio.run(scenario())

    def test_brown_out_sheds_optional_and_defers_the_rest(self):
        async def scenario():
            fabric = await _fabric().start()
            fabric.router.set_override("src-0", None)
            optional = await fabric.router.submit(
                _req("opt", optional=True)
            )
            required = await fabric.router.submit(_req("must"))
            assert optional.decision is Decision.REJECT_DEGRADED
            assert required.decision is Decision.REJECT_UNREACHABLE
            assert optional.retryable and required.retryable
            assert fabric.router.browned_out == 2
            await fabric.drain()

        asyncio.run(scenario())

    def test_clear_overrides_rehomes_only_that_shard(self):
        async def scenario():
            fabric = await _fabric(shards=3, sources=6).start()
            on_zero = fabric.sources_homed_on(0)
            on_one = fabric.sources_homed_on(1)
            assert on_zero and on_one
            for source in on_zero:
                fabric.router.set_override(source, 1)
            for source in on_one:
                fabric.router.set_override(source, 2)
            cleared = fabric.router.clear_overrides_for(0)
            assert sorted(cleared) == sorted(on_zero)
            for source in on_zero:
                assert fabric.router.shard_for(source) == 0
            for source in on_one:
                assert fabric.router.shard_for(source) == 2
            await fabric.drain()

        asyncio.run(scenario())

    def test_hammering_a_dead_shard_opens_its_breaker(self):
        async def scenario():
            fabric = await _fabric().start()
            home = fabric.placement.shard_for("src-0")
            fabric.kill_shard(home)
            breaker = fabric.router.breaker_for(home)
            assert breaker is not None
            for i in range(breaker.config.failure_threshold + 2):
                await fabric.router.submit(_req(f"r{i}"))
            assert breaker.is_open
            # an open breaker refuses before touching the shard
            ticket = await fabric.router.submit(_req("after"))
            assert ticket.decision is Decision.REJECT_UNREACHABLE
            assert "breaker open" in ticket.detail or "dead" in ticket.detail
            await fabric.drain()

        asyncio.run(scenario())


class TestFabricClient:
    def test_client_retries_through_a_restored_override(self):
        async def scenario():
            fabric = await _fabric().start()
            home = fabric.placement.shard_for("src-0")
            sibling = (home + 1) % 2
            fabric.kill_shard(home)
            client = FabricClient(fabric.router, seed=3)

            async def fail_over_soon():
                await fabric.clock.sleep(0.1)
                fabric.router.set_override("src-0", sibling)

            helper = asyncio.create_task(fail_over_soon())
            submit = asyncio.create_task(client.submit(_req("r0")))
            await asyncio.sleep(0)   # first attempt + sleeps register
            await fabric.clock.advance(30.0)
            ticket = await submit
            await helper
            assert ticket.admitted
            assert ticket.attempt > 1
            assert client.retries >= 1
            await fabric.drain()

        asyncio.run(scenario())

    def test_client_gives_up_after_max_attempts(self):
        async def scenario():
            fabric = await _fabric().start()
            fabric.kill_shard(fabric.placement.shard_for("src-0"))
            client = FabricClient(fabric.router, seed=3, max_attempts=2)
            submit = asyncio.create_task(client.submit(_req("r0")))
            await asyncio.sleep(0)   # first attempt + sleeps register
            await fabric.clock.advance(60.0)
            ticket = await submit
            assert ticket.decision is Decision.REJECT_UNREACHABLE
            assert ticket.attempt == 2
            await fabric.drain()

        asyncio.run(scenario())

    def test_invalid_max_attempts_rejected(self):
        async def scenario():
            fabric = _fabric()
            with pytest.raises(ValueError):
                FabricClient(fabric.router, max_attempts=0)

        asyncio.run(scenario())
