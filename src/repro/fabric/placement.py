"""Source → shard placement on the SMP bin-packing machinery.

Each fabric shard is a capacity-isolated admission server on its own
logical core (the Nogueira & Pinho server-per-core shape), so mapping
client *sources* onto shards is exactly the partitioned-placement
problem :func:`repro.smp.partition.partition_tasks` already solves:
model every source as a pseudo periodic task whose utilization is its
expected demand share, reserve per-shard headroom for failover
takeovers, and bin-pack with a decreasing-utilization heuristic
(worst-fit by default — the balanced placement, so no shard starts the
storm hot).

The mapping must be *consistent*: every router instance derives the
same source → shard assignment from the same inputs, and sources the
placement has never seen hash onto shards deterministically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from ..smp.partition import Partition, PartitionError, partition_tasks
from ..workload.spec import PeriodicTaskSpec

__all__ = ["SourcePlacement", "place_sources"]

_EPS = 1e-9


@dataclass(frozen=True)
class SourcePlacement:
    """A consistent assignment of client sources onto fabric shards."""

    n_shards: int
    heuristic: str
    #: declared source -> shard index
    shard_of: dict[str, int] = field(default_factory=dict)
    #: the underlying bin-packing, when one was computed (``None`` after
    #: the round-robin fallback for unpackable weight vectors)
    partition: Partition | None = None

    def shard_for(self, source: str) -> int:
        """The home shard of ``source``; undeclared sources hash on."""
        shard = self.shard_of.get(source)
        if shard is not None:
            return shard
        return zlib.crc32(source.encode("utf-8")) % self.n_shards

    def sources_on(self, shard: int) -> list[str]:
        """Declared sources homed on ``shard``, sorted."""
        return sorted(s for s, k in self.shard_of.items() if k == shard)


def place_sources(
    sources: list[str] | tuple[str, ...],
    n_shards: int,
    heuristic: str = "wf",
    weights: dict[str, float] | None = None,
    reserve: float = 0.1,
) -> SourcePlacement:
    """Pack ``sources`` onto ``n_shards`` shards by expected demand.

    ``weights`` gives each source's relative demand share (uniform when
    omitted); ``reserve`` is the per-shard utilization headroom kept
    free for failover takeovers, exactly like the per-core aperiodic
    server reserve in the SMP partitioner.  Weight vectors are scaled
    to fit comfortably inside the reserved bound; a vector no heuristic
    can pack (degenerate weights) falls back to deterministic
    round-robin rather than refusing the fabric.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    names = list(dict.fromkeys(sources))
    if not names:
        return SourcePlacement(n_shards=n_shards, heuristic=heuristic)
    if weights is None:
        weights = {name: 1.0 for name in names}
    raw = [max(float(weights.get(name, 1.0)), _EPS) for name in names]
    total = sum(raw)
    shares = [w / total for w in raw]
    room = 1.0 - reserve
    # scale so the heaviest source fits one shard and the total fills at
    # most half the fabric — worst-fit decreasing then always packs
    scale = min(n_shards * room / 2.0, room / max(shares)) * (1.0 - _EPS)
    tasks = [
        PeriodicTaskSpec(
            name=name, cost=max(share * scale, _EPS), period=1.0,
            priority=index,
        )
        for index, (name, share) in enumerate(zip(names, shares))
    ]
    try:
        partition = partition_tasks(
            tasks, n_shards, heuristic=heuristic, capacity=1.0,
            reserve=reserve,
        )
    except PartitionError:
        return SourcePlacement(
            n_shards=n_shards, heuristic="round-robin",
            shard_of={
                name: index % n_shards for index, name in enumerate(names)
            },
        )
    return SourcePlacement(
        n_shards=n_shards, heuristic=heuristic,
        shard_of=dict(partition.core_of), partition=partition,
    )
