"""Regenerates Table 4: Deferrable Server *simulations* (ideal policy).

The paper's central comparison is asserted: the DS beats the PS on
average response time on every set, and serves at least as much.
"""

from __future__ import annotations

from conftest import run_table_benchmark, run_arm


def bench_table4_deferrable_simulations(benchmark):
    measured = run_table_benchmark(benchmark, 4)
    assert all(m.air == 0.0 for m in measured.values())
    ps = run_arm("ps_sim")
    assert all(measured[k].aart < ps[k].aart for k in measured)
    assert all(measured[k].asr >= ps[k].asr for k in measured)
