"""Descriptors for generated real-time systems.

These are plain data carriers shared by the simulator arm (``repro.sim``)
and the execution arm (``repro.core`` on the emulated RTSJ VM) of the
evaluation, so that both arms consume byte-identical workloads.

Time values are expressed in *time units* (tu); the paper equates one tu
with one millisecond on its testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AperiodicEventSpec",
    "PeriodicTaskSpec",
    "ServerSpec",
    "GeneratedSystem",
    "GenerationParameters",
]


@dataclass(frozen=True)
class AperiodicEventSpec:
    """One aperiodic event: a release time and a handler cost.

    ``declared_cost`` is the cost the system designer registers with the
    task server (used by admission and by ``chooseNextEvent``);
    ``actual_cost`` is the execution time the handler really consumes.
    The paper's Scenario 3 (Figure 4) exercises the case where the two
    differ; the random campaign keeps them equal.
    """

    event_id: int
    release: float
    declared_cost: float
    actual_cost: float | None = None

    def __post_init__(self) -> None:
        if self.release < 0:
            raise ValueError(f"release must be >= 0, got {self.release}")
        if self.declared_cost <= 0:
            raise ValueError(f"declared_cost must be > 0, got {self.declared_cost}")
        if self.actual_cost is not None and self.actual_cost <= 0:
            raise ValueError(f"actual_cost must be > 0, got {self.actual_cost}")

    @property
    def cost(self) -> float:
        """The execution time the handler really consumes."""
        return self.actual_cost if self.actual_cost is not None else self.declared_cost


@dataclass(frozen=True)
class PeriodicTaskSpec:
    """A hard periodic task (cost, period, priority, optional deadline).

    ``cost`` is the *declared* WCET the analysis and enforcement budget
    against; ``actual_cost`` (when set, e.g. by a
    :class:`~repro.faults.injectors.WcetOverrun` injector) is the
    execution time each activation really consumes.
    """

    name: str
    cost: float
    period: float
    priority: int
    deadline: float | None = None
    offset: float = 0.0
    actual_cost: float | None = None

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"cost must be > 0, got {self.cost}")
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.cost > self.period:
            raise ValueError(
                f"cost {self.cost} exceeds period {self.period} for task {self.name!r}"
            )
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")
        if self.actual_cost is not None and self.actual_cost <= 0:
            raise ValueError(
                f"actual_cost must be > 0, got {self.actual_cost}"
            )

    @property
    def execution_cost(self) -> float:
        """The execution time an activation really consumes."""
        return self.actual_cost if self.actual_cost is not None else self.cost

    @property
    def effective_deadline(self) -> float:
        """Deadline, defaulting to the period (implicit-deadline model)."""
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilization(self) -> float:
        """Processor share cost/period."""
        return self.cost / self.period


@dataclass(frozen=True)
class ServerSpec:
    """A task server: capacity replenished every period, at a priority."""

    capacity: float
    period: float
    priority: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.capacity > self.period:
            raise ValueError(
                f"capacity {self.capacity} exceeds period {self.period}"
            )

    @property
    def utilization(self) -> float:
        """Processor share capacity/period."""
        return self.capacity / self.period


@dataclass(frozen=True)
class GenerationParameters:
    """The knobs of the paper's random system generator (Section 6.1).

    The tuple notation of the paper — e.g. ``(1, 3, 0, 4, 6, 10, 1983)`` —
    maps positionally onto the first seven fields below.
    """

    task_density: float
    average_cost: float
    std_deviation: float
    server_capacity: float
    server_period: float
    nb_generation: int
    seed: int
    horizon_periods: int = 10
    min_cost: float = 0.1

    def __post_init__(self) -> None:
        if self.task_density <= 0:
            raise ValueError(f"task_density must be > 0, got {self.task_density}")
        if self.average_cost <= 0:
            raise ValueError(f"average_cost must be > 0, got {self.average_cost}")
        if self.std_deviation < 0:
            raise ValueError(
                f"std_deviation must be >= 0, got {self.std_deviation}"
            )
        if self.nb_generation <= 0:
            raise ValueError(f"nb_generation must be > 0, got {self.nb_generation}")
        if self.horizon_periods <= 0:
            raise ValueError(
                f"horizon_periods must be > 0, got {self.horizon_periods}"
            )
        if self.min_cost <= 0:
            raise ValueError(f"min_cost must be > 0, got {self.min_cost}")
        # ServerSpec validation happens in server(); here we just sanity-check.
        if self.server_capacity <= 0 or self.server_period <= 0:
            raise ValueError("server capacity and period must be > 0")

    @classmethod
    def from_tuple(cls, tup: tuple, **kwargs) -> "GenerationParameters":
        """Build from the paper's positional 7-tuple notation."""
        if len(tup) != 7:
            raise ValueError(f"expected a 7-tuple, got length {len(tup)}")
        return cls(*tup, **kwargs)

    def server(self, priority: int = 0) -> ServerSpec:
        """The server every generated system runs with."""
        return ServerSpec(
            capacity=self.server_capacity,
            period=self.server_period,
            priority=priority,
        )

    @property
    def horizon(self) -> float:
        """Observation window length: ``horizon_periods`` server periods."""
        return self.horizon_periods * self.server_period


@dataclass(frozen=True)
class GeneratedSystem:
    """One generated system: a server plus a finite aperiodic arrival trace.

    ``periodic_tasks`` is empty for the paper's campaign (the server runs
    at the highest priority, so lower-priority periodic load cannot affect
    the aperiodic metrics in the ideal model), but the field is carried so
    the same descriptor drives richer scenarios.
    """

    system_id: int
    server: ServerSpec
    events: tuple[AperiodicEventSpec, ...]
    horizon: float
    periodic_tasks: tuple[PeriodicTaskSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        releases = [e.release for e in self.events]
        if releases != sorted(releases):
            raise ValueError("events must be sorted by release time")

    @property
    def event_count(self) -> int:
        """Number of aperiodic events released within the horizon."""
        return len(self.events)

    @property
    def total_demand(self) -> float:
        """Sum of the actual costs of all events."""
        return sum(e.cost for e in self.events)
