"""The incremental planner: O(1) admission, in-place schedule repair.

Also pins the :class:`~repro.core.admission.BucketLedger` tail-reset
semantics a long-running service depends on: completed work releases
its claim once the backlog empties, so predictions do not drift
monotonically into the future.
"""

from __future__ import annotations

import pytest

from repro.core.admission import BucketLedger
from repro.service.planner import IncrementalPlanner
from repro.service.requests import EventRequest


def _req(rid: str, cost: float = 1.0, deadline: float = 20.0,
         **kw) -> EventRequest:
    return EventRequest(request_id=rid, cost=cost,
                        relative_deadline=deadline, **kw)


class TestLedger:
    def test_mid_instance_arrival_joins_next_instance(self):
        ledger = BucketLedger(capacity=2.0, period=5.0)
        slot = ledger.peek(now=1.0, cost=1.0)
        assert slot.instance == 1
        assert slot.finish == pytest.approx(5.0 + 1.0)

    def test_bucket_overflow_spills_to_next(self):
        ledger = BucketLedger(capacity=2.0, period=5.0)
        ledger.admit(0.0, 1.5)
        slot = ledger.peek(0.0, 1.0)   # 1.5 + 1.0 > capacity 2.0
        assert slot.instance == 1

    def test_release_with_outstanding_work_keeps_tail(self):
        ledger = BucketLedger(capacity=2.0, period=5.0)
        ledger.admit(0.0, 1.0)
        ledger.admit(0.0, 1.0)
        tail_before = ledger.state()["tail_instance"]
        ledger.release(1.0)
        assert ledger.state()["tail_instance"] == tail_before
        assert ledger.backlog_count == 1

    def test_empty_backlog_resets_tail(self):
        """Regression: a long-running service's admit/retire cycles must
        not push the tail (and every future prediction) to infinity."""
        ledger = BucketLedger(capacity=2.0, period=2.0)
        for i in range(500):
            slot = ledger.admit(now=i * 0.01, cost=1.0)
            ledger.release(1.0)
        final = ledger.peek(now=5.0, cost=1.0)
        assert final.finish <= 5.0 + 2.0 + 1.0 + 1e-9


class TestAdmit:
    def test_admit_and_predict(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        job, finish = planner.admit(0.0, _req("a", cost=1.0))
        assert job is not None
        assert finish == job.predicted_finish
        assert planner.backlog == 1

    def test_duplicate_id_raises(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        planner.admit(0.0, _req("a"))
        with pytest.raises(KeyError):
            planner.admit(0.0, _req("a"))

    def test_reject_on_deadline(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        # fill several buckets ahead
        for i in range(6):
            assert planner.admit(0.0, _req(f"f{i}", cost=2.0,
                                           deadline=60.0))[0]
        job, finish = planner.admit(0.0, _req("late", cost=1.0,
                                              deadline=3.0))
        assert job is None
        assert finish > 3.0          # the prediction that sank it

    def test_reject_on_capacity_is_inf(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        job, finish = planner.admit(0.0, _req("big", cost=3.0))
        assert job is None and finish == float("inf")

    def test_retire_is_o1_and_frees(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        planner.admit(0.0, _req("a", cost=1.5))
        retired = planner.retire("a")
        assert retired.request.request_id == "a"
        assert planner.backlog == 0
        with pytest.raises(KeyError):
            planner.retire("a")


class TestRepair:
    def test_repair_rebuckets_in_edf_order(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        planner.admit(0.0, _req("late-dl", cost=1.0, deadline=50.0))
        planner.admit(0.0, _req("tight-dl", cost=1.0, deadline=10.0))
        result = planner.repair(now=2.0)
        assert result.moved == 2 and not result.shed
        assert (planner.jobs["tight-dl"].predicted_finish
                < planner.jobs["late-dl"].predicted_finish)

    def test_repair_sheds_infeasible(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        planner.admit(0.0, _req("keep", cost=1.0, deadline=100.0))
        planner.admit(0.0, _req("goner", cost=1.0, deadline=6.0))
        result = planner.repair(now=5.5)   # deadline 6 now unreachable
        assert result.shed == ["goner"]
        assert "goner" not in planner.jobs

    def test_repair_cost_tracks_backlog_not_horizon(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        for i in range(10):
            planner.admit(0.0, _req(f"j{i}", cost=0.5, deadline=1e6))
        early = planner.repair(now=1.0)
        late = planner.repair(now=100000.0)   # huge elapsed time
        assert early.moved == late.moved == 10

    def test_renegotiate_inflates_and_clamps(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        planner.admit(0.0, _req("a", cost=1.0, deadline=100.0))
        planner.renegotiate(now=1.0, inflation=1.5)
        assert planner.inflation == 1.5
        assert planner.jobs["a"].effective_cost == pytest.approx(1.5)
        planner.renegotiate(now=2.0, inflation=0.5)   # optimism clamped
        assert planner.inflation == 1.0
        with pytest.raises(ValueError):
            planner.renegotiate(now=3.0, inflation=0.0)

    def test_degrade_and_restore(self):
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        planner.admit(0.0, _req("a", cost=1.5, deadline=100.0))
        planner.degrade(now=1.0, scale=0.5)
        assert planner.effective_capacity == 1.0
        # 1.5 no longer fits a degraded instance: shed on the next repair
        assert "a" not in planner.jobs
        job, finish = planner.admit(2.0, _req("b", cost=1.5))
        assert job is None and finish == float("inf")
        planner.restore(now=3.0)
        assert planner.effective_capacity == 2.0
        assert planner.admit(3.0, _req("c", cost=1.5))[0] is not None
        with pytest.raises(ValueError):
            planner.degrade(now=4.0, scale=0.0)

    def test_state_is_canonical(self):
        a = IncrementalPlanner(capacity=2.0, period=2.0)
        b = IncrementalPlanner(capacity=2.0, period=2.0)
        for planner in (a, b):
            planner.admit(0.0, _req("x", cost=1.0))
            planner.admit(0.5, _req("y", cost=0.5, deadline=30.0))
            planner.repair(1.0)
        assert a.state() == b.state()
