"""The batched SoA kernel: bit-exactness, envelope, metric fold-back."""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.batch import (
    BatchTables,
    BatchUnsupported,
    ensure_batchable,
    simulate_batch,
)
from repro.experiments.campaign import simulate_system
from repro.sim.metrics import aggregate
from repro.sim.trace import TraceEventKind
from repro.workload.generator import PAPER_SETS, RandomSystemGenerator
from repro.workload.spec import (
    AperiodicEventSpec,
    GeneratedSystem,
    GenerationParameters,
    PeriodicTaskSpec,
)

SMALL_SETS = tuple(
    dataclasses.replace(s, nb_generation=3) for s in PAPER_SETS
)


def _random_systems(n: int, *, with_periodic: bool = True,
                    seed: int = 42) -> list[GeneratedSystem]:
    """``n`` random batchable systems: the paper's aperiodic stream with
    varied server shapes, optionally plus a few periodic tasks."""
    rnd = random.Random(seed)
    systems = []
    for sid in range(n):
        period = rnd.uniform(4.0, 10.0)
        params = GenerationParameters(
            task_density=rnd.choice([0.5, 1, 2, 3, 4]),
            average_cost=rnd.uniform(0.5, 5.0),
            std_deviation=rnd.choice([0.0, 1.0, 2.0]),
            server_capacity=rnd.uniform(0.5, period * 0.9),
            server_period=period,
            nb_generation=1,
            seed=1000 + sid,
        )
        base = RandomSystemGenerator(params).generate()[0]
        tasks = []
        if with_periodic:
            for t in range(rnd.randint(0, 3)):
                tperiod = rnd.uniform(5.0, 20.0)
                tasks.append(PeriodicTaskSpec(
                    name=f"t{t}",
                    cost=rnd.uniform(0.2, min(2.0, tperiod / 2)),
                    period=tperiod,
                    priority=t + 1,
                    offset=(
                        rnd.uniform(0.0, 5.0) if rnd.random() < 0.5 else 0.0
                    ),
                ))
        systems.append(GeneratedSystem(
            system_id=sid, server=base.server, events=base.events,
            horizon=base.horizon, periodic_tasks=tuple(tasks),
        ))
    return systems


class TestBitExactness:
    @pytest.mark.parametrize("policy", ["polling", "deferrable"])
    def test_paper_sets_match_reference_exactly(self, policy):
        for params in SMALL_SETS:
            systems = RandomSystemGenerator(params).generate()
            batch = simulate_batch(BatchTables.from_systems(systems), policy)
            for i, system in enumerate(systems):
                reference = simulate_system(system, policy=policy).metrics
                assert batch.run_metrics(i) == reference, (
                    f"set {params.task_density}/{params.std_deviation} "
                    f"system {i} diverged"
                )

    @pytest.mark.parametrize("policy", ["polling", "deferrable"])
    def test_random_population_matches_reference_exactly(self, policy):
        # >= 200 seeded random systems, periodic tasks included: AART,
        # AIR and ASR (and every individual response time) must be
        # bit-identical to the per-system reference kernel
        systems = _random_systems(200)
        batch = simulate_batch(BatchTables.from_systems(systems), policy)
        for i, system in enumerate(systems):
            reference = simulate_system(system, policy=policy).metrics
            got = batch.run_metrics(i)
            assert got.response_times == reference.response_times
            assert got.average_response_time == (
                reference.average_response_time
            )
            assert (got.released, got.served, got.interrupted) == (
                reference.released, reference.served, reference.interrupted
            )

    def test_set_metrics_folds_back_bit_identically(self):
        for params in SMALL_SETS[:2]:
            systems = RandomSystemGenerator(params).generate()
            batch = simulate_batch(
                BatchTables.from_systems(systems), "polling"
            )
            reference = aggregate([
                simulate_system(s, policy="polling").metrics
                for s in systems
            ])
            folded = batch.set_metrics()
            assert (folded.aart, folded.air, folded.asr) == (
                reference.aart, reference.air, reference.asr
            )


class TestEnvelope:
    def _system(self, **event_kwargs) -> GeneratedSystem:
        params = dataclasses.replace(PAPER_SETS[0], nb_generation=1)
        system = RandomSystemGenerator(params).generate()[0]
        if event_kwargs:
            first = dataclasses.replace(system.events[0], **event_kwargs)
            system = dataclasses.replace(
                system, events=(first,) + system.events[1:]
            )
        return system

    def test_plain_system_is_batchable(self):
        ensure_batchable(self._system(), "polling")

    def test_rejects_unknown_policy(self):
        with pytest.raises(BatchUnsupported, match="not batchable"):
            ensure_batchable(self._system(), "sporadic")

    def test_rejects_enforcement(self):
        from repro.faults.enforcement import EnforcementConfig

        with pytest.raises(BatchUnsupported, match="enforcement"):
            ensure_batchable(
                self._system(), "polling", enforcement=EnforcementConfig()
            )

    def test_rejects_overload_wiring(self):
        from repro.experiments.campaign import default_overload_config

        with pytest.raises(BatchUnsupported, match="overload"):
            ensure_batchable(
                self._system(), "polling",
                overload=default_overload_config(),
            )

    def test_rejects_verified_runs(self):
        with pytest.raises(BatchUnsupported, match="monitor"):
            ensure_batchable(self._system(), "polling", verify=True)

    def test_rejects_multicore(self):
        with pytest.raises(BatchUnsupported, match="multicore"):
            ensure_batchable(self._system(), "polling", cores=2)

    def test_rejects_faulted_event_costs(self):
        faulted = self._system(actual_cost=9.9)
        with pytest.raises(BatchUnsupported, match="actual cost"):
            ensure_batchable(faulted, "polling")

    def test_rejects_faulted_periodic_costs(self):
        system = self._system()
        system = dataclasses.replace(system, periodic_tasks=(
            PeriodicTaskSpec(name="t0", cost=1.0, period=10.0,
                             priority=1, actual_cost=2.0),
        ))
        with pytest.raises(BatchUnsupported, match="periodic task"):
            ensure_batchable(system, "polling")


class TestTables:
    def test_padding_and_shapes(self):
        systems = _random_systems(8, with_periodic=True)
        tables = BatchTables.from_systems(systems)
        assert tables.n_systems == 8
        assert tables.release.shape == tables.cost.shape
        assert tables.release.shape[1] == tables.max_events + 1
        for i, system in enumerate(systems):
            n = len(system.events)
            assert tables.n_events[i] == n
            assert np.all(np.isinf(tables.release[i, n:]))
            assert np.all(tables.cost[i, n:] == 0.0)
        # the padding column guarantees release[i, n_events[i]] is +inf
        assert np.all(np.isinf(
            tables.release[np.arange(8), tables.n_events]
        ))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="zero systems"):
            BatchTables.from_systems([])

    def test_scaled_costs_shape_checked(self):
        tables = BatchTables.from_systems(_random_systems(4))
        with pytest.raises(ValueError, match="shape"):
            tables.scaled_costs(np.ones(3))

    def test_scaled_costs_identity_and_growth(self):
        systems = _random_systems(6, with_periodic=False)
        tables = BatchTables.from_systems(systems)
        same = simulate_batch(
            tables.scaled_costs(np.ones(6)), "polling"
        ).metrics()
        assert same == simulate_batch(tables, "polling").metrics()
        # doubling demand can only serve fewer (or equal) jobs per system
        doubled = simulate_batch(
            tables.scaled_costs(np.full(6, 2.0)), "polling"
        ).metrics()
        assert all(
            d.served <= s.served for d, s in zip(doubled, same)
        )
        assert sum(d.served for d in doubled) < sum(s.served for s in same)


class TestTraceColumns:
    def test_lifecycle_events_match_reference_trace(self):
        systems = _random_systems(12, with_periodic=False)
        tables = BatchTables.from_systems(systems)
        batch = simulate_batch(tables, "deferrable")
        for i, system in enumerate(systems):
            reference = simulate_system(system, policy="deferrable").trace
            times, kinds, subjects = batch.event_columns(i)
            for kind in (TraceEventKind.RELEASE, TraceEventKind.START,
                         TraceEventKind.COMPLETION):
                ref = sorted(
                    (e.time, e.subject)
                    for e in reference.events_of(kind)
                    if e.subject.startswith("h")
                )
                got = sorted(
                    (float(t), s)
                    for t, k, s in zip(times, kinds, subjects)
                    if k is kind
                )
                assert got == ref, f"system {i} {kind} columns diverged"

    def test_compact_trace_materialises_sorted(self):
        systems = _random_systems(3, with_periodic=False)
        batch = simulate_batch(BatchTables.from_systems(systems), "polling")
        trace = batch.compact_trace(0)
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        released = trace.events_of(TraceEventKind.RELEASE)
        assert len(released) == len(systems[0].events)


class TestEventSpecEdgeCases:
    def test_eventless_system(self):
        params = dataclasses.replace(PAPER_SETS[0], nb_generation=1)
        base = RandomSystemGenerator(params).generate()[0]
        empty = dataclasses.replace(base, events=())
        both = BatchTables.from_systems([empty, base])
        batch = simulate_batch(both, "polling")
        assert batch.run_metrics(0) == simulate_system(
            empty, policy="polling"
        ).metrics
        assert batch.run_metrics(1) == simulate_system(
            base, policy="polling"
        ).metrics

    def test_single_immediate_event(self):
        params = dataclasses.replace(PAPER_SETS[0], nb_generation=1)
        base = RandomSystemGenerator(params).generate()[0]
        system = dataclasses.replace(base, events=(
            AperiodicEventSpec(event_id=0, release=0.0, declared_cost=2.0),
        ))
        batch = simulate_batch(BatchTables.from_systems([system]), "polling")
        assert batch.run_metrics(0) == simulate_system(
            system, policy="polling"
        ).metrics
