"""The multicore evaluation campaign: workload -> placement -> engine.

Runs a generated workload (periodic tasks with total utilization up to
*m*, plus a Poisson aperiodic stream) under the four multicore arms:

* ``part-ff`` / ``part-wf`` / ``part-bf`` — partitioned scheduling: the
  periodic set is bin-packed onto the cores (first-/worst-/best-fit
  decreasing utilization) and every core runs preemptive fixed priority
  with its *own* Polling or Deferrable server instance; aperiodic events
  are routed round-robin across the per-core servers;
* ``global-fp`` / ``global-edf`` — global scheduling: one logical queue,
  the top-*m* entities run, a single (migratable) server serves the
  aperiodic stream, and migrations are counted as first-class trace
  events.

Every arm consumes the *same* :class:`~repro.workload.spec.GeneratedSystem`
descriptor, so fault plans (:mod:`repro.faults`) apply to the workload
before placement — a targeted fault perturbs the same tasks and events
regardless of which core they end up on.  Campaign hardening (per-run
timeout, bounded retry, JSONL checkpoint/resume) and the worker pool are
shared with the uniprocessor campaign executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as _replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..sim import (
    AperiodicJob,
    IdealDeferrableServer,
    IdealPollingServer,
)
from ..sim.engine import EPS
from ..sim.trace import ExecutionTrace
from ..workload.rng import PortableRandom
from ..workload.spec import (
    AperiodicEventSpec,
    GeneratedSystem,
    PeriodicTaskSpec,
    ServerSpec,
)
from ..workload.uunifast import generate_multicore_taskset
from .engine import MulticoreSimulation
from .metrics import (
    MulticoreRunMetrics,
    measure_multicore_run,
    multicore_metrics_from_dict,
    multicore_metrics_to_dict,
)
from .partition import Partition, partition_tasks
from .policies import (
    AperiodicRouter,
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    PartitionedPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.enforcement import EnforcementConfig
    from ..faults.injectors import EventBurst, FaultPlan
    from ..overload.config import OverloadConfig
    from ..experiments.campaign import RunPolicy
    from ..verify.violations import VerificationReport

__all__ = [
    "MULTICORE_MODES",
    "MulticoreParameters",
    "MulticoreSystemResult",
    "MulticoreCampaignResult",
    "build_multicore_system",
    "run_multicore_system",
    "run_multicore_campaign",
    "run_multicore_overload_campaign",
]

#: the four standard arms (plus best-fit) of the multicore evaluation
MULTICORE_MODES = ("part-ff", "part-wf", "part-bf", "global-fp", "global-edf")

_HEURISTIC_OF_MODE = {"part-ff": "ff", "part-wf": "wf", "part-bf": "bf"}


@dataclass(frozen=True)
class MulticoreParameters:
    """Knobs of the multicore campaign generator.

    The periodic side is a UUniFast-Discard task set with total
    utilization ``total_utilization`` (may exceed 1; must not exceed
    ``n_cores`` minus the per-core server share in partitioned modes);
    the aperiodic side is the paper's Poisson/Gaussian stream, served by
    per-core (partitioned) or migratable (global) servers of
    ``server_capacity`` per ``server_period``.
    """

    n_cores: int = 4
    n_tasks: int = 12
    total_utilization: float = 2.0
    task_density: float = 2.0
    average_cost: float = 1.0
    std_deviation: float = 0.5
    server_capacity: float = 2.0
    server_period: float = 10.0
    nb_systems: int = 1
    seed: int = 1983
    horizon_periods: int = 10
    period_range: tuple[float, float] = (10.0, 100.0)
    min_cost: float = 0.1

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.n_tasks <= 0:
            raise ValueError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if self.total_utilization <= 0:
            raise ValueError(
                f"total_utilization must be > 0, got {self.total_utilization}"
            )
        if self.nb_systems <= 0:
            raise ValueError(f"nb_systems must be >= 1, got {self.nb_systems}")
        if self.server_capacity > self.server_period:
            raise ValueError("server capacity exceeds its period")

    @property
    def horizon(self) -> float:
        return self.horizon_periods * self.server_period

    @property
    def server_utilization(self) -> float:
        return self.server_capacity / self.server_period


@dataclass
class MulticoreSystemResult:
    """One system's outcome under one multicore arm."""

    mode: str
    metrics: MulticoreRunMetrics
    trace: ExecutionTrace
    partition: Partition | None = None
    #: the run's aperiodic job records (overload reports read these)
    jobs: list[AperiodicJob] = field(default_factory=list)
    #: verification outcome when the run was monitored (``verify=True``)
    report: "VerificationReport | None" = None
    #: cycle-detection report when the run used ``cycle != "off"``
    cycle: "object | None" = None


@dataclass
class MulticoreCampaignResult:
    """``tables[mode]`` -> per-system metrics, plus hardening records."""

    tables: dict[str, list[MulticoreRunMetrics]] = field(default_factory=dict)
    records: list = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [r for r in self.records if r.status != "ok"]


# -- workload ---------------------------------------------------------------


def build_multicore_system(params: MulticoreParameters,
                           system_id: int = 0) -> GeneratedSystem:
    """Generate one multicore system (periodic set + aperiodic stream).

    Deterministic in ``(params, system_id)``; every arm of the campaign
    consumes the descriptor returned here, so placements are compared on
    byte-identical workloads.
    """
    mix = (params.seed << 4) ^ (system_id * 0x9E3779B9) ^ 0x5BD1
    task_seed = mix & 0x7FFFFFFFFFFFFFFF
    tasks = generate_multicore_taskset(
        seed=task_seed,
        n=params.n_tasks,
        total_utilization=params.total_utilization,
        period_range=params.period_range,
    )
    rng = PortableRandom(task_seed ^ 0x0A5E)
    horizon = params.horizon
    mean_interarrival = params.server_period / params.task_density
    events: list[AperiodicEventSpec] = []
    t = rng.exponential(mean_interarrival)
    eid = 0
    while t < horizon:
        cost = rng.gauss(params.average_cost, params.std_deviation)
        if cost < params.min_cost:
            cost = params.min_cost
        events.append(
            AperiodicEventSpec(event_id=eid, release=t, declared_cost=cost)
        )
        eid += 1
        t += rng.exponential(mean_interarrival)
    return GeneratedSystem(
        system_id=system_id,
        server=ServerSpec(
            capacity=params.server_capacity,
            period=params.server_period,
            priority=0,
        ),
        events=tuple(events),
        horizon=horizon,
        periodic_tasks=tuple(tasks),
    )


# -- single runs ------------------------------------------------------------

_SERVER_CLASSES = {
    "polling": IdealPollingServer,
    "deferrable": IdealDeferrableServer,
}


class _GlobalPollingServer(IdealPollingServer):
    """Polling server rankable under global EDF: its deadline is the end
    of the current server period (when unspent capacity is forfeit)."""

    def current_deadline(self, now: float) -> float:
        period = self.spec.period
        return (math.floor(now / period + EPS) + 1) * period


class _GlobalDeferrableServer(IdealDeferrableServer):
    """Deferrable server rankable under global EDF (same deadline rule)."""

    def current_deadline(self, now: float) -> float:
        period = self.spec.period
        return (math.floor(now / period + EPS) + 1) * period


def run_multicore_system(
    system: GeneratedSystem,
    n_cores: int,
    mode: str,
    server: str | None = "polling",
    enforcement: "EnforcementConfig | None" = None,
    overload: "OverloadConfig | None" = None,
    verify: bool = False,
    trace_mode: str | None = None,
    kernel: str = "auto",
    cycle: str = "off",
) -> MulticoreSystemResult:
    """Run one generated system under one multicore arm.

    ``server`` selects the per-core (partitioned) or migratable (global)
    aperiodic server family — ``"polling"``, ``"deferrable"`` or ``None``
    to drop the aperiodic stream entirely (pure periodic scheduling).
    ``overload`` wires the full overload stack (queue bounds, per-server
    circuit breakers, the degraded-mode detector and, in partitioned
    modes, overload-aware routing); ``None`` keeps the golden path
    byte-identical.  ``verify=True`` attaches the runtime-verification
    monitor battery (:mod:`repro.verify`) — per-core non-overlap,
    ordering legality scoped by the placement, server capacity
    conservation — and stores the outcome on the result's ``report``.
    ``trace_mode``/``kernel`` select the columnar trace and the lazy
    release-scheduling path (see docs/performance.md); defaults are
    byte-identical to the historical behaviour.  ``cycle`` arms
    hyperperiod cycle detection (:mod:`repro.cycle`); note that runs
    carrying an aperiodic server stand down from fast-forwarding by
    design — pass ``server=None`` (pure periodic scheduling) to benefit.
    """
    if mode not in MULTICORE_MODES:
        raise ValueError(
            f"unknown mode {mode!r}; choose from {MULTICORE_MODES}"
        )
    if server is not None and server not in _SERVER_CLASSES:
        raise ValueError(
            f"unknown server {server!r}; choose 'polling', 'deferrable' "
            "or None"
        )
    if mode in _HEURISTIC_OF_MODE:
        return _run_partitioned(
            system, n_cores, _HEURISTIC_OF_MODE[mode], mode, server,
            enforcement, overload, verify, trace_mode, kernel, cycle,
        )
    return _run_global(
        system, n_cores, mode, server, enforcement, overload, verify,
        trace_mode, kernel, cycle,
    )


def _make_jobs(system: GeneratedSystem) -> list[AperiodicJob]:
    return [
        AperiodicJob(
            name=f"h{event.event_id}",
            release=event.release,
            cost=event.cost,
            declared_cost=event.declared_cost,
        )
        for event in system.events
    ]


def _wire_overload(sim, servers, overload):
    """Attach the overload stack to one multicore run (or do nothing)."""
    if overload is None or not overload.active or not servers:
        return None
    from ..faults.watchdog import DeadlineMissWatchdog
    from ..overload import wire_sim_servers

    watchdog = sim.watchdog
    if watchdog is None and overload.detector is not None:
        watchdog = DeadlineMissWatchdog().attach_sim(sim)
    return wire_sim_servers(
        overload, sim.trace, servers, watchdog=watchdog
    )


def _run_partitioned(
    system: GeneratedSystem,
    n_cores: int,
    heuristic: str,
    mode: str,
    server: str | None,
    enforcement: "EnforcementConfig | None",
    overload: "OverloadConfig | None" = None,
    verify: bool = False,
    trace_mode: str | None = None,
    kernel: str = "auto",
    cycle: str = "off",
) -> MulticoreSystemResult:
    tasks = list(system.periodic_tasks)
    reserve = (
        system.server.capacity / system.server.period
        if server is not None else 0.0
    )
    partition = partition_tasks(
        tasks, n_cores, heuristic=heuristic, capacity=1.0, reserve=reserve
    )
    top = max((t.priority for t in tasks), default=0)
    server_names = [f"{server or 'srv'}{k}".upper() for k in range(n_cores)]
    core_of = dict(partition.core_of)
    for k, name in enumerate(server_names):
        core_of[name] = k
    servers = []
    if server is not None:
        spec = ServerSpec(
            capacity=system.server.capacity,
            period=system.server.period,
            priority=top + 1,  # highest on its core, the paper's invariant
        )
        for name in server_names:
            servers.append(_SERVER_CLASSES[server](
                spec, name=name, enforcement=enforcement
            ))
    monitors = None
    if verify:
        from ..verify import monitors_for_system

        monitors = monitors_for_system(
            system, servers=tuple(servers), policy="fp", core_of=core_of,
            check_demand=enforcement is None and overload is None,
        )
    sim = MulticoreSimulation(
        PartitionedPolicy(core_of, n_cores),
        n_cores=n_cores,
        enforcement=enforcement,
        monitors=monitors,
        trace_mode=trace_mode,
        kernel=kernel,
        cycle=cycle,
    )
    for instance in servers:
        instance.attach(sim, horizon=system.horizon)
    for task_spec in tasks:
        sim.add_periodic_task(task_spec)
    detector = _wire_overload(sim, servers, overload)
    jobs = _make_jobs(system)
    core_of_job: dict[str, int] = {}
    if server is not None:
        if overload is not None and overload.active:
            # overload-aware routing decides at release time, when the
            # breaker and queue state it steers around actually exists
            router = AperiodicRouter(servers, overload)
            core_of_job = router.core_of_job
            for job in jobs:
                sim.submit_aperiodic(job, router.route)
        else:
            for i, job in enumerate(jobs):
                core = i % n_cores  # deterministic round-robin routing
                core_of_job[job.name] = core
                sim.submit_aperiodic(job, servers[core].submit)
    trace = sim.run(until=system.horizon)
    if detector is not None:
        detector.finish(system.horizon)
    metrics = measure_multicore_run(
        jobs, trace, n_cores, system.horizon,
        core_of_job=core_of_job if server is not None else None,
    )
    report = (
        trace.finish_monitors(system.horizon) if monitors is not None
        else None
    )
    return MulticoreSystemResult(
        mode=mode, metrics=metrics, trace=trace, partition=partition,
        jobs=jobs, report=report, cycle=sim._cycle_report,
    )


def _run_global(
    system: GeneratedSystem,
    n_cores: int,
    mode: str,
    server: str | None,
    enforcement: "EnforcementConfig | None",
    overload: "OverloadConfig | None" = None,
    verify: bool = False,
    trace_mode: str | None = None,
    kernel: str = "auto",
    cycle: str = "off",
) -> MulticoreSystemResult:
    tasks = list(system.periodic_tasks)
    top = max((t.priority for t in tasks), default=0)
    policy = (
        GlobalFixedPriorityPolicy() if mode == "global-fp"
        else GlobalEDFPolicy()
    )
    instance = None
    if server is not None:
        # one migratable server; global modes pool the per-core bandwidth
        spec = ServerSpec(
            capacity=min(
                system.server.capacity * n_cores, system.server.period
            ),
            period=system.server.period,
            priority=top + 1,
        )
        cls = (
            _GlobalPollingServer if server == "polling"
            else _GlobalDeferrableServer
        )
        instance = cls(spec, name=server.upper(), enforcement=enforcement)
    monitors = None
    if verify:
        from ..verify import monitors_for_system

        monitors = monitors_for_system(
            system,
            servers=(instance,) if instance is not None else (),
            policy="fp" if mode == "global-fp" else "edf",
            check_demand=enforcement is None and overload is None,
        )
    sim = MulticoreSimulation(policy, n_cores=n_cores,
                              enforcement=enforcement, monitors=monitors,
                              trace_mode=trace_mode, kernel=kernel,
                              cycle=cycle)
    if instance is not None:
        instance.attach(sim, horizon=system.horizon)
    for task_spec in tasks:
        sim.add_periodic_task(task_spec)
    detector = _wire_overload(
        sim, [instance] if instance is not None else [], overload
    )
    jobs = _make_jobs(system)
    if instance is not None:
        for job in jobs:
            sim.submit_aperiodic(job, instance.submit)
    trace = sim.run(until=system.horizon)
    if detector is not None:
        detector.finish(system.horizon)
    metrics = measure_multicore_run(jobs, trace, n_cores, system.horizon)
    report = (
        trace.finish_monitors(system.horizon) if monitors is not None
        else None
    )
    return MulticoreSystemResult(
        mode=mode, metrics=metrics, trace=trace, jobs=jobs, report=report,
        cycle=sim._cycle_report,
    )


# -- the campaign -----------------------------------------------------------


def _mc_worker(task: tuple) -> "object":
    """Pool entry point: run one (mode, system) with guard rails."""
    (mode, params, system_id, system, server, enforcement, fault_plan,
     run_policy, verify), cycle = task[:9], "off"
    if len(task) > 9:  # tuples only grow when cycle != "off"
        cycle = task[9]
    return _guarded_mc_run(
        mode, params, system_id, system, server, enforcement, fault_plan,
        run_policy, verify, cycle,
    )


def _guarded_mc_run(
    mode: str,
    params: MulticoreParameters,
    system_id: int,
    system: GeneratedSystem,
    server: str | None,
    enforcement: "EnforcementConfig | None",
    fault_plan: "FaultPlan | None",
    run_policy: "RunPolicy | None",
    verify: bool = False,
    cycle: str = "off",
):
    """One hardened run -> a RunRecord (metrics carry the aggregate)."""
    import traceback

    from ..experiments.campaign import (
        RunExhausted,
        RunRecord,
        RunTimeout,
        _time_limit,
    )
    from ..verify.violations import VerificationError

    key = (float(params.n_cores), float(params.total_utilization))
    policy = run_policy
    max_retries = policy.max_retries if policy is not None else 0
    timeout_s = policy.timeout_s if policy is not None else None
    seed_bump = policy.retry_seed_bump if policy is not None else 1
    attempts = 0
    current = system
    status, last_error = "failed", ""
    result: MulticoreSystemResult | None = None
    while attempts <= max_retries:
        attempts += 1
        try:
            with _time_limit(timeout_s):
                result = run_multicore_system(
                    current, params.n_cores, mode, server=server,
                    enforcement=enforcement, verify=verify, cycle=cycle,
                )
                if result.report is not None and not result.report.ok:
                    raise VerificationError(result.report.summary())
            return RunRecord(
                arm=mode, set_key=key, system_id=system_id,
                status="ok", attempts=attempts,
                metrics=result.metrics.aggregate,
                payload=multicore_metrics_to_dict(result.metrics),
            )
        except RunTimeout as exc:
            status, last_error = "timeout", str(exc)
        except Exception:
            status, last_error = "failed", traceback.format_exc(limit=5)
        if attempts <= max_retries:
            bumped = _replace(
                params, seed=params.seed + attempts * seed_bump
            )
            current = build_multicore_system(bumped, system_id)
            if fault_plan is not None:
                current = fault_plan.apply(current)
    record = RunRecord(
        arm=mode, set_key=key, system_id=system_id,
        status=status, attempts=attempts, error=last_error,
    )
    if policy is not None and policy.fail_fast:
        raise RunExhausted(record.to_dict())
    return record


def _mc_overload_worker(task: tuple):
    """Pool entry point: baseline + burst run of one (mode, system)."""
    import traceback

    from ..experiments.campaign import (
        RunExhausted,
        RunPolicy,
        RunRecord,
        RunTimeout,
        _report_payload,
        _time_limit,
    )
    from ..overload.metrics import measure_overload

    (mode, params, clean, burst_system, server, overload, run_policy) = task
    key = (float(params.n_cores), float(params.total_utilization))
    policy = run_policy if run_policy is not None else RunPolicy()
    status, last_error = "failed", ""
    try:
        with _time_limit(policy.timeout_s):
            # the unfaulted baseline calibrates the recovery criterion
            baseline = run_multicore_system(
                clean, params.n_cores, mode, server=server
            )
            faulted = run_multicore_system(
                burst_system, params.n_cores, mode, server=server,
                overload=overload,
            )
    except RunTimeout as exc:
        status, last_error = "timeout", str(exc)
    except Exception:
        status, last_error = "failed", traceback.format_exc(limit=5)
    else:
        report = measure_overload(
            faulted.trace,
            faulted.jobs,
            horizon=burst_system.horizon,
            pre_burst_aart=(
                baseline.metrics.aggregate.average_response_time or None
            ),
        )
        return RunRecord(
            arm=mode, set_key=key, system_id=clean.system_id, status="ok",
            metrics=faulted.metrics.aggregate,
            payload=_report_payload(report, baseline.metrics.aggregate),
        )
    record = RunRecord(
        arm=mode, set_key=key, system_id=clean.system_id,
        status=status, error=last_error,
    )
    if run_policy is not None and run_policy.fail_fast:
        raise RunExhausted(record.to_dict())
    return record


def run_multicore_overload_campaign(
    params: MulticoreParameters,
    modes: tuple[str, ...] = MULTICORE_MODES,
    server: str | None = "polling",
    overload: "OverloadConfig | None" = None,
    burst: "EventBurst | None" = None,
    run_policy: "RunPolicy | None" = None,
    workers: int = 1,
):
    """The multicore burst-overload sweep: every system runs twice per arm.

    The multicore twin of
    :func:`repro.experiments.campaign.run_overload_campaign`: an unfaulted
    baseline calibrates pre-burst response times, then the same workload
    runs through an :class:`~repro.faults.injectors.EventBurst` storm with
    the ``overload`` stack armed — per-server queue bounds and breakers,
    the degraded-mode detector, and (partitioned modes) overload-aware
    routing that steers arrivals around open breakers and full queues.
    Returns an :class:`~repro.experiments.campaign.OverloadCampaignResult`.
    """
    from ..experiments.campaign import (
        OverloadCampaignResult,
        RunPolicy,
        _append_checkpoint,
        _load_checkpoint,
        _overload_run_from_record,
        _parallel_map,
        default_overload_config,
    )
    from ..faults.injectors import EventBurst, FaultPlan

    for mode in modes:
        if mode not in MULTICORE_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; choose from {MULTICORE_MODES}"
            )
    if overload is None:
        overload = default_overload_config()
    if burst is None:
        burst = EventBurst(extra=3, probability=0.5, spacing=0.05)
    policy = run_policy if run_policy is not None else RunPolicy()
    checkpointed = (
        _load_checkpoint(policy.checkpoint_path)
        if policy.checkpoint_path is not None else {}
    )
    worker_policy = _replace(policy, checkpoint_path=None)
    key = (float(params.n_cores), float(params.total_utilization))
    plan = FaultPlan(injectors=(burst,), seed=params.seed)

    order: list[tuple[str, int, bool]] = []
    pending: list[tuple | None] = []
    for system_id in range(params.nb_systems):
        clean = build_multicore_system(params, system_id)
        burst_system = plan.apply(clean)
        for mode in modes:
            cached = (mode, key, system_id) in checkpointed
            order.append((mode, system_id, cached))
            pending.append(
                None if cached else (
                    mode, params, clean, burst_system, server, overload,
                    worker_policy,
                )
            )
    fresh = iter(_parallel_map(
        _mc_overload_worker, [t for t in pending if t is not None], workers
    ))

    result = OverloadCampaignResult()
    for slot, (mode, system_id, cached) in zip(pending, order):
        if cached:
            record = checkpointed[(mode, key, system_id)]
        else:
            record = next(fresh)
            _append_checkpoint(policy.checkpoint_path, record)
        result.records.append(record)
        run = _overload_run_from_record(record)
        if run is not None:
            result.runs.append(run)
    return result


def run_multicore_campaign(
    params: MulticoreParameters,
    modes: tuple[str, ...] = MULTICORE_MODES,
    server: str | None = "polling",
    enforcement: "EnforcementConfig | None" = None,
    fault_plan: "FaultPlan | None" = None,
    run_policy: "RunPolicy | None" = None,
    workers: int = 1,
    verify: bool = False,
    cycle: str = "off",
) -> MulticoreCampaignResult:
    """Run every generated system under every multicore arm.

    ``workers > 1`` fans the (mode, system) runs out over a
    ``multiprocessing`` pool with the master-seed fan-out preserved, so
    results are bit-identical to a sequential sweep; checkpoint lines
    (``run_policy.checkpoint_path``) are written by the parent only,
    flushed and fsynced per record, and an existing checkpoint resumes.
    ``cycle`` arms hyperperiod cycle detection on every run (only
    effective with ``server=None``: server-carrying systems stand down
    loudly, counted in :data:`repro.cycle.STAND_DOWNS`).
    """
    from ..experiments.campaign import (
        _append_checkpoint,
        _load_checkpoint,
        _parallel_map,
    )

    for mode in modes:
        if mode not in MULTICORE_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; choose from {MULTICORE_MODES}"
            )
    checkpoint_path: Path | None = (
        run_policy.checkpoint_path if run_policy is not None else None
    )
    checkpointed = (
        _load_checkpoint(checkpoint_path)
        if checkpoint_path is not None else {}
    )
    systems = []
    for system_id in range(params.nb_systems):
        system = build_multicore_system(params, system_id)
        if fault_plan is not None:
            system = fault_plan.apply(system)
        systems.append(system)
    key = (float(params.n_cores), float(params.total_utilization))
    # workers never see the checkpoint path: the parent is the only writer
    worker_policy = (
        _replace(run_policy, checkpoint_path=None)
        if run_policy is not None else None
    )
    pending = []
    order = []
    for system_id, system in enumerate(systems):
        for mode in modes:
            order.append((mode, system_id))
            if (mode, key, system_id) in checkpointed:
                pending.append(None)
                continue
            entry = (mode, params, system_id, system, server, enforcement,
                     fault_plan, worker_policy, verify)
            if cycle != "off":
                entry = entry + (cycle,)
            pending.append(entry)
    fresh = _parallel_map(
        _mc_worker, [t for t in pending if t is not None], workers
    )
    fresh_iter = iter(fresh)
    result = MulticoreCampaignResult(tables={m: [] for m in modes})
    for slot, (mode, system_id) in zip(pending, order):
        if slot is None:
            record = checkpointed[(mode, key, system_id)]
        else:
            record = next(fresh_iter)
            _append_checkpoint(checkpoint_path, record)
        result.records.append(record)
        if record.payload is not None:
            result.tables[mode].append(
                multicore_metrics_from_dict(record.payload)
            )
    return result
