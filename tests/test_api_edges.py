"""Edge-of-API tests: explicit errors on misuse, base-class contracts."""

from __future__ import annotations

import pytest

from repro.core import PollingTaskServer, TaskServer, TaskServerParameters
from repro.rtsj import (
    AbsoluteTime,
    OverheadModel,
    ProcessingGroupParameters,
    RelativeTime,
    RTSJVirtualMachine,
)
from repro.sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealPollingServer,
    Simulation,
)
from repro.workload.spec import PeriodicTaskSpec, ServerSpec
from conftest import M


class TestSimMisuse:
    def test_submit_before_attach_raises(self):
        server = IdealPollingServer(ServerSpec(3, 6, 10))
        with pytest.raises(RuntimeError, match="not attached"):
            server.submit(0.0, AperiodicJob("j", release=0, cost=1))

    def test_register_entity_after_run_rejected(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("t", cost=1, period=5, priority=1))
        sim.run(until=5)
        server = IdealPollingServer(ServerSpec(3, 6, 10))
        with pytest.raises(RuntimeError, match="after run"):
            server.attach(sim, horizon=10)

    def test_fp_entity_has_no_deadline_accessor(self):
        server = IdealPollingServer(ServerSpec(3, 6, 10))
        with pytest.raises(NotImplementedError):
            server.current_deadline(0.0)


class TestFrameworkMisuse:
    def _params(self):
        return TaskServerParameters(
            RelativeTime(3, 0), RelativeTime(6, 0), priority=30
        )

    def test_double_attach_rejected(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        server = PollingTaskServer(self._params())
        server.attach(vm, 10 * M)
        with pytest.raises(RuntimeError, match="already attached"):
            server.attach(vm, 10 * M)

    def test_bad_horizon_rejected(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        server = PollingTaskServer(self._params())
        with pytest.raises(ValueError, match="horizon"):
            server.attach(vm, 0)

    def test_base_interference_is_abstract(self):
        class Dummy(TaskServer):
            def _install(self, vm, horizon_ns):
                pass

            def _enqueue(self, release):
                pass

        dummy = Dummy(self._params(), name="dummy")
        with pytest.raises(NotImplementedError):
            dummy.interference_ns(1000)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TaskServerParameters(RelativeTime(0, 0), RelativeTime(6, 0), 30)
        with pytest.raises(ValueError):
            TaskServerParameters(RelativeTime(7, 0), RelativeTime(6, 0), 30)

    def test_params_from_spec_roundtrip(self):
        params = TaskServerParameters.from_spec(
            ServerSpec(capacity=3.5, period=6.0, priority=12), priority=30
        )
        assert params.capacity_ns == 3_500_000
        assert params.period_ns == 6_000_000
        assert params.priority == 30
        assert params.utilization == pytest.approx(3.5 / 6.0)


class TestVMMisuse:
    def test_register_pgp_idempotent(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        pgp = ProcessingGroupParameters(
            AbsoluteTime(0, 0), RelativeTime(6, 0), RelativeTime(2, 0)
        )
        vm.register_pgp(pgp, 30 * M)
        vm.register_pgp(pgp, 30 * M)  # second registration is a no-op
        vm.run(13 * M)
        # exactly one replenishment chain: the budget is full, not doubled
        assert pgp.budget_ns == 2 * M

    def test_until_zero_rejected(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        with pytest.raises(ValueError):
            vm.run(-5)
