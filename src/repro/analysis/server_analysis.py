"""Feasibility of periodic task sets running alongside a task server.

Bridges the workload descriptors, the interference sources and the RTA:

* with a **Polling Server** the analysis is the plain RTA over the task
  set plus one periodic task (capacity, period) — the PS's "most
  significant advantage" (paper S2.1);
* with a **Deferrable Server** the periodic tasks' analysis "must be
  modified" (paper S2.2): the server contributes the double-hit
  interference instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.spec import PeriodicTaskSpec, ServerSpec
from .interference import (
    DeferrableServerInterference,
    InterferenceSource,
    PeriodicInterference,
    response_time_with_interference,
)

__all__ = [
    "ServerAwareResponse",
    "ServerAwareResult",
    "analyse_with_server",
    "polling_server_sources",
    "deferrable_server_sources",
]


@dataclass(frozen=True)
class ServerAwareResponse:
    """One periodic task's response time under server interference."""

    task: PeriodicTaskSpec
    response_time: float | None

    @property
    def schedulable(self) -> bool:
        return (
            self.response_time is not None
            and self.response_time <= self.task.effective_deadline + 1e-9
        )


@dataclass(frozen=True)
class ServerAwareResult:
    """Whole-set outcome."""

    responses: tuple[ServerAwareResponse, ...]

    @property
    def schedulable(self) -> bool:
        return all(r.schedulable for r in self.responses)

    def response_of(self, name: str) -> ServerAwareResponse:
        for response in self.responses:
            if response.task.name == name:
                return response
        raise KeyError(f"no task named {name!r}")


def polling_server_sources(
    tasks: list[PeriodicTaskSpec], server: ServerSpec
) -> list[InterferenceSource]:
    """Interference sources for a task set plus a Polling Server."""
    sources: list[InterferenceSource] = [
        PeriodicInterference(t.cost, t.period, t.priority) for t in tasks
    ]
    sources.append(
        PeriodicInterference(server.capacity, server.period, server.priority)
    )
    return sources


def deferrable_server_sources(
    tasks: list[PeriodicTaskSpec], server: ServerSpec
) -> list[InterferenceSource]:
    """Interference sources for a task set plus a Deferrable Server."""
    sources: list[InterferenceSource] = [
        PeriodicInterference(t.cost, t.period, t.priority) for t in tasks
    ]
    sources.append(
        DeferrableServerInterference(
            server.capacity, server.period, server.priority
        )
    )
    return sources


def analyse_with_server(
    tasks: list[PeriodicTaskSpec],
    server: ServerSpec,
    policy: str,
) -> ServerAwareResult:
    """Response-time analysis of the periodic tasks under a server.

    ``policy`` is ``"polling"`` or ``"deferrable"``.  Each task is
    analysed against the other tasks at or above its priority plus the
    server's interference curve (the server is excluded from its own
    interferer set automatically because tasks never share its identity).
    """
    if policy == "polling":
        sources = polling_server_sources(tasks, server)
    elif policy == "deferrable":
        sources = deferrable_server_sources(tasks, server)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    responses = []
    for task in tasks:
        # exclude exactly one copy of the task's own interference (two
        # tasks may share identical parameters, so drop only the first
        # match rather than filtering by equality)
        own = PeriodicInterference(task.cost, task.period, task.priority)
        others: list[InterferenceSource] = []
        skipped_self = False
        for s in sources:
            if (
                not skipped_self
                and isinstance(s, PeriodicInterference)
                and s == own
            ):
                skipped_self = True
                continue
            others.append(s)
        rt = response_time_with_interference(
            cost=task.cost,
            deadline=task.effective_deadline,
            priority=task.priority,
            sources=others,
        )
        responses.append(ServerAwareResponse(task, rt))
    return ServerAwareResult(responses=tuple(responses))
