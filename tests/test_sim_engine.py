"""Unit tests for the RTSS discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim import (
    EventQueue,
    FixedPriorityPolicy,
    Simulation,
    TraceEventKind,
)
from repro.workload.spec import PeriodicTaskSpec
from conftest import segments_of


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        out = []
        q.schedule(5.0, lambda t: out.append("b"))
        q.schedule(1.0, lambda t: out.append("a"))
        for _ in range(2):
            cb = q.pop_due(10.0)
            assert cb is not None
            cb(0.0)
        assert out == ["a", "b"]

    def test_order_breaks_ties(self):
        q = EventQueue()
        out = []
        q.schedule(1.0, lambda t: out.append("second"), order=5)
        q.schedule(1.0, lambda t: out.append("first"), order=1)
        while (cb := q.pop_due(1.0)) is not None:
            cb(1.0)
        assert out == ["first", "second"]

    def test_insertion_sequence_breaks_remaining_ties(self):
        q = EventQueue()
        out = []
        for i in range(5):
            q.schedule(1.0, lambda t, i=i: out.append(i), order=0)
        while (cb := q.pop_due(1.0)) is not None:
            cb(1.0)
        assert out == [0, 1, 2, 3, 4]

    def test_pop_due_respects_time(self):
        q = EventQueue()
        q.schedule(5.0, lambda t: None)
        assert q.pop_due(4.0) is None
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda t: None)


class TestPeriodicScheduling:
    def test_single_task_runs_every_period(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("t", cost=2, period=5, priority=1))
        trace = sim.run(until=15)
        assert segments_of(trace, "t") == [(0, 2), (5, 7), (10, 12)]

    def test_two_tasks_priority_order(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("hi", cost=2, period=6, priority=9))
        sim.add_periodic_task(PeriodicTaskSpec("lo", cost=3, period=6, priority=1))
        trace = sim.run(until=12)
        assert segments_of(trace, "hi") == [(0, 2), (6, 8)]
        assert segments_of(trace, "lo") == [(2, 5), (8, 11)]

    def test_preemption_mid_job(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("hi", cost=1, period=3, priority=9))
        sim.add_periodic_task(PeriodicTaskSpec("lo", cost=4, period=12, priority=1))
        trace = sim.run(until=12)
        # lo runs in the gaps: [1,3) [4,6) preempted at 3 and 6
        assert segments_of(trace, "hi") == [(0, 1), (3, 4), (6, 7), (9, 10)]
        assert segments_of(trace, "lo") == [(1, 3), (4, 6)]
        assert any(
            e.kind is TraceEventKind.PREEMPTION for e in trace.events
        )

    def test_offset_shifts_releases(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(
            PeriodicTaskSpec("t", cost=1, period=5, priority=1, offset=2)
        )
        trace = sim.run(until=12)
        assert segments_of(trace, "t") == [(2, 3), (7, 8)]

    def test_deadline_miss_detected(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("hog", cost=5, period=6, priority=9))
        sim.add_periodic_task(
            PeriodicTaskSpec("late", cost=2, period=6, priority=1)
        )
        trace = sim.run(until=12)
        # late gets only 1 unit per period: always misses
        misses = trace.events_of(TraceEventKind.DEADLINE_MISS)
        assert misses and all(e.subject.startswith("late") for e in misses)

    def test_completion_and_release_events(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("t", cost=2, period=5, priority=1))
        trace = sim.run(until=10)
        assert [e.time for e in trace.events_of(TraceEventKind.RELEASE)] == [0, 5]
        assert [e.time for e in trace.events_of(TraceEventKind.COMPLETION)] == [2, 7]

    def test_utilization_one_never_idles(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=3, period=6, priority=5))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=3, period=6, priority=1))
        trace = sim.run(until=30)
        assert trace.busy_time() == pytest.approx(30.0)

    def test_run_twice_rejected(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("t", cost=1, period=5, priority=1))
        sim.run(until=5)
        with pytest.raises(RuntimeError):
            sim.run(until=5)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            Simulation(FixedPriorityPolicy()).run(until=0)

    def test_trace_never_overlaps(self):
        sim = Simulation(FixedPriorityPolicy())
        for i, (c, p) in enumerate([(1, 4), (2, 6), (1, 8)]):
            sim.add_periodic_task(
                PeriodicTaskSpec(f"t{i}", cost=c, period=p, priority=10 - i)
            )
        trace = sim.run(until=48)
        trace.validate()  # raises on overlap

    def test_same_priority_fifo_no_mutual_preemption(self):
        sim = Simulation(FixedPriorityPolicy())
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=2, period=10, priority=5))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=2, period=10, priority=5))
        trace = sim.run(until=10)
        # registration order wins; neither splits the other
        assert segments_of(trace, "a") == [(0, 2)]
        assert segments_of(trace, "b") == [(2, 4)]


class TestDeadlineMissPolicy:
    def _overloaded(self, mode):
        sim = Simulation(FixedPriorityPolicy(), on_deadline_miss=mode)
        sim.add_periodic_task(PeriodicTaskSpec("hog", cost=5, period=6, priority=9))
        sim.add_periodic_task(PeriodicTaskSpec("late", cost=2, period=6, priority=1))
        return sim

    def test_continue_mode_backlogs(self):
        sim = self._overloaded("continue")
        trace = sim.run(until=24)
        # soft semantics: late keeps executing its backlog (1 tu/period)
        assert trace.busy_time("late") == pytest.approx(4.0)

    def test_abort_mode_drops_expired_jobs(self):
        from repro.sim import JobState

        sim = self._overloaded("abort")
        trace = sim.run(until=24)
        aborts = trace.events_of(TraceEventKind.ABORT)
        assert aborts and all(e.subject.startswith("late") for e in aborts)
        late = next(t for t in sim.periodic_tasks if t.name == "late")
        assert any(j.state is JobState.ABORTED for j in late.jobs)
        # the hog is unaffected
        assert trace.busy_time("hog") == pytest.approx(20.0)

    def test_abort_mode_keeps_feasible_tasks_untouched(self):
        sim = Simulation(FixedPriorityPolicy(), on_deadline_miss="abort")
        sim.add_periodic_task(PeriodicTaskSpec("t", cost=2, period=6, priority=5))
        trace = sim.run(until=24)
        assert trace.events_of(TraceEventKind.ABORT) == []
        assert trace.busy_time("t") == pytest.approx(8.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Simulation(FixedPriorityPolicy(), on_deadline_miss="explode")
