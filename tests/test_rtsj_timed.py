"""Unit tests for Timed / Interruptible asynchronous transfer of control."""

from __future__ import annotations

import pytest

from repro.rtsj import (
    AsynchronouslyInterruptedException,
    Compute,
    Interruptible,
    PriorityParameters,
    RealtimeThread,
    RelativeTime,
    Timed,
)
from conftest import M, make_periodic_thread, segments_of


class Work(Interruptible):
    """Burns a cost; records completion/interruption and cleanup."""

    def __init__(self, cost_units: float) -> None:
        self.cost_ns = round(cost_units * M)
        self.completed = False
        self.interrupted_at: float | None = None
        self.cleanup_ran = False

    def run(self, timed):
        try:
            yield Compute(self.cost_ns)
            self.completed = True
        finally:
            self.cleanup_ran = True

    def interrupt_action(self, exc):
        self.interrupted_at = exc  # presence marks the call


def run_server(zero_vm, script, priority=30):
    """Run ``script`` (a generator function of the thread) on a thread."""
    results = []

    def logic(thread):
        result = yield from script(thread)
        results.append(result)

    zero_vm.add_thread(RealtimeThread(logic, PriorityParameters(priority),
                                      name="srv"))
    trace = zero_vm.run(60 * M)
    return results, trace


class TestTimed:
    def test_completion_within_budget(self, zero_vm):
        work = Work(3)

        def script(thread):
            timed = Timed(RelativeTime(4, 0), now_ns=thread.now_ns)
            ok = yield from timed.do_interruptible(work)
            return (ok, thread.now_ns // M)

        results, _ = run_server(zero_vm, script)
        assert results == [(True, 3)]
        assert work.completed and work.cleanup_ran
        assert work.interrupted_at is None

    def test_interrupt_on_budget_expiry(self, zero_vm):
        work = Work(5)

        def script(thread):
            timed = Timed(RelativeTime(2, 0), now_ns=thread.now_ns)
            ok = yield from timed.do_interruptible(work)
            return (ok, thread.now_ns // M)

        results, _ = run_server(zero_vm, script)
        assert results == [(False, 2)]
        assert not work.completed
        assert work.cleanup_ran          # finally blocks run
        assert work.interrupted_at is not None

    def test_completion_exactly_at_budget(self, zero_vm):
        work = Work(2)

        def script(thread):
            timed = Timed(RelativeTime(2, 0), now_ns=thread.now_ns)
            ok = yield from timed.do_interruptible(work)
            return ok

        results, _ = run_server(zero_vm, script)
        assert results == [True]  # finishing at the deadline counts

    def test_wall_clock_budget_includes_preemption(self, zero_vm):
        # an ISR window inside the section eats budget without doing work
        zero_vm_overhead_isr = zero_vm
        work = Work(3)

        def script(thread):
            timed = Timed(RelativeTime(4, 0), now_ns=thread.now_ns)
            ok = yield from timed.do_interruptible(work)
            return ok

        # 2 tu of ISR injected at t=1: wall time 3+2 > budget 4
        zero_vm_overhead_isr.schedule_event(
            1 * M, lambda now: zero_vm_overhead_isr.add_isr_time(2 * M)
        )
        results, trace = run_server(zero_vm_overhead_isr, script)
        assert results == [False]
        assert segments_of(trace, "ISR") == [(1, 3)]
        # interrupted exactly at the wall-clock deadline t=4
        assert segments_of(trace, "srv") == [(0, 1), (3, 4)]

    def test_sequential_sections_independent_budgets(self, zero_vm):
        w1, w2 = Work(1), Work(9)

        def script(thread):
            ok1 = yield from Timed(
                RelativeTime(2, 0), now_ns=thread.now_ns
            ).do_interruptible(w1)
            ok2 = yield from Timed(
                RelativeTime(3, 0), now_ns=thread.now_ns
            ).do_interruptible(w2)
            return (ok1, ok2)

        results, _ = run_server(zero_vm, script)
        assert results == [(True, False)]
        assert w1.completed and not w2.completed

    def test_multi_step_section_interrupted_mid_sequence(self, zero_vm):
        steps = []

        class Stepped(Interruptible):
            def __init__(self):
                self.interrupted = False

            def run(self, timed):
                for i in range(5):
                    yield Compute(1 * M)
                    steps.append(i)

            def interrupt_action(self, exc):
                self.interrupted = True

        work = Stepped()

        def script(thread):
            ok = yield from Timed(
                RelativeTime(2, 500_000), now_ns=thread.now_ns
            ).do_interruptible(work)
            return ok

        results, _ = run_server(zero_vm, script)
        assert results == [False]
        assert steps == [0, 1]  # third step cut at 2.5
        assert work.interrupted

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Timed(RelativeTime(0, 0), now_ns=0)

    def test_section_swallowing_aie_is_abandoned(self, zero_vm):
        # interruptible code must not continue past the ATC; the wrapper
        # closes it and still reports the interrupt
        post = []

        class Naughty(Interruptible):
            def run(self, timed):
                try:
                    yield Compute(5 * M)
                except AsynchronouslyInterruptedException:
                    pass
                yield Compute(1 * M)  # must never run
                post.append("ran past interrupt")

            def interrupt_action(self, exc):
                post.append("interrupt_action")

        def script(thread):
            ok = yield from Timed(
                RelativeTime(1, 0), now_ns=thread.now_ns
            ).do_interruptible(Naughty())
            return ok

        results, _ = run_server(zero_vm, script)
        assert results == [False]
        assert post == ["interrupt_action"]

    def test_higher_priority_thread_preemption_counts_against_budget(
        self, zero_vm
    ):
        zero_vm.add_thread(make_periodic_thread("hi", 2, 8, 35, offset=1))
        work = Work(3)

        def script(thread):
            ok = yield from Timed(
                RelativeTime(4, 0), now_ns=thread.now_ns
            ).do_interruptible(work)
            return (ok, thread.now_ns // M)

        results, trace = run_server(zero_vm, script, priority=30)
        # srv runs [0,1), hi [1,3), srv [3,4) -> interrupted at 4 with
        # one unit of work left
        assert results == [(False, 4)]
        assert segments_of(trace, "hi")[0] == (1, 3)


class TestNestedTimed:
    def test_inner_budget_tightens_outer(self, zero_vm):
        inner_work = Work(5)

        class Outer(Interruptible):
            def __init__(self):
                self.inner_ok = None
                self.interrupted = False

            def run(self, timed):
                inner = Timed(RelativeTime(2, 0), now_ns=0)
                self.inner_ok = yield from inner.do_interruptible(inner_work)
                yield Compute(1 * M)

            def interrupt_action(self, exc):
                self.interrupted = True

        outer_work = Outer()

        def script(thread):
            outer = Timed(RelativeTime(10, 0), now_ns=thread.now_ns)
            ok = yield from outer.do_interruptible(outer_work)
            return (ok, thread.now_ns // M)

        results, _ = run_server(zero_vm, script)
        # the inner 2tu budget interrupts the 5tu work; the outer section
        # then continues and completes within its own 10tu budget
        assert outer_work.inner_ok is False
        assert inner_work.interrupted_at is not None
        assert results == [(True, 3)]

    def test_outer_budget_cuts_inner_section(self, zero_vm):
        inner_work = Work(5)

        class Outer(Interruptible):
            def __init__(self):
                self.interrupted = False

            def run(self, timed):
                inner = Timed(RelativeTime(8, 0), now_ns=0)
                yield from inner.do_interruptible(inner_work)

            def interrupt_action(self, exc):
                self.interrupted = True

        outer_work = Outer()

        def script(thread):
            outer = Timed(RelativeTime(2, 0), now_ns=thread.now_ns)
            ok = yield from outer.do_interruptible(outer_work)
            return (ok, thread.now_ns // M)

        results, _ = run_server(zero_vm, script)
        # the outer deadline (2) is the earlier one: the whole nest
        # unwinds; only the *owner's* interrupt_action runs (RTSJ ATC
        # identity), but the inner section's finally blocks still ran
        assert results == [(False, 2)]
        assert outer_work.interrupted
        assert inner_work.interrupted_at is None
        assert inner_work.cleanup_ran
