"""Evaluation metrics (paper Section 6.1).

For one run the paper measures, over the aperiodic events of the system:

* the **average response time** of *served* aperiodics,
* the **interrupted-aperiodics ratio** (events whose handler was cut by
  the capacity-enforcement mechanism; always 0 in the ideal simulator),
* the **served-aperiodics ratio** (events completed within the
  observation horizon).

Per set of systems it then averages each measure, yielding AART, AIR and
ASR — the rows of Tables 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass

from .task import AperiodicJob, JobState
from .trace import TraceEventKind

__all__ = [
    "RunMetrics",
    "SetMetrics",
    "measure_run",
    "aggregate",
    "PeriodicRunSummary",
    "periodic_summary",
]


@dataclass(frozen=True)
class RunMetrics:
    """Metrics of one system's run (one simulation or one execution)."""

    released: int
    served: int
    interrupted: int
    average_response_time: float
    response_times: tuple[float, ...]

    @property
    def served_ratio(self) -> float:
        """SR: served / released (1.0 for an empty system)."""
        return self.served / self.released if self.released else 1.0

    @property
    def interrupted_ratio(self) -> float:
        """IR: interrupted / released (0.0 for an empty system)."""
        return self.interrupted / self.released if self.released else 0.0


@dataclass(frozen=True)
class SetMetrics:
    """Averages over the runs of one generated set (a Tables 2-5 column)."""

    aart: float
    air: float
    asr: float
    runs: tuple[RunMetrics, ...]

    def as_row(self) -> dict[str, float]:
        """The three table cells, keyed like the paper's row labels."""
        return {"AART": self.aart, "AIR": self.air, "ASR": self.asr}

    # -- dispersion (not in the paper's tables, but a downstream user's
    #    first question about ten-system averages) --------------------------

    def _std(self, values: list[float], mean: float) -> float:
        n = len(values)
        if n < 2:
            return 0.0
        return (sum((v - mean) ** 2 for v in values) / (n - 1)) ** 0.5

    @property
    def aart_std(self) -> float:
        """Sample standard deviation of the per-run average response times."""
        return self._std(
            [r.average_response_time for r in self.runs], self.aart
        )

    @property
    def asr_std(self) -> float:
        """Sample standard deviation of the per-run served ratios."""
        return self._std([r.served_ratio for r in self.runs], self.asr)

    @property
    def air_std(self) -> float:
        """Sample standard deviation of the per-run interrupted ratios."""
        return self._std([r.interrupted_ratio for r in self.runs], self.air)

    def aart_confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the (normal-approximation) confidence interval
        on the AART, at ``z`` standard errors (default ~95%)."""
        n = len(self.runs)
        if n < 2:
            return 0.0
        return z * self.aart_std / n ** 0.5


def measure_run(jobs: list[AperiodicJob]) -> RunMetrics:
    """Compute one run's metrics from its aperiodic job records.

    ``jobs`` must be every aperiodic job released during the run, in any
    order.  Interrupted jobs are those flagged by the execution arm's
    ``Timed`` budget enforcement; they count as released but not served.
    """
    released = len(jobs)
    served_jobs = [j for j in jobs if j.state is JobState.COMPLETED]
    interrupted = sum(1 for j in jobs if j.interrupted)
    rts = []
    for job in served_jobs:
        rt = job.response_time
        assert rt is not None, f"completed job {job.name} lacks finish time"
        rts.append(rt)
    avg = sum(rts) / len(rts) if rts else 0.0
    return RunMetrics(
        released=released,
        served=len(served_jobs),
        interrupted=interrupted,
        average_response_time=avg,
        response_times=tuple(rts),
    )


def aggregate(runs: list[RunMetrics]) -> SetMetrics:
    """Average per-run measures into AART / AIR / ASR.

    Runs that served no event contribute 0 to the AART average, matching
    the straightforward "average of the average-response-times" the paper
    describes (a served-weighted mean is deliberately not used).
    """
    if not runs:
        raise ValueError("cannot aggregate an empty list of runs")
    n = len(runs)
    return SetMetrics(
        aart=sum(r.average_response_time for r in runs) / n,
        air=sum(r.interrupted_ratio for r in runs) / n,
        asr=sum(r.served_ratio for r in runs) / n,
        runs=tuple(runs),
    )


@dataclass
class PeriodicRunSummary:
    """Per-task metrics of one periodic run, extrapolation-aware.

    Produced by :func:`periodic_summary` from a finished kernel.  When
    the run was fast-forwarded over ``windows_extrapolated`` cycles
    (see :mod:`repro.cycle`), the totals combine what the trace and job
    records actually hold with the per-cycle accumulators scaled by the
    skipped window count; counts and sums scale linearly, maxima are
    cycle-invariant.  For a full run every extrapolation term is zero
    and the same formulas apply verbatim — which is what makes summaries
    of full and fast-forwarded runs directly (bit-for-bit, on task sets
    whose times are exactly representable) comparable.
    """

    horizon: float
    n_cores: int
    released: dict[str, int]
    completed: dict[str, int]
    missed: dict[str, int]
    aborted: dict[str, int]
    busy: dict[str, float]
    response_sum: dict[str, float]
    response_max: dict[str, float]
    windows_extrapolated: int = 0
    extrapolated_time: float = 0.0

    @property
    def total_released(self) -> int:
        return sum(self.released.values())

    @property
    def total_completed(self) -> int:
        return sum(self.completed.values())

    @property
    def total_missed(self) -> int:
        return sum(self.missed.values())

    @property
    def utilization(self) -> float:
        """Processor-time fraction spent executing, over all cores."""
        if self.horizon <= 0:
            return 0.0
        return sum(self.busy.values()) / (self.horizon * self.n_cores)

    def average_response_time(self, task: str) -> float:
        """Mean response time of ``task``'s completed activations."""
        n = self.completed.get(task, 0)
        return self.response_sum.get(task, 0.0) / n if n else 0.0


def periodic_summary(sim) -> PeriodicRunSummary:
    """Summarise a finished :class:`~repro.sim.engine.Simulation` or
    :class:`~repro.smp.engine.MulticoreSimulation` over its periodic
    tasks, folding in the cycle extrapolation when one applies."""
    trace = sim.trace
    report = getattr(sim, "_cycle_report", None)
    q = (
        report.windows_skipped
        if report is not None and report.status == "fastforwarded"
        else 0
    )
    miss_kind = TraceEventKind.DEADLINE_MISS
    abort_kind = TraceEventKind.ABORT
    task_names = {t._name for t in sim.periodic_tasks}
    missed: dict[str, int] = {}
    aborted: dict[str, int] = {}
    for event in trace.events:
        kind = event.kind
        if kind is miss_kind or kind is abort_kind:
            name = event.subject.rsplit("#", 1)[0]
            if name in task_names:
                bucket = missed if kind is miss_kind else aborted
                bucket[name] = bucket.get(name, 0) + 1
    released: dict[str, int] = {}
    completed: dict[str, int] = {}
    resp_sum: dict[str, float] = {}
    resp_max: dict[str, float] = {}
    busy: dict[str, float] = {}
    for task in sim.periodic_tasks:
        name = task._name
        n_done = 0
        r_sum = 0.0
        r_max = 0.0
        for job in task.jobs:
            if job.state is JobState.COMPLETED and job.finish_time is not None:
                n_done += 1
                rt = job.finish_time - job.release
                r_sum += rt
                if rt > r_max:
                    r_max = rt
        released[name] = len(task.jobs)
        completed[name] = n_done
        resp_sum[name] = r_sum
        resp_max[name] = r_max
        busy[name] = trace.busy_time(name)
        missed.setdefault(name, 0)
        aborted.setdefault(name, 0)
    if q:
        for name in task_names:
            released[name] += q * report.window_released.get(name, 0)
            completed[name] += q * report.window_completed.get(name, 0)
            missed[name] += q * report.window_missed.get(name, 0)
            aborted[name] += q * report.window_aborted.get(name, 0)
            resp_sum[name] += q * report.window_response_sum.get(name, 0.0)
            w_max = report.window_response_max.get(name, 0.0)
            if w_max > resp_max[name]:
                resp_max[name] = w_max
        for name, extra in report.window_busy.items():
            if name in busy:
                busy[name] += q * extra
    return PeriodicRunSummary(
        horizon=sim.now,
        n_cores=getattr(sim, "n_cores", 1),
        released=released,
        completed=completed,
        missed=missed,
        aborted=aborted,
        busy=busy,
        response_sum=resp_sum,
        response_max=resp_max,
        windows_extrapolated=q,
        extrapolated_time=report.skipped_time if q else 0.0,
    )
