"""``PollingTaskServer`` — the paper's modified Polling Server (S4.1).

The server encapsulates a periodic ``RealtimeThread``.  At each periodic
activation it repeatedly asks ``chooseNextEvent()`` for a pending release
it can *finish* (Java threads are not resumable, so unlike the literature
PS a handler is only started when the remaining capacity covers its
declared cost), runs it through ``Timed`` with the remaining capacity as
the budget, decreases the capacity by the measured wall time, and
suspends until the next period once nothing fits.

Two queue disciplines are supported:

* ``"fifo"`` (default) — the paper's implementation: first release whose
  declared cost fits the remaining capacity, so cheap late events can
  overtake expensive early ones;
* ``"bucket"`` — the Section 7 list-of-lists: strict bucket order, one
  bucket per server instance, enabling the O(1) on-line response-time
  prediction of equation (5) (exposed via :meth:`predict_response_time_ns`
  and recorded per release).
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from ..rtsj.instructions import Instruction, WaitForNextPeriod
from ..rtsj.params import PeriodicParameters
from ..rtsj.thread import RealtimeThread
from ..rtsj.vm import NS_PER_UNIT, RTSJVirtualMachine
from .events import HandlerRelease
from .parameters import TaskServerParameters
from .queues import BucketPlacement, InstanceBucketQueue, PendingQueue
from .server import TaskServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.enforcement import EnforcementConfig
    from ..overload.config import OverloadConfig

__all__ = ["PollingTaskServer"]


class PollingTaskServer(TaskServer):
    """Polling Server policy adapted to RTSJ constraints."""

    def __init__(
        self,
        params: TaskServerParameters,
        name: str = "PS",
        queue: str = "fifo",
        safety_margin: RelativeTime | None = None,
        enforcement: "EnforcementConfig | None" = None,
        overload: "OverloadConfig | None" = None,
    ) -> None:
        super().__init__(params, name, enforcement=enforcement,
                         overload=overload)
        if queue not in ("fifo", "bucket"):
            raise ValueError(f"queue must be 'fifo' or 'bucket', got {queue!r}")
        self.queue_kind = queue
        # Section 7's proposed improvement: "avoid some interruptions in
        # delaying the execution of events handlers with a cost too close
        # of the remaining capacity" — a handler is only chosen when its
        # declared cost plus this margin fits the remaining capacity
        self.safety_margin_ns = (
            safety_margin.total_nanos if safety_margin is not None else 0
        )
        if self.safety_margin_ns < 0:
            raise ValueError("safety_margin must be non-negative")
        bound = self._queue_bound_kwargs()
        self._fifo: PendingQueue[HandlerRelease] = PendingQueue(**bound)
        self._buckets = InstanceBucketQueue[HandlerRelease](
            params.capacity_ns, **bound
        )
        self._thread: RealtimeThread | None = None
        # prediction bookkeeping (bucket mode)
        self._current_activation = -1
        self._instance_open = False
        self._serving_bucket_index = -1

    # -- installation -------------------------------------------------------------

    def _install(self, vm: RTSJVirtualMachine, horizon_ns: int) -> None:
        release = PeriodicParameters(
            start=self.params.start,
            period=self.params.period,
            cost=self.params.capacity,
        )
        self._thread = RealtimeThread(
            self._run,
            scheduling=self.params.scheduling,
            release=release,
            name=self.name,
        )
        vm.add_thread(self._thread)

    # -- queueing -----------------------------------------------------------------

    def _enqueue(self, release: HandlerRelease) -> None:
        if self.queue_kind == "fifo":
            for victim in self._fifo.add(release):
                self._shed_release(
                    victim, f"queue bound ({self._fifo._bound.policy})"
                )
            return
        placement, shed = self._buckets.offer(release)
        for victim in shed:
            if victim.cost_ns > self._buckets.capacity_ns:
                # the Section 7 structure cannot place an oversized
                # handler; record the rejection instead of raising
                self._shed_release(victim, "oversized for bucket queue")
            else:
                self._shed_release(
                    victim, f"queue bound ({self._buckets._bound.policy})"
                )
        if placement is None:
            return
        release.placement = placement  # type: ignore[attr-defined]
        release.predicted_finish_ns = self._predict_finish_ns(  # type: ignore[attr-defined]
            placement, release.cost_ns
        )

    @property
    def pending_count(self) -> int:
        """Releases waiting to be served."""
        if self.queue_kind == "fifo":
            return len(self._fifo)
        return len(self._buckets)

    def _choose(self, remaining_ns: int) -> HandlerRelease | None:
        """``chooseNextEvent()``: a release this instance can finish."""
        remaining_ns -= self.safety_margin_ns
        if remaining_ns <= 0:
            return None
        if self.queue_kind == "fifo":
            return self._fifo.pop_first_fitting(remaining_ns)
        # bucket discipline: strictly one bucket per server instance, so
        # the (Ia, Cpa) placements computed at registration stay valid
        if self._buckets.head_instance != self._serving_bucket_index:
            return None
        head = self._buckets.peek_current()
        if head is not None and head.cost_ns <= remaining_ns:
            return self._buckets.pop_current()
        return None

    # -- the periodic service loop ---------------------------------------------------

    def _run(self, thread: RealtimeThread
             ) -> Generator[Instruction, Any, None]:
        vm = self._require_vm()
        while True:
            self._current_activation += 1
            # scaled_capacity_ns == params.capacity_ns at scale 1.0, so
            # degraded-mode scaling is invisible on the golden path
            capacity_ns = self.scaled_capacity_ns
            self.record_capacity(vm.now_ns, capacity_ns)
            self._serving_bucket_index = self._buckets.head_instance
            self._instance_open = True
            try:
                release = self._choose(capacity_ns)
                while release is not None:
                    _ok, elapsed = yield from self._serve_release(
                        thread, release, budget_ns=capacity_ns
                    )
                    capacity_ns -= elapsed
                    self.record_capacity(vm.now_ns, max(capacity_ns, 0))
                    if capacity_ns <= 0:
                        break
                    release = self._choose(capacity_ns)
            finally:
                self._instance_open = False
            yield WaitForNextPeriod()

    # -- analysis ------------------------------------------------------------------------

    def interference_ns(self, window_ns: int) -> int:
        """A polling server interferes exactly like a periodic task with
        cost = capacity and period = the server period."""
        if window_ns <= 0:
            return 0
        period = self.params.period_ns
        activations = -(-window_ns // period)  # ceil division
        return activations * self.params.capacity_ns

    # -- Section 7: O(1) response-time prediction (bucket mode) ------------------------------

    def _predict_finish_ns(self, placement, cost_ns: int) -> int:
        vm = self._require_vm()
        now = vm.now_ns
        period = self.params.period_ns
        start0 = self.params.start.total_nanos
        if (
            self._instance_open
            and self._buckets.head_instance == self._serving_bucket_index
        ):
            base_activation = self._current_activation
        elif self._instance_open:
            # the instance's bucket already finished: the current head
            # bucket claims the next activation
            base_activation = self._current_activation + 1
        else:
            # between instances; a registration landing exactly on an
            # activation instant (before the server thread wakes — event
            # timers fire first) is served by that very instance
            q, r = divmod(now - start0, period)
            if r == 0 and self._current_activation < q:
                base_activation = q
            else:
                base_activation = q + 1
        instance = base_activation + placement.instance_offset
        instance_start = start0 + instance * period
        # equation (5) verbatim: the instance serves its bucket
        # contiguously from its activation, and Cpa (claimed cost before
        # this handler, including items already dispatched) covers any
        # service elapsed since — no wall-clock correction is needed
        return instance_start + placement.cumulative_before_ns + cost_ns

    def predict_response_time_ns(self, cost_ns: int) -> int:
        """Equation (5): the response time a release of ``cost_ns`` would
        get if registered *now* (bucket mode only); O(1).

        ``Ra = (Ia*Ts + Cpa + Ca) - ra`` — computed without mutating the
        queue, by reading the tail bucket's fill level.
        """
        if self.queue_kind != "bucket":
            raise RuntimeError(
                "response-time prediction requires the bucket queue"
            )
        if cost_ns > self.params.capacity_ns:
            raise ValueError("cost exceeds the server capacity")
        vm = self._require_vm()
        now = vm.now_ns
        # replicate InstanceBucketQueue.add without mutation
        buckets = self._buckets
        if buckets.empty:
            offset, before = 0, 0
        else:
            last = buckets._buckets[-1]  # noqa: SLF001 - intimate by design
            if last.claimed_ns + cost_ns > self.params.capacity_ns:
                offset, before = buckets.bucket_count, 0
            else:
                offset, before = buckets.bucket_count - 1, last.claimed_ns
        finish = self._predict_finish_ns(
            BucketPlacement(offset, before), cost_ns
        )
        return finish - now

    def predicted_response_times(self) -> dict[str, float]:
        """Predicted response time (tu) recorded for each bucket-mode
        release, keyed by job name."""
        out: dict[str, float] = {}
        for release in self.releases:
            predicted = getattr(release, "predicted_finish_ns", None)
            if predicted is not None:
                out[release.job.name] = (
                    (predicted - release.release_ns) / NS_PER_UNIT
                )
        return out
