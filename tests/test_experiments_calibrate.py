"""Unit tests for the overhead-model calibration utility."""

from __future__ import annotations

import pytest

from repro.experiments.calibrate import (
    DEFAULT_REFERENCE_SET,
    calibrate_inflation,
    measure_air,
)
from repro.rtsj import OverheadModel
from repro.workload.spec import GenerationParameters

SMALL_SET = GenerationParameters(
    task_density=2.0, average_cost=3.0, std_deviation=2.0,
    server_capacity=4.0, server_period=6.0, nb_generation=4, seed=1983,
)


class TestMeasureAir:
    def test_zero_overhead_zero_air(self):
        assert measure_air(OverheadModel.zero(), SMALL_SET) == 0.0

    def test_air_grows_with_inflation(self):
        low = measure_air(
            OverheadModel(timer_fire_ns=0, release_ns=0, dispatch_ns=0,
                          handler_inflation_ns=50_000),
            SMALL_SET,
        )
        high = measure_air(
            OverheadModel(timer_fire_ns=0, release_ns=0, dispatch_ns=0,
                          handler_inflation_ns=800_000),
            SMALL_SET,
        )
        assert high >= low
        assert high > 0.0


class TestCalibration:
    def test_hits_reachable_target(self):
        result = calibrate_inflation(
            target_air=0.10, params=SMALL_SET, iterations=8
        )
        assert result.error <= 0.08
        assert result.model.handler_inflation_ns >= 0
        assert result.iterations <= 9

    def test_target_zero_returns_floor(self):
        result = calibrate_inflation(
            target_air=0.0, params=SMALL_SET,
            base=OverheadModel.zero(), iterations=3,
        )
        assert result.achieved_air == 0.0
        assert result.model.handler_inflation_ns == 0
        assert result.iterations == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_inflation(target_air=1.5)
        with pytest.raises(ValueError):
            calibrate_inflation(target_air=0.1, low_ns=10, high_ns=5)
        with pytest.raises(ValueError):
            calibrate_inflation(target_air=0.1, iterations=0)

    def test_default_reference_is_the_paper_middle_set(self):
        assert DEFAULT_REFERENCE_SET.task_density == 2.0
        assert DEFAULT_REFERENCE_SET.std_deviation == 2.0
        assert DEFAULT_REFERENCE_SET.seed == 1983
