"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner table3     # one table
    python -m repro.experiments.runner figures    # scenario diagrams
    python -m repro.experiments.runner checks     # shape assertions
    repro-experiments --svg-dir out/ figures      # also write SVGs

Exit status is non-zero if any shape check fails.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..rtsj import OverheadModel
from .campaign import RunPolicy, run_campaign
from .figures import render_all_figures
from .tables import TABLE_ARMS, format_comparison, format_table, shape_checks

__all__ = ["main"]

_TARGETS = ("all", "table2", "table3", "table4", "table5", "figures",
            "checks", "report")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "target", nargs="?", default="all", choices=_TARGETS,
        help="what to regenerate (default: all)",
    )
    parser.add_argument(
        "--svg-dir", type=Path, default=None,
        help="also write the figures as SVG files into this directory",
    )
    parser.add_argument(
        "--no-overhead", action="store_true",
        help="run the execution arms with the overhead model disabled "
             "(the ablation of DESIGN.md)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="print paper-vs-measured instead of the plain table",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="for the 'report' target: write the markdown there "
             "(default: print to stdout)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock limit per campaign run; a hung run is recorded "
             "as a failure instead of wedging the sweep",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a crashed/hung run up to N times with a bumped "
             "generator seed",
    )
    parser.add_argument(
        "--checkpoint", type=Path, default=None, metavar="PATH",
        help="JSONL checkpoint of per-run results; an existing file is "
             "resumed, completed runs are skipped",
    )
    args = parser.parse_args(argv)

    if args.target == "report":
        from .report import generate_report, markdown_report

        if args.output is not None:
            generate_report(args.output)
            print(f"report written to {args.output}")
        else:
            print(markdown_report())
        return 0

    failures = 0
    wants_tables = args.target in ("all", "table2", "table3", "table4",
                                   "table5", "checks")
    overhead = OverheadModel.zero() if args.no_overhead else None

    run_policy = None
    if (
        args.timeout is not None
        or args.retries
        or args.checkpoint is not None
    ):
        try:
            run_policy = RunPolicy(
                timeout_s=args.timeout,
                max_retries=args.retries,
                checkpoint_path=args.checkpoint,
            )
        except ValueError as exc:
            parser.error(str(exc))

    if wants_tables:
        campaign = run_campaign(overhead=overhead, run_policy=run_policy)
        if campaign.failures:
            print(f"WARNING: {len(campaign.failures)} run(s) failed:")
            for record in campaign.failures:
                print(
                    f"  [{record.status}] {record.arm} set={record.set_key} "
                    f"system={record.system_id} after {record.attempts} "
                    f"attempt(s)"
                )
            failures += len(campaign.failures)
        table_numbers = (
            (2, 3, 4, 5) if args.target in ("all", "checks")
            else (int(args.target[-1]),)
        )
        if args.target != "checks":
            for number in table_numbers:
                measured = campaign.table(TABLE_ARMS[number])
                if args.compare:
                    print(format_comparison(number, measured))
                else:
                    print(format_table(number, measured))
                print()
        if args.target in ("all", "checks"):
            print("Shape checks (paper conclusions):")
            for check in shape_checks(campaign.tables):
                status = "ok  " if check.holds else "FAIL"
                print(f"  [{status}] {check.description}")
                if not check.holds:
                    failures += 1
            print()

    if args.target in ("all", "figures"):
        print(render_all_figures(svg_dir=args.svg_dir))

    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
