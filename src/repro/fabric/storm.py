"""Seeded chaos storm for the sharded admission fabric.

Extends the PR 6 Poisson storm to the fabric: the same deterministic
arrival stream fans out through the :class:`~repro.fabric.router.
ShardRouter` onto N supervised shards while scheduled
:class:`ShardKill` events crash shards mid-burst (optionally corrupting
their checkpoint tails, to exercise the CRC torn-record skip on
restore).  The supervisor notices the frozen heartbeats, declares the
shard down, fails its sources over to siblings with spare bucket
capacity, and restores it from the write-ahead checkpoint after the
restart delay.

The report's pass criteria mirror the acceptance bar: zero
:class:`~repro.verify.fabric.FabricProtocolMonitor` violations on the
merged cross-shard timeline, zero double-admitted request ids, and
every hard-deadline request either met or explicitly SHED.  A
single-shard unsupervised fabric replays the plain service storm
byte-for-byte (same twin hash), which pins the fabric's overhead to
exactly zero semantic drift.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass, field
from pathlib import Path

from ..faults.injectors import ExecutionSkew
from ..sim.trace import TraceEventKind
from ..workload.rng import PortableRandom
from ..service.service import ServiceConfig
from ..service.storm import (
    StormConfig,
    default_storm_service_config,
    storm_requests,
)
from .fabric import AdmissionFabric, FabricConfig
from .router import FabricClient
from .supervisor import SupervisorConfig

__all__ = ["ShardKill", "FabricStormConfig", "FabricStormReport",
           "run_fabric_storm"]


@dataclass(frozen=True)
class ShardKill:
    """One scheduled crash: kill ``shard`` at instant ``at``.

    ``corrupt_tail`` additionally appends a torn half-record to the
    shard's checkpoint (the artifact of dying mid-``append``), so the
    restore has to skip it via the per-line CRC.
    """

    at: float
    shard: int
    corrupt_tail: bool = False

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ValueError(f"kill instant must be > 0, got {self.at}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")


@dataclass(frozen=True)
class FabricStormConfig:
    """One seeded fabric storm: arrivals, topology, scheduled chaos."""

    # -- the arrival process (identical semantics to StormConfig) ------
    rate: float = 0.5
    horizon: float = 200.0
    seed: int = 0
    burst: tuple[float, float, float] | None = (60.0, 85.0, 4.0)
    cost_range: tuple[float, float] = (0.3, 1.5)
    deadline_factor: float = 8.0
    hard_fraction: float = 0.7
    optional_fraction: float = 0.3
    sources: int = 3
    drift_ppm: float = 0.0
    overrun_factor: float = 1.0
    overrun_probability: float = 0.0
    settle: float = 60.0
    # -- the fabric topology and chaos schedule ------------------------
    shards: int = 3
    reserve: float = 0.1
    supervised: bool = True
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    kills: tuple[ShardKill, ...] = ()
    #: fraction of arrivals a *second* client also submits (same
    #: request id — the duplicate-retry chaos the idempotency cache
    #: must absorb); 0.0 keeps the arrival drive byte-identical to the
    #: plain storm
    duplicate_fraction: float = 0.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if self.sources < 1:
            raise ValueError(f"sources must be >= 1, got {self.sources}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not 0 <= self.duplicate_fraction <= 1:
            raise ValueError(
                "duplicate_fraction must be in [0, 1], got "
                f"{self.duplicate_fraction}"
            )
        for kill in self.kills:
            if kill.shard >= self.shards:
                raise ValueError(
                    f"kill targets shard {kill.shard} but the fabric "
                    f"has {self.shards}"
                )

    @property
    def skew(self) -> ExecutionSkew:
        return ExecutionSkew(
            drift_ppm=self.drift_ppm,
            overrun_factor=self.overrun_factor,
            overrun_probability=self.overrun_probability,
        )

    def as_storm_config(self) -> StormConfig:
        """The equivalent single-service storm (same arrival stream)."""
        return StormConfig(
            rate=self.rate, horizon=self.horizon, seed=self.seed,
            burst=self.burst, cost_range=self.cost_range,
            deadline_factor=self.deadline_factor,
            hard_fraction=self.hard_fraction,
            optional_fraction=self.optional_fraction,
            sources=self.sources, drift_ppm=self.drift_ppm,
            overrun_factor=self.overrun_factor,
            overrun_probability=self.overrun_probability,
            settle=self.settle,
        )


@dataclass
class FabricStormReport:
    """What one fabric storm produced, fabric-wide."""

    config: FabricStormConfig
    horizon: float
    submitted: int = 0
    decisions: dict = field(default_factory=dict)
    completed: int = 0
    shed: int = 0
    deadline_cuts: int = 0
    soft_misses: int = 0
    routed: int = 0
    deduplicated: int = 0
    unreachable: int = 0
    failover_routed: int = 0
    browned_out: int = 0
    client_retries: int = 0
    duplicate_submissions: int = 0
    kills: int = 0
    declared_down: int = 0
    restored: int = 0
    failover_latencies: list = field(default_factory=list)
    failover_admits: int = 0
    #: request ids with more than one non-resumed RELEASE across the
    #: merged timeline — computed from the trace, independently of the
    #: router's own counters
    double_admitted: list = field(default_factory=list)
    hard_misses: int = 0
    violations: list = field(default_factory=list)
    twin_hashes: dict = field(default_factory=dict)
    state_hash: str = ""
    drained_completed: int = 0
    drained_shed: int = 0
    wall_seconds: float = 0.0
    per_shard: dict = field(default_factory=dict)
    #: the merged cross-shard trace (diagnostics; not serialised)
    trace: object = field(default=None, repr=False, compare=False)

    @property
    def clean(self) -> bool:
        """The storm's pass criterion: verified-clean chaos."""
        return (not self.violations and not self.double_admitted
                and self.hard_misses == 0)

    @property
    def admitted(self) -> int:
        return self.decisions.get("admit", 0)

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "submitted": self.submitted,
            "decisions": dict(self.decisions),
            "completed": self.completed,
            "shed": self.shed,
            "deadline_cuts": self.deadline_cuts,
            "soft_misses": self.soft_misses,
            "routed": self.routed,
            "deduplicated": self.deduplicated,
            "unreachable": self.unreachable,
            "failover_routed": self.failover_routed,
            "browned_out": self.browned_out,
            "client_retries": self.client_retries,
            "duplicate_submissions": self.duplicate_submissions,
            "kills": self.kills,
            "declared_down": self.declared_down,
            "restored": self.restored,
            "failover_latencies": [
                round(x, 6) for x in self.failover_latencies
            ],
            "failover_admits": self.failover_admits,
            "double_admitted": list(self.double_admitted),
            "hard_misses": self.hard_misses,
            "violations": list(self.violations),
            "twin_hashes": dict(self.twin_hashes),
            "state_hash": self.state_hash,
            "drained_completed": self.drained_completed,
            "drained_shed": self.drained_shed,
            "wall_seconds": round(self.wall_seconds, 3),
            "per_shard": dict(self.per_shard),
        }


def _corrupt_tail(path: Path) -> None:
    """Append the torn half-record a mid-``append`` crash leaves."""
    with open(path, "ab") as handle:
        handle.write(b'{"op": "admit", "t": 999999, "requ')


async def _drive(fabric: AdmissionFabric, config: FabricStormConfig,
                 report: FabricStormReport) -> None:
    clock = fabric.clock
    clients = {
        f"src-{i}": FabricClient(
            fabric.router, seed=config.seed * 1009 + i,
            max_attempts=config.max_attempts,
        )
        for i in range(config.sources)
    }
    # the duplicate layer only exists (and only draws randomness) when
    # enabled, so duplicate_fraction=0.0 keeps the drive byte-identical
    # to the plain service storm
    dup_rng = None
    dup_clients: dict[str, FabricClient] = {}
    if config.duplicate_fraction > 0:
        dup_rng = PortableRandom(config.seed * 7919 + 13)
        dup_clients = {
            f"src-{i}": FabricClient(
                fabric.router, seed=config.seed * 7919 + i,
                max_attempts=config.max_attempts,
            )
            for i in range(config.sources)
        }
    kills = sorted(config.kills, key=lambda k: (k.at, k.shard))
    next_kill = 0

    async def apply_kills_until(when: float) -> None:
        nonlocal next_kill
        while next_kill < len(kills) and kills[next_kill].at <= when:
            kill = kills[next_kill]
            next_kill += 1
            await clock.advance(kill.at)
            fabric.kill_shard(kill.shard)
            checkpoint = fabric.shards[kill.shard].checkpoint
            if kill.corrupt_tail and checkpoint is not None:
                _corrupt_tail(checkpoint)

    pending: list[asyncio.Task] = []
    for when, request in storm_requests(config.as_storm_config()):
        await apply_kills_until(when)
        await clock.advance(when)
        pending.append(asyncio.create_task(
            clients[request.source].submit(request)
        ))
        if dup_rng is not None and (
            dup_rng.random() < config.duplicate_fraction
        ):
            # an impatient client re-submitting the same request id
            report.duplicate_submissions += 1
            pending.append(asyncio.create_task(
                dup_clients[request.source].submit(request)
            ))
        await asyncio.sleep(0)  # let the submissions decide at `when`
    tail = config.horizon + config.settle
    await apply_kills_until(tail)
    await clock.advance(tail)
    # ride out any still-down shard's restore window before draining,
    # so its resumed in-flight work reaches a terminal
    if fabric.supervisor is not None and fabric.checkpoint_dir is not None:
        for _ in range(200):
            if fabric.alive_count == len(fabric.shards):
                break
            await clock.advance(clock.now() + fabric.supervisor.interval)
    drained = await fabric.drain()
    report.drained_completed = sum(d.completed for d in drained.values())
    report.drained_shed = sum(d.shed for d in drained.values())
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    report.horizon = clock.now()
    report.client_retries = sum(c.retries for c in clients.values())
    report.client_retries += sum(c.retries for c in dup_clients.values())


def run_fabric_storm(
    config: FabricStormConfig,
    shard_config: ServiceConfig | None = None,
    checkpoint_dir: Path | str | None = None,
) -> FabricStormReport:
    """Run one seeded fabric storm through its chaos schedule.

    ``checkpoint_dir`` receives one write-ahead JSONL log per shard; it
    is mandatory when the schedule kills shards (the supervisor restores
    from checkpoint — without one a killed shard stays dead and its
    in-flight work is flagged by the monitor, which is the point of the
    invariant, not of the harness).
    """
    if config.kills and config.supervised and checkpoint_dir is None:
        raise ValueError(
            "a supervised storm with scheduled kills needs a "
            "checkpoint_dir to restore shards from"
        )
    if shard_config is None:
        shard_config = default_storm_service_config()
    skew = config.skew if config.skew.active else None
    fabric_config = FabricConfig(
        shards=config.shards,
        sources=tuple(f"src-{i}" for i in range(config.sources)),
        reserve=config.reserve,
        supervised=config.supervised,
        supervisor=config.supervisor,
    )
    report = FabricStormReport(config=config, horizon=config.horizon)
    wall_start = _time.perf_counter()

    async def _main() -> AdmissionFabric:
        fabric = AdmissionFabric(
            fabric_config, shard_config, skew=skew, seed=config.seed,
            checkpoint_dir=checkpoint_dir,
        )
        await fabric.start()
        await _drive(fabric, config, report)
        return fabric

    fabric = asyncio.run(_main())
    report.wall_seconds = _time.perf_counter() - wall_start
    metrics = fabric.metrics()
    report.submitted = metrics["submitted"]
    report.decisions = metrics["decisions"]
    report.completed = metrics["completed"]
    report.shed = metrics["shed"]
    report.deadline_cuts = metrics["deadline_cuts"]
    report.soft_misses = metrics["soft_misses"]
    report.routed = metrics["routed"]
    report.deduplicated = metrics["deduplicated"]
    report.unreachable = metrics["unreachable"]
    report.failover_routed = metrics["failover_routed"]
    report.browned_out = metrics["browned_out"]
    report.kills = metrics["kills"]
    report.declared_down = metrics["declared_down"]
    report.restored = metrics["restored"]
    report.failover_latencies = metrics["failover_latencies"]
    report.failover_admits = metrics["failover_admits"]
    report.per_shard = metrics["shards"]
    report.twin_hashes = {
        name: shard["twin_hash"]
        for name, shard in metrics["shards"].items()
    }
    report.state_hash = fabric.state_hash()
    verification, merged = fabric.finish(report.horizon)
    report.violations = [str(v) for v in verification.violations]
    report.trace = merged
    releases: dict[str, int] = {}
    for event in merged.events:
        if event.kind is TraceEventKind.RELEASE and (
            not event.detail.startswith("resumed")
        ):
            releases[event.subject] = releases.get(event.subject, 0) + 1
        elif event.kind is TraceEventKind.DEADLINE_MISS and (
            "soft" not in event.detail
        ):
            report.hard_misses += 1
    report.double_admitted = sorted(
        rid for rid, count in releases.items() if count > 1
    )
    return report
