"""Random real-time system generation (paper Section 6.1)."""

from .rng import PortableRandom
from .spec import (
    AperiodicEventSpec,
    GeneratedSystem,
    GenerationParameters,
    PeriodicTaskSpec,
    ServerSpec,
)
from .generator import PAPER_SETS, RandomSystemGenerator, generate_campaign_sets
from .uunifast import (
    generate_multicore_taskset,
    generate_periodic_taskset,
    uunifast,
    uunifast_discard,
)
from .arrival_curves import AffineArrivalCurve, curve_of_system, fit_affine_curve

__all__ = [
    "PortableRandom",
    "AperiodicEventSpec",
    "GeneratedSystem",
    "GenerationParameters",
    "PeriodicTaskSpec",
    "ServerSpec",
    "RandomSystemGenerator",
    "generate_campaign_sets",
    "PAPER_SETS",
    "generate_multicore_taskset",
    "generate_periodic_taskset",
    "uunifast",
    "uunifast_discard",
    "AffineArrivalCurve",
    "curve_of_system",
    "fit_affine_curve",
]
