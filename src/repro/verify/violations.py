"""Structured verification outcomes.

A monitor or oracle never asserts: it records a :class:`Violation` on a
shared :class:`VerificationReport`.  A violation carries enough context
to locate the failing window on a Gantt chart — the kind of rule broken,
the instant it was detected, the entities involved and the indices of
the witnessing trace events/segments — so a chaos-campaign failure can
be replayed, shrunk and rendered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Violation", "VerificationReport", "VerificationError"]


class VerificationError(AssertionError):
    """Raised by :meth:`VerificationReport.raise_if_violations`."""


@dataclass(frozen=True)
class Violation:
    """One broken invariant or missed analytical bound.

    ``kind`` is a stable machine-readable tag (``"fp-inversion"``,
    ``"capacity-overdraw"``, ...); ``time`` is the instant the rule was
    observed broken; ``entities`` names the tasks/servers/jobs involved;
    ``witness`` holds indices into ``trace.events`` (when the evidence is
    point events) so the failing window is mechanically recoverable.
    """

    kind: str
    time: float
    entities: tuple[str, ...] = ()
    detail: str = ""
    witness: tuple[int, ...] = ()

    def __str__(self) -> str:
        who = ",".join(self.entities) or "-"
        text = f"[{self.kind}] t={self.time:g} {who}"
        if self.detail:
            text += f": {self.detail}"
        return text


@dataclass
class VerificationReport:
    """Accumulates violations across every monitor watching one run."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(self, kind: str, time: float,
               entities: tuple[str, ...] = (), detail: str = "",
               witness: tuple[int, ...] = ()) -> Violation:
        violation = Violation(kind, time, entities, detail, witness)
        self.violations.append(violation)
        return violation

    def kinds(self) -> set[str]:
        """Distinct violation kinds recorded (mutation tests key on this)."""
        return {v.kind for v in self.violations}

    def summary(self, limit: int = 10) -> str:
        """Human-readable digest, at most ``limit`` violations spelled out."""
        if self.ok:
            return "verification ok (0 violations)"
        lines = [f"{len(self.violations)} violation(s):"]
        for violation in self.violations[:limit]:
            lines.append(f"  {violation}")
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if not self.ok:
            raise VerificationError(self.summary())
