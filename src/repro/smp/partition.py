"""Partitioned multiprocessor placement: bin-packing tasks onto cores.

Partitioned scheduling reduces the multiprocessor problem to *m*
uniprocessor ones: every task is statically assigned to one core and
never migrates.  The assignment is a bin-packing of task utilizations
into per-core capacity bins, here with the three classic
decreasing-utilization heuristics (tasks are sorted by utilization,
largest first, then placed):

* **first-fit** (``ff``): the lowest-numbered core with room;
* **worst-fit** (``wf``): the core with the most remaining room
  (spreads load — the balanced placement);
* **best-fit** (``bf``): the core with the least remaining room that
  still fits (consolidates load — leaves the emptiest cores free).

A per-core ``reserve`` carves out utilization for a local aperiodic task
server (capacity/period), so the periodic partition and the per-core
server together never exceed the core's capacity bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workload.spec import PeriodicTaskSpec

__all__ = ["PLACEMENT_HEURISTICS", "PartitionError", "Partition",
           "partition_tasks"]

PLACEMENT_HEURISTICS = ("ff", "wf", "bf")

_EPS = 1e-9


class PartitionError(ValueError):
    """No core can host a task under the given heuristic and bound."""


@dataclass(frozen=True)
class Partition:
    """A feasible placement of tasks onto ``n_cores`` identical cores."""

    n_cores: int
    heuristic: str
    #: task name -> core index
    core_of: dict[str, int]
    #: per-core periodic utilization (excluding any server reserve)
    utilization: tuple[float, ...]
    #: per-core utilization bound the packing respected
    capacity: float
    #: per-core utilization reserved for a local server
    reserve: float = 0.0

    def tasks_on(self, core: int,
                 tasks: list[PeriodicTaskSpec]) -> list[PeriodicTaskSpec]:
        """The subset of ``tasks`` placed on ``core``, in input order."""
        return [t for t in tasks if self.core_of[t.name] == core]

    @property
    def total_utilization(self) -> float:
        return sum(self.utilization)


@dataclass
class _Bin:
    core: int
    room: float
    load: float = 0.0
    tasks: list[str] = field(default_factory=list)


def partition_tasks(
    tasks: list[PeriodicTaskSpec],
    n_cores: int,
    heuristic: str = "ff",
    capacity: float = 1.0,
    reserve: float = 0.0,
) -> Partition:
    """Pack ``tasks`` onto ``n_cores`` cores by decreasing utilization.

    ``capacity`` is the per-core utilization bound (1.0 for EDF-style
    full utilization; pass e.g. a Liu & Layland bound for a guaranteed
    fixed-priority partition); ``reserve`` is subtracted from every
    core's bound to leave room for a local aperiodic server.  Raises
    :class:`PartitionError` when some task fits on no core — partitioned
    scheduling *rejects* such sets rather than degrading, which is the
    behaviour the admission layer needs to observe.
    """
    if n_cores <= 0:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    if heuristic not in PLACEMENT_HEURISTICS:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; choose from "
            f"{PLACEMENT_HEURISTICS}"
        )
    if not 0 < capacity <= 1.0:
        raise ValueError(f"capacity must be in (0, 1], got {capacity}")
    if not 0 <= reserve < capacity:
        raise ValueError(
            f"reserve must be in [0, capacity), got {reserve} "
            f"(capacity {capacity})"
        )
    room = capacity - reserve
    bins = [_Bin(core=k, room=room) for k in range(n_cores)]
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError("task names must be unique for partitioning")
    # decreasing utilization, name as the deterministic tie-break
    ordered = sorted(tasks, key=lambda t: (-t.utilization, t.name))
    for task in ordered:
        candidates = [
            b for b in bins if task.utilization <= b.room + _EPS
        ]
        if not candidates:
            raise PartitionError(
                f"task {task.name!r} (U={task.utilization:.3f}) fits on no "
                f"core: per-core bound {capacity:g} minus reserve "
                f"{reserve:g}, loads "
                f"{[round(b.load, 3) for b in bins]}"
            )
        if heuristic == "ff":
            chosen = candidates[0]
        elif heuristic == "wf":
            chosen = max(candidates, key=lambda b: (b.room, -b.core))
        else:  # bf
            chosen = min(candidates, key=lambda b: (b.room, b.core))
        chosen.room -= task.utilization
        chosen.load += task.utilization
        chosen.tasks.append(task.name)
    return Partition(
        n_cores=n_cores,
        heuristic=heuristic,
        core_of={
            name: b.core for b in bins for name in b.tasks
        },
        utilization=tuple(b.load for b in bins),
        capacity=capacity,
        reserve=reserve,
    )
