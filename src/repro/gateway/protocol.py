"""Length-prefixed JSON wire protocol of the admission gateway.

One frame = a 4-byte big-endian unsigned payload length followed by
that many bytes of UTF-8 JSON.  The framing is deliberately minimal —
the robustness lives in the *limits*:

* a declared length beyond ``max_frame`` is rejected before a single
  payload byte is read (:class:`FrameTooLarge`), so an attacker cannot
  make the gateway buffer arbitrary amounts;
* the header read honours an *idle* timeout (silence between frames)
  and the payload read a *read* timeout (a peer trickling one byte at a
  time — slowloris — trips :class:`FrameTimeout` instead of pinning a
  connection slot forever);
* EOF mid-frame is a :class:`TornFrame`, distinct from the clean EOF at
  a frame boundary (``None``), so the accounting can tell a polite
  hangup from a torn write.

Payload shapes (the full spec lives in ``docs/deployment.md``):

* client → gateway: ``{"kind": "submit", "request": {...}}`` or
  ``{"kind": "ping"}``;
* gateway → client: ``{"kind": "ticket", "ticket": {...}}``,
  ``{"kind": "pong", "now": t}`` or ``{"kind": "error", "error": msg}``.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.service import AdmissionTicket, EventRequest

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameTooLarge",
    "FrameTimeout",
    "TornFrame",
    "encode_frame",
    "read_frame",
    "read_raw_frame",
    "write_frame",
    "submit_payload",
    "ping_payload",
    "ticket_payload",
    "error_payload",
    "parse_request",
    "parse_ticket",
]

#: default ceiling on one frame's JSON payload
MAX_FRAME_BYTES = 64 * 1024
_HEADER = struct.Struct(">I")


class FrameError(Exception):
    """The peer violated the framing protocol."""


class FrameTooLarge(FrameError):
    """Declared payload length exceeds the negotiated ceiling."""


class FrameTimeout(FrameError):
    """The peer went silent mid-frame (or idled past the idle bound)."""


class TornFrame(FrameError):
    """The connection ended in the middle of a frame."""


def encode_frame(payload: dict, *, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise FrameTooLarge(
            f"payload is {len(body)} bytes, ceiling {max_frame}"
        )
    return _HEADER.pack(len(body)) + body


async def _read_exactly(
    reader: asyncio.StreamReader, n: int, timeout: float | None,
    *, mid_frame: bool,
) -> bytes | None:
    """``n`` bytes, or ``None`` on clean EOF before the first byte."""
    try:
        if timeout is None:
            return await reader.readexactly(n)
        return await asyncio.wait_for(reader.readexactly(n), timeout)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not mid_frame:
            return None  # clean hangup at a frame boundary
        raise TornFrame(
            f"connection ended {len(exc.partial)}/{n} bytes into a read"
        ) from exc
    except (asyncio.TimeoutError, TimeoutError) as exc:
        kind = "mid-frame read" if mid_frame else "idle"
        raise FrameTimeout(f"{kind} timeout after {timeout:g}s") from exc


async def read_raw_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    idle_timeout: float | None = None,
    read_timeout: float | None = None,
) -> bytes | None:
    """One frame's *wire bytes* (header + payload), unparsed.

    The fault proxy uses this to forward/duplicate/tear frames
    coherently without caring about their JSON.  Returns ``None`` on
    clean EOF at a frame boundary.
    """
    header = await _read_exactly(reader, _HEADER.size, idle_timeout,
                                 mid_frame=False)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            f"declared payload {length} bytes, ceiling {max_frame}"
        )
    body = await _read_exactly(reader, length, read_timeout, mid_frame=True)
    return header + body


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    idle_timeout: float | None = None,
    read_timeout: float | None = None,
) -> dict | None:
    """One parsed payload, or ``None`` on clean EOF at a boundary."""
    raw = await read_raw_frame(
        reader, max_frame=max_frame,
        idle_timeout=idle_timeout, read_timeout=read_timeout,
    )
    if raw is None:
        return None
    try:
        payload = json.loads(raw[_HEADER.size:].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def write_frame(
    writer: asyncio.StreamWriter, payload: dict,
    *, max_frame: int = MAX_FRAME_BYTES,
) -> None:
    writer.write(encode_frame(payload, max_frame=max_frame))
    await writer.drain()


# -- payload constructors / parsers -------------------------------------


def submit_payload(request: EventRequest) -> dict:
    return {"kind": "submit", "request": request.to_dict()}


def ping_payload() -> dict:
    return {"kind": "ping"}


def ticket_payload(ticket: AdmissionTicket) -> dict:
    return {"kind": "ticket", "ticket": ticket.to_dict()}


def error_payload(message: str) -> dict:
    return {"kind": "error", "error": message}


def parse_request(payload: dict) -> EventRequest:
    """The :class:`EventRequest` of a submit payload; raises
    :class:`FrameError` on malformed shapes (unknown fields, bad
    values) so the connection handler can answer with an error frame
    instead of crashing."""
    data = payload.get("request")
    if not isinstance(data, dict):
        raise FrameError("submit payload carries no request object")
    try:
        return EventRequest.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise FrameError(f"malformed request: {exc}") from exc


def parse_ticket(payload: dict) -> AdmissionTicket:
    data = payload.get("ticket")
    if not isinstance(data, dict):
        raise FrameError("ticket payload carries no ticket object")
    try:
        return AdmissionTicket.from_dict(data)
    except (TypeError, ValueError, KeyError) as exc:
        raise FrameError(f"malformed ticket: {exc}") from exc
