"""Breaker half-open semantics under concurrent asyncio submissions.

The PR 3 breaker documents that at most ``half_open_probes`` probes are
in flight after a cooldown and that rejected submissions are *not*
failures.  This pins the contract at the service edge: many concurrent
submissions race for the probe slot, exactly one wins, the losers get
``REJECT_BREAKER`` tickets that neither re-open the breaker nor count
toward its failure window.
"""

from __future__ import annotations

import asyncio

from repro.overload.breaker import BreakerState
from repro.overload.config import BreakerConfig
from repro.service import (
    AdmissionService,
    Decision,
    EventRequest,
    ServiceConfig,
    VirtualClock,
)

CONFIG = ServiceConfig(
    capacity=2.0, period=2.0,
    queue_bound=1,
    breaker=BreakerConfig(failure_threshold=2, window=50.0,
                          cooldown=10.0, half_open_probes=1),
    detector=None,
)


def _req(rid: str, cost: float = 1.0, deadline: float = 30.0,
         source: str = "src") -> EventRequest:
    return EventRequest(request_id=rid, cost=cost,
                        relative_deadline=deadline, source=source)


async def _trip_breaker(service: AdmissionService) -> None:
    """Open src's breaker behaviourally: overflow the bounded queue."""
    blocker = await service.submit(_req("blocker", cost=1.5, deadline=60.0))
    assert blocker.admitted
    for i in range(2):   # two overload sheds = failure_threshold
        ticket = await service.submit(_req(f"over-{i}"))
        assert ticket.decision is Decision.REJECT_OVERLOAD
    breaker = service._breakers["src"]
    assert breaker.state is BreakerState.OPEN


class TestHalfOpenRace:
    def test_exactly_one_probe_wins(self):
        async def scenario():
            clock = VirtualClock()
            service = AdmissionService(CONFIG, clock=clock)
            await service.start()
            await _trip_breaker(service)
            breaker = service._breakers["src"]
            opens_before = breaker.open_count
            failures_before = len(breaker._failures)

            # cooldown passes and the blocker completes (queue empties)
            await clock.advance(15.0)
            assert service.planner.backlog == 0

            # ten concurrent submissions race for the single probe slot
            tickets = await asyncio.gather(*[
                service.submit(_req(f"race-{i}")) for i in range(10)
            ])
            admitted = [t for t in tickets if t.admitted]
            rejected = [
                t for t in tickets
                if t.decision is Decision.REJECT_BREAKER
            ]
            assert len(admitted) == 1
            assert len(rejected) == 9
            assert breaker.state is BreakerState.HALF_OPEN
            assert breaker._probes_in_flight == 1

            # the losers were rejections, not failures: the breaker did
            # not re-open and its failure window did not grow
            assert breaker.open_count == opens_before
            assert len(breaker._failures) == failures_before

            # the probe completing closes the breaker again
            await clock.advance(40.0)
            assert breaker.state is BreakerState.CLOSED
            await service.drain()
            report = service.finish()
            assert report is not None and not report.violations

        asyncio.run(scenario())

    def test_rejected_losers_can_retry_after_probe(self):
        async def scenario():
            clock = VirtualClock()
            service = AdmissionService(CONFIG, clock=clock)
            await service.start()
            await _trip_breaker(service)
            await clock.advance(15.0)

            tickets = await asyncio.gather(*[
                service.submit(_req(f"race-{i}")) for i in range(3)
            ])
            loser = next(
                t for t in tickets
                if t.decision is Decision.REJECT_BREAKER
            )
            assert loser.retryable
            # retryable rejections are not cached: the id stays free
            assert loser.request_id not in service.cache

            # once the probe succeeds, the loser's retry is admitted
            await clock.advance(40.0)
            retry = await service.submit(_req(loser.request_id))
            assert retry.admitted and not retry.duplicate
            await service.drain()

        asyncio.run(scenario())

    def test_probe_failure_reopens(self):
        async def scenario():
            clock = VirtualClock()
            service = AdmissionService(CONFIG, clock=clock)
            await service.start()
            await _trip_breaker(service)
            breaker = service._breakers["src"]
            opens_before = breaker.open_count

            # keep the queue full through the cooldown: the probe that
            # wins the slot immediately sheds (a real failure)
            await clock.advance(12.0)
            blocker2 = await service.submit(
                _req("blocker2", cost=1.5, deadline=60.0)
            )
            assert blocker2.admitted   # this one consumed the probe slot
            probe = await service.submit(_req("probe"))
            assert probe.decision in (
                Decision.REJECT_OVERLOAD, Decision.REJECT_BREAKER
            )
            if probe.decision is Decision.REJECT_OVERLOAD:
                # the queue-full shed counted as a probe failure
                assert breaker.state is BreakerState.OPEN
                assert breaker.open_count == opens_before + 1
            await service.drain()

        asyncio.run(scenario())
