"""A deadline-miss / overrun watchdog.

Executors notify the watchdog of every deadline miss and cost overrun;
once either count crosses its threshold the watchdog *trips*: it records
a ``WATCHDOG`` trace event and invokes the optional ``on_trip`` callback
(an escalation hook — shed load, fail over, page an operator).  The
watchdog never mutates the schedule itself, so attaching one cannot
change golden-path behaviour.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from ..sim.trace import ExecutionTrace, TraceEventKind

__all__ = ["DeadlineMissWatchdog"]


class DeadlineMissWatchdog:
    """Counts misses and overruns; trips past configurable thresholds.

    Parameters
    ----------
    miss_threshold:
        Trip after this many deadline misses (``None`` = never).
    overrun_threshold:
        Trip after this many cost overruns (``None`` = never).
    on_trip:
        ``fn(now, watchdog)`` invoked exactly once when first tripped.
    """

    def __init__(
        self,
        miss_threshold: int | None = None,
        overrun_threshold: int | None = None,
        on_trip: "Callable[[float, DeadlineMissWatchdog], None] | None" = None,
    ) -> None:
        if miss_threshold is not None and miss_threshold <= 0:
            raise ValueError(
                f"miss_threshold must be > 0, got {miss_threshold}"
            )
        if overrun_threshold is not None and overrun_threshold <= 0:
            raise ValueError(
                f"overrun_threshold must be > 0, got {overrun_threshold}"
            )
        self.miss_threshold = miss_threshold
        self.overrun_threshold = overrun_threshold
        self.on_trip = on_trip
        self.misses = 0
        self.overruns = 0
        self.by_subject: Counter[str] = Counter()
        self.tripped = False
        self.tripped_at: float | None = None
        self._trace: ExecutionTrace | None = None
        #: ``fn(kind, now, subject)`` invoked on every notification
        #: (kind is "miss" or "overrun"); unlike ``on_trip`` this fires
        #: each time, so overload detectors can track rates
        self.listeners: list[Callable[[str, float, str], None]] = []

    # -- wiring ------------------------------------------------------------

    def attach_sim(self, sim) -> "DeadlineMissWatchdog":
        """Observe a :class:`~repro.sim.engine.Simulation`."""
        sim.watchdog = self
        self._trace = sim.trace
        return self

    def attach_vm(self, vm) -> "DeadlineMissWatchdog":
        """Observe an emulated RTSJ VM (``Timed`` interrupts count as
        overruns)."""
        vm.watchdog = self
        self._trace = vm.trace
        return self

    def add_listener(
        self, listener: Callable[[str, float, str], None]
    ) -> "DeadlineMissWatchdog":
        """Subscribe to every miss/overrun notification (rate signals)."""
        self.listeners.append(listener)
        return self

    # -- notifications -----------------------------------------------------

    def notify_miss(self, now: float, subject: str) -> None:
        self.misses += 1
        self.by_subject[subject] += 1
        for listener in self.listeners:
            listener("miss", now, subject)
        if (
            self.miss_threshold is not None
            and self.misses >= self.miss_threshold
        ):
            self._trip(now, f"{self.misses} deadline misses")

    def notify_overrun(self, now: float, subject: str) -> None:
        self.overruns += 1
        self.by_subject[subject] += 1
        for listener in self.listeners:
            listener("overrun", now, subject)
        if (
            self.overrun_threshold is not None
            and self.overruns >= self.overrun_threshold
        ):
            self._trip(now, f"{self.overruns} cost overruns")

    # -- internals ---------------------------------------------------------

    def _trip(self, now: float, reason: str) -> None:
        if self.tripped:
            return
        self.tripped = True
        self.tripped_at = now
        if self._trace is not None:
            self._trace.add_event(
                now, TraceEventKind.WATCHDOG, "watchdog", reason
            )
        if self.on_trip is not None:
            self.on_trip(now, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "TRIPPED" if self.tripped else "armed"
        return (
            f"<DeadlineMissWatchdog {state} misses={self.misses} "
            f"overruns={self.overruns}>"
        )
