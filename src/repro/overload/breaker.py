"""Per-event-source circuit breakers.

A :class:`CircuitBreaker` watches one event source (a
``ServableAsyncEvent`` on the execution arm, a whole server's arrival
stream on the ideal-simulator arm) and cuts it off at the source when it
keeps producing failures — sheds, cost overruns, budget interrupts —
faster than the service layer can absorb them.  Classic three-state
machine:

* **closed** — firings flow through; failures are timestamped into a
  sliding window; ``failure_threshold`` failures inside ``window`` tu
  *trip* the breaker (``BREAKER_OPEN`` trace event).
* **open** — every firing is rejected at the source (cheap: the release
  never reaches a queue) until ``cooldown`` tu have passed.
* **half-open** — after the cooldown, up to ``half_open_probes`` probe
  firings are let through; a probe that is *served* closes the breaker
  (``BREAKER_CLOSE``), a probe that fails re-opens it for another
  cooldown.

Rejections issued while open do **not** count as failures (they would
otherwise hold the breaker open forever), so a breaker always re-closes
after the source quiesces: cooldown elapses, the next firing probes, the
probe succeeds.  All times are in tu; callers in the nanosecond domain
convert before calling.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING

from ..sim.trace import ExecutionTrace, TraceEventKind
from .config import BreakerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .detector import OverloadDetector

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window circuit breaker for one event source."""

    def __init__(
        self,
        config: BreakerConfig,
        name: str = "breaker",
        trace: ExecutionTrace | None = None,
        detector: "OverloadDetector | None" = None,
    ) -> None:
        self.config = config
        self.name = name
        self.trace = trace
        self.detector = detector
        self.state = BreakerState.CLOSED
        self._failures: deque[float] = deque()
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        #: lifetime counters (campaign reporting)
        self.open_count = 0
        self.close_count = 0
        self.rejected = 0

    @property
    def is_open(self) -> bool:
        """Passive state check — unlike :meth:`allow`, never transitions
        to half-open and never counts a rejection (routers use this to
        steer around an open breaker without consuming its probes)."""
        return self.state is BreakerState.OPEN

    # -- the gate ----------------------------------------------------------

    def allow(self, now: float) -> bool:
        """Gate one firing; ``False`` means reject it at the source."""
        if self.state is BreakerState.OPEN:
            assert self._opened_at is not None
            if now - self._opened_at >= self.config.cooldown:
                self.state = BreakerState.HALF_OPEN
                self._probes_in_flight = 0
            else:
                self.rejected += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_in_flight >= self.config.half_open_probes:
                self.rejected += 1
                return False
            self._probes_in_flight += 1
        return True

    # -- outcome feedback --------------------------------------------------

    def record_success(self, now: float) -> None:
        """A release from this source was served to completion."""
        if self.state is BreakerState.HALF_OPEN:
            self._close(now)

    def record_failure(self, now: float) -> None:
        """A release from this source was shed, cut or overran."""
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: straight back to open, fresh cooldown
            self._open(now, "probe failed")
            return
        if self.state is BreakerState.OPEN:
            return
        window = self.config.window
        self._failures.append(now)
        while self._failures and self._failures[0] < now - window:
            self._failures.popleft()
        if len(self._failures) >= self.config.failure_threshold:
            self._open(
                now,
                f"{len(self._failures)} failures in {window:g}tu",
            )

    # -- transitions -------------------------------------------------------

    def _open(self, now: float, reason: str) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = now
        self._failures.clear()
        self.open_count += 1
        if self.trace is not None:
            self.trace.add_event(
                now, TraceEventKind.BREAKER_OPEN, self.name, reason
            )
        if self.detector is not None:
            self.detector.note_breaker_open(now)

    def _close(self, now: float) -> None:
        self.state = BreakerState.CLOSED
        self._opened_at = None
        self._failures.clear()
        self._probes_in_flight = 0
        self.close_count += 1
        if self.trace is not None:
            self.trace.add_event(
                now, TraceEventKind.BREAKER_CLOSE, self.name, "probe served"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CircuitBreaker {self.name} {self.state.value} "
            f"opens={self.open_count} closes={self.close_count}>"
        )
