"""Unit tests for parameter objects and processing-group enforcement."""

from __future__ import annotations

import pytest

from repro.rtsj import (
    AbsoluteTime,
    AperiodicParameters,
    OverheadModel,
    PeriodicParameters,
    PriorityParameters,
    ProcessingGroupParameters,
    RealtimeThread,
    ReleaseParameters,
    RelativeTime,
    RTSJVirtualMachine,
    SporadicParameters,
)
from conftest import M, periodic_logic, segments_of


class TestParameterValidation:
    def test_priority_parameters(self):
        assert PriorityParameters(20).priority == 20
        with pytest.raises(TypeError):
            PriorityParameters(1.5)  # type: ignore[arg-type]

    def test_release_parameters(self):
        rp = ReleaseParameters(RelativeTime(2, 0), RelativeTime(6, 0))
        assert rp.cost == RelativeTime(2, 0)
        with pytest.raises(ValueError):
            ReleaseParameters(RelativeTime(-1, 0))
        with pytest.raises(ValueError):
            ReleaseParameters(deadline=RelativeTime(0, 0))

    def test_periodic_parameters(self):
        pp = PeriodicParameters(None, RelativeTime(6, 0))
        assert pp.start == AbsoluteTime(0, 0)
        assert pp.effective_deadline == RelativeTime(6, 0)
        pp2 = PeriodicParameters(
            AbsoluteTime(1, 0), RelativeTime(6, 0),
            deadline=RelativeTime(4, 0),
        )
        assert pp2.effective_deadline == RelativeTime(4, 0)
        with pytest.raises(ValueError):
            PeriodicParameters(None, RelativeTime(0, 0))

    def test_sporadic_parameters(self):
        sp = SporadicParameters(RelativeTime(10, 0), cost=RelativeTime(1, 0))
        assert sp.min_interarrival == RelativeTime(10, 0)
        assert isinstance(sp, AperiodicParameters)
        with pytest.raises(ValueError):
            SporadicParameters(RelativeTime(0, 0))

    def test_pgp_validation(self):
        with pytest.raises(ValueError):
            ProcessingGroupParameters(None, RelativeTime(6, 0), RelativeTime(0, 0))
        with pytest.raises(ValueError):
            ProcessingGroupParameters(None, RelativeTime(6, 0), RelativeTime(7, 0))


class TestProcessingGroups:
    """The paper's Section 3 critique, made executable.

    With cost enforcement (not guaranteed by the RTSJ) the group budget
    throttles its members; without it — the reference implementation's
    behaviour — PGP "can have no effect at all".
    """

    def _run(self, enforced: bool):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        pgp = ProcessingGroupParameters(
            AbsoluteTime(0, 0), period=RelativeTime(6, 0),
            cost=RelativeTime(2, 0), enforced=enforced,
        )
        # a greedy thread wanting 5 units per 6-unit period
        thread = RealtimeThread(
            periodic_logic(5 * M),
            PriorityParameters(30),
            PeriodicParameters(AbsoluteTime(0, 0), RelativeTime(6, 0)),
            pgp=pgp,
            name="greedy",
        )
        lower = RealtimeThread(
            periodic_logic(3 * M),
            PriorityParameters(20),
            PeriodicParameters(AbsoluteTime(0, 0), RelativeTime(6, 0)),
            name="victim",
        )
        vm.add_thread(thread)
        vm.add_thread(lower)
        vm.register_pgp(pgp, horizon_ns=12 * M)
        trace = vm.run(12 * M)
        return pgp, trace

    def test_enforced_budget_throttles_group(self):
        pgp, trace = self._run(enforced=True)
        # greedy gets exactly 2 units per period
        assert segments_of(trace, "greedy") == [(0, 2), (6, 8)]
        # the victim is protected: it gets its 3 units on time
        assert segments_of(trace, "victim") == [(2, 5), (8, 11)]

    def test_unenforced_budget_is_accounting_only(self):
        pgp, trace = self._run(enforced=False)
        # greedy hogs the processor: PGP had no effect (the RI behaviour)
        assert segments_of(trace, "greedy") == [(0, 5), (6, 11)]
        assert segments_of(trace, "victim") == [(5, 6), (11, 12)]
        # but the overrun is visible in the accounting
        assert pgp.overrun_ns == 2 * (5 - 2) * M

    def test_replenish_restores_budget(self):
        pgp = ProcessingGroupParameters(
            None, RelativeTime(6, 0), RelativeTime(2, 0), enforced=True
        )
        pgp.budget_ns = 0
        assert pgp.exhausted
        pgp.replenish()
        assert pgp.budget_ns == 2 * M
        assert not pgp.exhausted
