"""Unit + adversarial tests for the server supply-bound model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.resource_model import (
    ServerSupply,
    deferrable_supply,
    polling_supply,
)
from repro.core import ideal_ps_finish_time
from repro.sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealDeferrableServer,
    IdealPollingServer,
    Simulation,
)
from repro.workload.spec import ServerSpec


class TestSbfShape:
    def test_zero_before_blackout(self):
        s = polling_supply(4.0, 6.0)
        assert s.sbf(0) == 0
        assert s.sbf(6.0) == 0
        assert s.sbf(6.5) == pytest.approx(0.5)

    def test_staircase_values(self):
        s = polling_supply(4.0, 6.0)
        assert s.sbf(10.0) == pytest.approx(4.0)   # one full budget
        assert s.sbf(12.0) == pytest.approx(4.0)   # flat until next period
        assert s.sbf(13.0) == pytest.approx(5.0)

    def test_deferrable_shorter_blackout(self):
        ds = deferrable_supply(4.0, 6.0)
        ps = polling_supply(4.0, 6.0)
        for t in (1.0, 3.0, 5.0, 8.0, 14.5, 30.0):
            assert ds.sbf(t) >= ps.sbf(t)

    def test_monotone_and_rate_bounded(self):
        s = deferrable_supply(3.0, 7.0)
        prev = 0.0
        for i in range(200):
            t = i * 0.25
            v = s.sbf(t)
            assert v >= prev - 1e-12
            assert v <= max(0.0, t) + 1e-12  # never supplies faster than time
            prev = v

    def test_inverse_is_inverse(self):
        s = polling_supply(4.0, 6.0)
        for w in (0.5, 3.9, 4.0, 4.1, 9.7, 12.0):
            t = s.inverse_sbf(w)
            assert s.sbf(t) == pytest.approx(w)
            assert s.sbf(t - 1e-6) < w

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSupply(capacity=0, period=6, blackout=0)
        with pytest.raises(ValueError):
            ServerSupply(capacity=7, period=6, blackout=0)
        with pytest.raises(ValueError):
            ServerSupply(capacity=3, period=6, blackout=-1)
        with pytest.raises(ValueError):
            polling_supply(4, 6).inverse_sbf(-1)


class TestDelayBounds:
    def test_burst_delay_matches_equation(self):
        # a burst W arriving at the PS's worst instant finishes exactly
        # at the bound predicted by equations (1)-(4) evaluated just
        # after an empty activation (cs = 0 at t -> 0+)
        s = polling_supply(4.0, 6.0)
        for w in (1.0, 4.0, 5.5, 9.0):
            eq_finish = ideal_ps_finish_time(
                t=1e-9, workload=w, cs_t=0.0, capacity=4.0, period=6.0
            )
            assert s.delay_bound(w) == pytest.approx(eq_finish, abs=1e-6)

    def test_arrival_curve_degenerates_to_burst(self):
        s = deferrable_supply(4.0, 6.0)
        assert s.arrival_curve_delay(3.0, 0.0) == pytest.approx(
            s.delay_bound(3.0)
        )

    def test_arrival_curve_rate_check(self):
        s = polling_supply(4.0, 6.0)
        with pytest.raises(ValueError, match="unbounded"):
            s.arrival_curve_delay(1.0, rate=0.7)

    def test_arrival_curve_delay_grows_with_rate(self):
        s = polling_supply(4.0, 6.0)
        delays = [
            s.arrival_curve_delay(2.0, r) for r in (0.0, 0.2, 0.4, 0.6)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(delays, delays[1:]))


def adversarial_run(server_cls, spec, arrivals, horizon=240.0):
    sim = Simulation(FixedPriorityPolicy())
    server = server_cls(spec, name="S")
    server.attach(sim, horizon=horizon)
    jobs = []
    for i, (t, c) in enumerate(arrivals):
        job = AperiodicJob(f"j{i}", release=t, cost=c)
        jobs.append(job)
        sim.submit_aperiodic(job, server.submit)
    sim.run(until=horizon)
    return jobs


class TestBoundsAgainstSimulator:
    SPEC = ServerSpec(capacity=4.0, period=6.0, priority=10)

    @settings(max_examples=30, deadline=None)
    @given(
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
                st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            ),
            min_size=1, max_size=8,
        )
    )
    def test_polling_never_beats_sbf_nor_misses_burst_bound(self, arrivals):
        jobs = adversarial_run(
            IdealPollingServer, self.SPEC, sorted(arrivals)
        )
        supply = polling_supply(4.0, 6.0)
        # each completed job finishes within the bound for the total
        # workload ahead of it (FIFO service, worst-phase bound)
        done = 0.0
        for job in sorted(jobs, key=lambda j: j.release):
            done += job.cost
            if job.finish_time is not None:
                assert (
                    job.finish_time - job.release
                    <= supply.delay_bound(done) + 1e-6
                )

    @settings(max_examples=30, deadline=None)
    @given(
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
                st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            ),
            min_size=1, max_size=8,
        )
    )
    def test_deferrable_respects_its_bound(self, arrivals):
        jobs = adversarial_run(
            IdealDeferrableServer, self.SPEC, sorted(arrivals)
        )
        supply = deferrable_supply(4.0, 6.0)
        done = 0.0
        for job in sorted(jobs, key=lambda j: j.release):
            done += job.cost
            if job.finish_time is not None:
                assert (
                    job.finish_time - job.release
                    <= supply.delay_bound(done) + 1e-6
                )

    def test_polling_worst_case_is_tight(self):
        # arrival just after the t=0 activation discarded its budget:
        # the bound is achieved exactly
        jobs = adversarial_run(
            IdealPollingServer, self.SPEC, [(0.001, 4.0)]
        )
        supply = polling_supply(4.0, 6.0)
        measured = jobs[0].finish_time - jobs[0].release
        assert measured == pytest.approx(supply.delay_bound(4.0), abs=1e-2)
