"""The shard supervisor: heartbeats, death declaration, failover, restore.

The supervisor is the fabric's control plane, one asyncio task on the
shared clock.  Every ``interval`` tu it samples each shard's
housekeeping beat counter (the same heartbeat taxonomy the digital twin
uses for its *internal* liveness —
:data:`~repro.service.twin.HEARTBEAT_MISS` — applied from the outside):
a live shard's housekeeper advances the counter every half-heartbeat,
so a frozen counter is a missed beat.  After ``max_missed`` consecutive
misses the shard is declared dead (``SHARD_DOWN``), and its sources are
immediately dispositioned:

* **failover** — each source is re-homed onto the alive sibling with
  the most spare bucket capacity (lowest planner demand per unit
  capacity, backlog under ``takeover_headroom`` of its queue bound);
  the router's fabric-level idempotency cache guarantees replayed
  requests are not double-admitted across the move;
* **brown-out** — with no eligible sibling the source is parked on the
  degraded-mode stack (``FAILOVER ... -> brown-out``): optionals shed,
  the rest retry into the blackout until the shard returns.

``restart_delay`` tu after the declaration the shard is rebuilt from
its write-ahead checkpoint (:meth:`~repro.service.service.
AdmissionService.restore` — byte-identical twin, re-spawned in-flight
executors), the overrides are lifted (``SHARD_RESTORED``), and the
declared→restored latency is recorded for the soak's bounded-failover
assertion.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.trace import TraceEventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fabric import AdmissionFabric, _Shard

__all__ = ["SupervisorConfig", "Supervisor"]

_EPS = 1e-9


@dataclass(frozen=True)
class SupervisorConfig:
    """Heartbeat and restore policy of the fabric control plane."""

    #: sampling period in tu; ``None`` = the shard twin's heartbeat
    #: window (a live housekeeper beats twice per window, so one whole
    #: window with a frozen counter is unambiguous)
    interval: float | None = None
    #: consecutive missed beats before a shard is declared dead (K)
    max_missed: int = 3
    #: tu between the death declaration and the checkpoint restore
    restart_delay: float = 15.0
    #: a sibling may take failed-over sources while its backlog is
    #: under this fraction of its queue bound
    takeover_headroom: float = 0.75

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError(
                f"interval must be > 0, got {self.interval}"
            )
        if self.max_missed < 1:
            raise ValueError(
                f"max_missed must be >= 1, got {self.max_missed}"
            )
        if self.restart_delay < 0:
            raise ValueError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )
        if not 0 < self.takeover_headroom <= 1:
            raise ValueError(
                "takeover_headroom must be in (0, 1], got "
                f"{self.takeover_headroom}"
            )


class Supervisor:
    """Watches shard heartbeats; declares, fails over, restores."""

    def __init__(self, fabric: "AdmissionFabric",
                 config: SupervisorConfig | None = None) -> None:
        self.fabric = fabric
        self.config = config if config is not None else SupervisorConfig()
        self.interval = (
            self.config.interval if self.config.interval is not None
            else fabric.shard_config.twin.heartbeat
        )
        self._task: asyncio.Task | None = None
        self._stopped = False
        self._beats: dict[int, int] = {}
        self._misses: dict[int, int] = {}
        #: shard index -> declaration instant while it is down
        self.down_since: dict[int, float] = {}
        #: declared → restored latencies, in tu (soak assertion input)
        self.failover_latencies: list[float] = []
        self.declared_down = 0
        self.restored = 0

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(
                self._run(), name="fabric-supervisor"
            )

    async def stop(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        clock = self.fabric.clock
        try:
            while not self._stopped:
                await clock.sleep(self.interval)
                if self._stopped:
                    return
                now = clock.now()
                for shard in self.fabric.shards:
                    await self._check(now, shard)
        except asyncio.CancelledError:
            return

    async def _check(self, now: float, shard: "_Shard") -> None:
        index = shard.index
        if index in self.down_since:
            if now - self.down_since[index] >= (
                self.config.restart_delay - _EPS
            ):
                await self._restore(now, shard)
            return
        beats = shard.service.heartbeats
        if beats == self._beats.get(index, -1):
            self._misses[index] = self._misses.get(index, 0) + 1
            if self._misses[index] >= self.config.max_missed:
                self._declare_down(now, shard)
        else:
            self._misses[index] = 0
        self._beats[index] = beats

    # -- transitions -------------------------------------------------------

    def _declare_down(self, now: float, shard: "_Shard") -> None:
        fabric = self.fabric
        index = shard.index
        shard.alive = False          # even a wedged-but-running shard
        self.down_since[index] = now
        self.declared_down += 1
        fabric.trace.add_event(
            now, TraceEventKind.SHARD_DOWN, f"shard-{index}",
            detail=f"{self._misses[index]} missed heartbeats "
                   f"(interval {self.interval:g}tu)",
        )
        for source in fabric.sources_homed_on(index):
            target = self._pick_target(index)
            if target is None:
                fabric.router.set_override(source, None)
                fabric.trace.add_event(
                    now, TraceEventKind.FAILOVER, source,
                    detail=f"shard-{index} -> brown-out "
                           "(no sibling with spare capacity)",
                )
            else:
                fabric.router.set_override(source, target)
                fabric.trace.add_event(
                    now, TraceEventKind.FAILOVER, source,
                    detail=f"shard-{index} -> shard-{target}",
                )

    def _pick_target(self, down: int) -> int | None:
        """The alive sibling with the most spare bucket capacity."""
        bound = self.fabric.shard_config.queue_bound
        candidates = []
        for shard in self.fabric.shards:
            if shard.index == down or not shard.alive:
                continue
            planner = shard.service.planner
            if bound is not None and (
                planner.backlog >= bound * self.config.takeover_headroom
            ):
                continue
            load = planner.demand / max(planner.effective_capacity, _EPS)
            candidates.append((load, shard.index))
        if not candidates:
            return None
        return min(candidates)[1]

    async def _restore(self, now: float, shard: "_Shard") -> None:
        fabric = self.fabric
        index = shard.index
        await fabric.restore_shard(index)
        latency = now - self.down_since.pop(index)
        self.failover_latencies.append(latency)
        self.restored += 1
        self._misses[index] = 0
        self._beats[index] = shard.service.heartbeats
        cleared = fabric.router.clear_overrides_for(index)
        fabric.trace.add_event(
            now, TraceEventKind.SHARD_RESTORED, f"shard-{index}",
            detail=f"checkpoint restore after {latency:g}tu down, "
                   f"{len(cleared)} source(s) re-homed",
        )
