"""Job and task models for the RTSS discrete-event simulator.

The simulator distinguishes *tasks* (recurring sources of work) from
*jobs* (single activations with a remaining-execution-time state).
Periodic tasks release one job per period; aperiodic events are released
as standalone :class:`AperiodicJob` instances that are handed to a task
server (or scheduled directly, e.g. in background or D-OVER mode).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..workload.spec import PeriodicTaskSpec

__all__ = ["JobState", "Job", "PeriodicTask", "PeriodicJob", "AperiodicJob"]


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    PENDING = "pending"      # released, waiting for the processor
    RUNNING = "running"      # currently executing
    PREEMPTED = "preempted"  # started, then displaced; will resume
    COMPLETED = "completed"  # all execution demand consumed
    ABORTED = "aborted"      # abandoned (D-OVER) or interrupted (exec arm)


_job_counter = itertools.count()


@dataclass
class Job:
    """A single activation: some execution demand released at some time."""

    name: str
    release: float
    cost: float
    deadline: float | None = None
    value: float | None = None
    job_id: int = field(default_factory=lambda: next(_job_counter))

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"job cost must be > 0, got {self.cost}")
        if self.release < 0:
            raise ValueError(f"job release must be >= 0, got {self.release}")
        self.remaining: float = self.cost
        self.state: JobState = JobState.PENDING
        self.start_time: float | None = None
        self.finish_time: float | None = None

    @property
    def started(self) -> bool:
        """True once the job has received any processor time."""
        return self.start_time is not None

    @property
    def done(self) -> bool:
        """True when the job left the system (completed or aborted)."""
        return self.state in (JobState.COMPLETED, JobState.ABORTED)

    @property
    def response_time(self) -> float | None:
        """finish - release for completed jobs, else ``None``."""
        if self.state is JobState.COMPLETED and self.finish_time is not None:
            return self.finish_time - self.release
        return None

    def laxity(self, now: float) -> float:
        """Deadline slack at ``now``; requires a deadline."""
        if self.deadline is None:
            raise ValueError(f"job {self.name!r} has no deadline")
        return self.deadline - now - self.remaining

    def consume(self, amount: float) -> None:
        """Charge ``amount`` of execution time against the job."""
        if amount < 0:
            raise ValueError(f"cannot consume negative time {amount}")
        if amount > self.remaining + 1e-9:
            raise ValueError(
                f"job {self.name!r} asked to consume {amount} "
                f"with only {self.remaining} remaining"
            )
        self.remaining = max(0.0, self.remaining - amount)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.name} rel={self.release} "
            f"cost={self.cost} rem={self.remaining:.3f} {self.state.value}>"
        )


@dataclass
class PeriodicJob(Job):
    """One activation of a periodic task.

    ``declared_cost`` is the WCET the analysis budgeted for; ``cost``
    (inherited) is the true demand.  They differ only under an injected
    WCET overrun (``PeriodicTaskSpec.actual_cost``).
    """

    task: "PeriodicTask | None" = None
    instance: int = 0
    declared_cost: float | None = None

    @property
    def budgeted_cost(self) -> float:
        """The declared WCET enforcement budgets against."""
        return self.declared_cost if self.declared_cost is not None else self.cost


class PeriodicTask:
    """A periodic task: releases one :class:`PeriodicJob` per period."""

    def __init__(self, spec: PeriodicTaskSpec) -> None:
        self.spec = spec
        self.jobs: list[PeriodicJob] = []
        # spec scalars cached off the (immutable-after-validation) spec:
        # release_job is the kernel's release hot path and the property
        # indirections dominate its cost otherwise
        self._name = spec.name
        self._offset = spec.offset
        self._period = spec.period
        self._exec_cost = spec.execution_cost
        self._rel_deadline = spec.effective_deadline
        self._declared_cost = spec.cost

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def priority(self) -> int:
        return self.spec.priority

    def release_job(self, instance: int) -> PeriodicJob:
        """Create the job for activation number ``instance`` (0-based).

        The dataclass constructor (and its ``__post_init__`` validation)
        is bypassed on this path: the spec already guarantees
        ``execution_cost > 0`` and ``offset >= 0``/``period > 0``, which
        are exactly the conditions ``Job.__post_init__`` would check.
        """
        release = self._offset + instance * self._period
        cost = self._exec_cost
        job = PeriodicJob.__new__(PeriodicJob)
        job.name = f"{self._name}#{instance}"
        job.release = release
        job.cost = cost
        job.deadline = release + self._rel_deadline
        job.value = None
        job.job_id = next(_job_counter)
        job.task = self
        job.instance = instance
        job.declared_cost = self._declared_cost
        job.remaining = cost
        job.state = JobState.PENDING
        job.start_time = None
        job.finish_time = None
        self.jobs.append(job)
        return job

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PeriodicTask {self.spec.name} C={self.spec.cost} T={self.spec.period}>"


class AperiodicJob(Job):
    """An aperiodic activation, typically served by a task server.

    ``declared_cost`` is what admission control sees; ``cost`` (inherited)
    is the true execution demand.  They coincide unless a scenario models
    a mis-declared handler (paper Scenario 3).
    """

    def __init__(
        self,
        name: str,
        release: float,
        cost: float,
        declared_cost: float | None = None,
        deadline: float | None = None,
        value: float | None = None,
    ) -> None:
        super().__init__(
            name=name, release=release, cost=cost, deadline=deadline, value=value
        )
        self.declared_cost = declared_cost if declared_cost is not None else cost
        if self.declared_cost <= 0:
            raise ValueError(
                f"declared_cost must be > 0, got {self.declared_cost}"
            )
        #: set by the execution arm when a Timed budget interrupts the handler
        self.interrupted: bool = False
