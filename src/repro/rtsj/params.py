"""RTSJ parameter objects.

Functional subset of the ``javax.realtime`` parameter classes the paper's
framework touches: scheduling parameters (priorities), release parameters
(cost/deadline and the periodic/aperiodic/sporadic refinements) and
processing group parameters (whose shortcomings motivate the paper,
cf. Section 3).
"""

from __future__ import annotations

from .time_types import AbsoluteTime, RelativeTime

__all__ = [
    "SchedulingParameters",
    "PriorityParameters",
    "ReleaseParameters",
    "PeriodicParameters",
    "AperiodicParameters",
    "SporadicParameters",
    "ProcessingGroupParameters",
]


class SchedulingParameters:
    """Base marker class (``javax.realtime.SchedulingParameters``)."""


class PriorityParameters(SchedulingParameters):
    """A fixed execution eligibility for the priority scheduler."""

    def __init__(self, priority: int) -> None:
        if not isinstance(priority, int):
            raise TypeError("priority must be an integer")
        self._priority = priority

    @property
    def priority(self) -> int:
        return self._priority

    def __repr__(self) -> str:
        return f"PriorityParameters({self._priority})"


class ReleaseParameters:
    """Cost and deadline of each release of a schedulable object."""

    def __init__(
        self,
        cost: RelativeTime | None = None,
        deadline: RelativeTime | None = None,
    ) -> None:
        if cost is not None and cost.is_negative():
            raise ValueError("cost must be non-negative")
        if deadline is not None and deadline.total_nanos <= 0:
            raise ValueError("deadline must be positive")
        self.cost = cost
        self.deadline = deadline


class PeriodicParameters(ReleaseParameters):
    """Release parameters of a periodic schedulable object."""

    def __init__(
        self,
        start: AbsoluteTime | None,
        period: RelativeTime,
        cost: RelativeTime | None = None,
        deadline: RelativeTime | None = None,
    ) -> None:
        super().__init__(cost, deadline)
        if period.total_nanos <= 0:
            raise ValueError("period must be positive")
        self.start = start if start is not None else AbsoluteTime(0, 0)
        self.period = period

    @property
    def effective_deadline(self) -> RelativeTime:
        """Deadline, defaulting to the period as in the RTSJ."""
        return self.deadline if self.deadline is not None else self.period


class AperiodicParameters(ReleaseParameters):
    """Release parameters of an aperiodic schedulable object."""


class SporadicParameters(AperiodicParameters):
    """Aperiodic parameters with a minimum inter-arrival time."""

    def __init__(
        self,
        min_interarrival: RelativeTime,
        cost: RelativeTime | None = None,
        deadline: RelativeTime | None = None,
    ) -> None:
        super().__init__(cost, deadline)
        if min_interarrival.total_nanos <= 0:
            raise ValueError("min_interarrival must be positive")
        self.min_interarrival = min_interarrival


class ProcessingGroupParameters:
    """A shared periodic budget for a group of schedulable objects.

    The RTSJ makes cost *enforcement* optional; with it disabled (the
    reference-implementation behaviour the paper criticises) the group
    budget is accounted but never acted upon, so the parameters "can have
    no effect at all".  The emulated VM honours ``enforced`` so both
    behaviours can be demonstrated (see ``examples/pgp_limitations.py``).
    """

    def __init__(
        self,
        start: AbsoluteTime | None,
        period: RelativeTime,
        cost: RelativeTime,
        enforced: bool = False,
    ) -> None:
        if period.total_nanos <= 0:
            raise ValueError("period must be positive")
        if cost.total_nanos <= 0:
            raise ValueError("cost must be positive")
        if cost.total_nanos > period.total_nanos:
            raise ValueError("group cost cannot exceed the period")
        self.start = start if start is not None else AbsoluteTime(0, 0)
        self.period = period
        self.cost = cost
        self.enforced = enforced
        #: remaining budget in the current period, maintained by the VM
        self.budget_ns: int = cost.total_nanos
        #: cumulative overrun time observed (diagnostic)
        self.overrun_ns: int = 0

    def replenish(self) -> None:
        """Restore the full budget (called by the VM each period)."""
        self.budget_ns = self.cost.total_nanos

    @property
    def exhausted(self) -> bool:
        """True when the current period's budget is fully consumed."""
        return self.budget_ns <= 0
