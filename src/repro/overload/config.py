"""Configuration objects for the overload-management subsystem.

Everything here is *off by default*: an :class:`OverloadConfig` with all
fields ``None`` (or simply passing ``overload=None`` anywhere the knob
exists) leaves every queue unbounded, every breaker absent and every
detector disarmed — the golden-path traces are byte-identical to a build
without this subsystem.

Time-valued fields are expressed in **time units** (tu, the unit traces
and the ideal simulator use; 1 tu = 1 ms on the emulated VM).  The RTSJ
execution layer converts to nanoseconds at the wiring point.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SHED_POLICIES",
    "QueueBound",
    "BreakerConfig",
    "DetectorConfig",
    "OverloadConfig",
]

#: pluggable shedding policies for bounded pending queues:
#:
#: * ``reject-new``       — the arriving release is shed (admission-style);
#: * ``drop-oldest``      — the head of the queue is shed to make room,
#:                          bounding staleness (newest data wins);
#: * ``drop-lowest-value``— the queued release with the lowest D-OVER
#:                          style value density (value / cost, value
#:                          defaulting to the declared cost) is shed; the
#:                          arrival itself is shed when *it* is the
#:                          lowest-density candidate.
SHED_POLICIES = ("reject-new", "drop-oldest", "drop-lowest-value")


@dataclass(frozen=True)
class QueueBound:
    """A size and/or total-declared-cost bound on a pending queue.

    ``max_items`` bounds the number of queued releases; ``max_cost``
    bounds their cumulative declared cost (tu).  Either may be ``None``
    (unbounded on that axis); both ``None`` disables the bound entirely.
    """

    max_items: int | None = None
    max_cost: float | None = None
    policy: str = "reject-new"

    def __post_init__(self) -> None:
        if self.max_items is not None and self.max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {self.max_items}")
        if self.max_cost is not None and self.max_cost <= 0:
            raise ValueError(f"max_cost must be > 0, got {self.max_cost}")
        if self.policy not in SHED_POLICIES:
            raise ValueError(
                f"policy must be one of {SHED_POLICIES}, got {self.policy!r}"
            )

    @property
    def active(self) -> bool:
        return self.max_items is not None or self.max_cost is not None


@dataclass(frozen=True)
class BreakerConfig:
    """Per-event-source circuit breaker parameters.

    The breaker trips open after ``failure_threshold`` failures
    (sheds / overruns / budget interrupts) inside a sliding
    ``window`` tu.  While open, every firing is rejected at the source
    for ``cooldown`` tu; the breaker then lets ``half_open_probes``
    probe firings through — a served probe closes it, a failed probe
    re-opens it for another cooldown.
    """

    failure_threshold: int = 3
    window: float = 10.0
    cooldown: float = 20.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")
        if self.cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {self.cooldown}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass(frozen=True)
class DetectorConfig:
    """Overload detector thresholds and degraded-mode knobs.

    The detector estimates the aperiodic *demand utilization* (declared
    cost arriving per tu, over a sliding ``window``) and the shed /
    deadline-miss rate.  Crossing ``high_watermark`` demand (or seeing
    ``miss_threshold`` misses, or ``shed_threshold`` sheds, inside the
    window) enters degraded mode; the system returns to normal once the
    demand estimate stays at or below ``low_watermark`` — with a clean
    miss/shed window — for ``quiescence`` consecutive tu.

    Degraded mode shrinks the aperiodic service share to
    ``service_scale`` of the configured server capacity and sheds
    releases of handlers marked *optional*.
    """

    window: float = 10.0
    high_watermark: float = 0.5
    low_watermark: float = 0.25
    miss_threshold: int | None = None
    shed_threshold: int | None = 1
    quiescence: float = 10.0
    service_scale: float = 0.5

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")
        if self.high_watermark <= 0:
            raise ValueError(
                f"high_watermark must be > 0, got {self.high_watermark}"
            )
        if not 0 <= self.low_watermark <= self.high_watermark:
            raise ValueError(
                "low_watermark must satisfy 0 <= low <= high, got "
                f"{self.low_watermark} vs {self.high_watermark}"
            )
        if self.miss_threshold is not None and self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )
        if self.shed_threshold is not None and self.shed_threshold < 1:
            raise ValueError(
                f"shed_threshold must be >= 1, got {self.shed_threshold}"
            )
        if self.quiescence < 0:
            raise ValueError(
                f"quiescence must be >= 0, got {self.quiescence}"
            )
        if not 0 < self.service_scale <= 1:
            raise ValueError(
                f"service_scale must be in (0, 1], got {self.service_scale}"
            )


@dataclass(frozen=True)
class OverloadConfig:
    """The full overload-management stack for one run.

    All three stages default to ``None`` (disabled); any subset may be
    enabled independently.
    """

    queue_bound: QueueBound | None = None
    breaker: BreakerConfig | None = None
    detector: DetectorConfig | None = None

    @property
    def active(self) -> bool:
        return (
            (self.queue_bound is not None and self.queue_bound.active)
            or self.breaker is not None
            or self.detector is not None
        )
