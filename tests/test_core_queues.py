"""Unit tests for the pending-event queue structures (paper S4.1 & S7)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.queues import BucketPlacement, InstanceBucketQueue, PendingQueue


@dataclass
class Item:
    cost_ns: int
    label: str = ""


class TestPendingQueue:
    def test_fifo_order(self):
        q = PendingQueue()
        a, b = Item(1), Item(2)
        q.add(a)
        q.add(b)
        assert q.peek() is a
        assert list(q) == [a, b]
        assert len(q) == 2

    def test_choose_first_fitting_skips_expensive_head(self):
        # the paper's example: head costs 3, capacity left 2, a later
        # 1-cost event overtakes
        q = PendingQueue()
        big, small = Item(3, "big"), Item(1, "small")
        q.add(big)
        q.add(small)
        assert q.choose_first_fitting(2) is small
        assert q.choose_first_fitting(3) is big
        assert q.choose_first_fitting(0) is None

    def test_pop_first_fitting_removes(self):
        q = PendingQueue()
        big, small = Item(3), Item(1)
        q.add(big)
        q.add(small)
        assert q.pop_first_fitting(2) is small
        assert list(q) == [big]
        assert q.pop_first_fitting(1) is None

    def test_remove_and_empty(self):
        q = PendingQueue()
        assert q.empty
        item = Item(1)
        q.add(item)
        q.remove(item)
        assert q.empty
        with pytest.raises(ValueError):
            q.remove(item)

    def test_peek_on_empty(self):
        assert PendingQueue().peek() is None


class TestInstanceBucketQueue:
    def test_first_fit_last_bucket_packing(self):
        q = InstanceBucketQueue(capacity_ns=4)
        p1 = q.add(Item(2))
        p2 = q.add(Item(2))
        p3 = q.add(Item(1))  # 2+2+1 > 4: opens bucket 1
        assert p1 == BucketPlacement(0, 0)
        assert p2 == BucketPlacement(0, 2)
        assert p3 == BucketPlacement(1, 0)
        assert q.bucket_count == 2
        assert len(q) == 3

    def test_exact_fill(self):
        q = InstanceBucketQueue(capacity_ns=4)
        q.add(Item(4))
        p = q.add(Item(1))
        assert p.instance_offset == 1

    def test_oversized_item_rejected(self):
        q = InstanceBucketQueue(capacity_ns=4)
        with pytest.raises(ValueError, match="exceeds"):
            q.add(Item(5))

    def test_pop_current_strict_order(self):
        q = InstanceBucketQueue(capacity_ns=4)
        items = [Item(2, "a"), Item(2, "b"), Item(3, "c")]
        for item in items:
            q.add(item)
        assert [q.pop_current().label for _ in range(3)] == ["a", "b", "c"]
        assert q.empty

    def test_head_instance_advances_as_buckets_drain(self):
        q = InstanceBucketQueue(capacity_ns=4)
        q.add(Item(4))
        q.add(Item(4))
        assert q.head_instance == 0
        q.pop_current()
        assert q.head_instance == 1
        q.pop_current()
        assert q.head_instance == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            InstanceBucketQueue(capacity_ns=4).pop_current()

    def test_placement_reflects_cumulative_cost(self):
        q = InstanceBucketQueue(capacity_ns=10)
        costs = [3, 4, 2]
        placements = [q.add(Item(c)) for c in costs]
        assert [p.cumulative_before_ns for p in placements] == [0, 3, 7]

    def test_new_bucket_after_partial_drain(self):
        q = InstanceBucketQueue(capacity_ns=4)
        q.add(Item(3, "a"))
        q.pop_current()          # bucket drained, head advances
        p = q.add(Item(3, "b"))
        assert p == BucketPlacement(0, 0)  # offset from the new head

    def test_head_bucket_items_view(self):
        q = InstanceBucketQueue(capacity_ns=4)
        q.add(Item(2, "a"))
        q.add(Item(2, "b"))
        q.add(Item(4, "c"))
        assert [i.label for i in q.head_bucket_items()] == ["a", "b"]
        assert InstanceBucketQueue(capacity_ns=4).head_bucket_items() == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            InstanceBucketQueue(capacity_ns=0)

    def test_advance_instance_on_empty_queue(self):
        q = InstanceBucketQueue(capacity_ns=4)
        q.advance_instance()
        assert q.head_instance == 1

    def test_advance_instance_keeps_unfinished_bucket(self):
        q = InstanceBucketQueue(capacity_ns=4)
        q.add(Item(2, "a"))
        q.advance_instance()
        assert q.head_instance == 0
        assert not q.empty
