"""Gateway wire protocol (PR 9): framing limits, parsers, fault plans."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.gateway import (
    FrameError,
    FrameTimeout,
    FrameTooLarge,
    ProxyFaultPlan,
    TornFrame,
    encode_frame,
    error_payload,
    parse_request,
    parse_ticket,
    ping_payload,
    read_frame,
    read_raw_frame,
    submit_payload,
    ticket_payload,
)
from repro.service import AdmissionTicket, EventRequest
from repro.service.requests import RETRYABLE, Decision


def _reader(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


def _request(rid: str = "r-1") -> EventRequest:
    return EventRequest(rid, cost=0.5, relative_deadline=10.0,
                        hard=True, source="src-0")


class TestFraming:
    def test_roundtrip(self):
        async def scenario():
            payload = submit_payload(_request())
            reader = _reader(encode_frame(payload))
            assert await read_frame(reader) == payload
            assert await read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_two_frames_back_to_back(self):
        async def scenario():
            reader = _reader(
                encode_frame(ping_payload()) + encode_frame(ping_payload())
            )
            assert (await read_frame(reader))["kind"] == "ping"
            assert (await read_frame(reader))["kind"] == "ping"
            assert await read_frame(reader) is None

        asyncio.run(scenario())

    def test_declared_length_beyond_ceiling_rejected_before_payload(self):
        async def scenario():
            reader = _reader(struct.pack(">I", 1 << 30))
            with pytest.raises(FrameTooLarge):
                await read_frame(reader, max_frame=1024)

        asyncio.run(scenario())

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 2048}, max_frame=1024)

    def test_eof_mid_payload_is_torn_frame(self):
        async def scenario():
            frame = encode_frame(ping_payload())
            reader = _reader(frame[: len(frame) - 3])
            with pytest.raises(TornFrame):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_eof_mid_header_is_torn_frame(self):
        async def scenario():
            reader = _reader(b"\x00\x00")
            with pytest.raises(TornFrame):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_idle_timeout_between_frames(self):
        async def scenario():
            reader = asyncio.StreamReader()  # never fed: peer is silent
            with pytest.raises(FrameTimeout):
                await read_frame(reader, idle_timeout=0.02)

        asyncio.run(scenario())

    def test_slowloris_trips_read_timeout(self):
        async def scenario():
            frame = encode_frame(ping_payload())
            reader = _reader(frame[:6], eof=False)  # header + 2 bytes
            with pytest.raises(FrameTimeout):
                await read_frame(reader, read_timeout=0.02)

        asyncio.run(scenario())

    def test_invalid_json_and_non_object_payloads(self):
        async def scenario():
            body = b"not json"
            reader = _reader(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError):
                await read_frame(reader)
            body = b"[1,2,3]"
            reader = _reader(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_read_raw_frame_preserves_wire_bytes(self):
        async def scenario():
            frame = encode_frame(error_payload("boom"))
            assert await read_raw_frame(_reader(frame)) == frame

        asyncio.run(scenario())


class TestPayloads:
    def test_ticket_roundtrip_through_payload(self):
        ticket = AdmissionTicket(
            "r-9", Decision.ADMIT, 4.25, detail="ok", attempt=2,
        )
        parsed = parse_ticket(ticket_payload(ticket))
        assert parsed == ticket

    def test_request_roundtrip_through_payload(self):
        request = _request("r-7")
        assert parse_request(submit_payload(request)) == request

    def test_malformed_payloads_raise_frame_error(self):
        with pytest.raises(FrameError):
            parse_request({"kind": "submit"})
        with pytest.raises(FrameError):
            parse_request({"kind": "submit", "request": {"cost": -1}})
        with pytest.raises(FrameError):
            parse_ticket({"kind": "ticket"})
        with pytest.raises(FrameError):
            parse_ticket({"kind": "ticket", "ticket": {"decision": "nope"}})

    def test_reject_busy_is_retryable(self):
        """The gateway's backpressure rejection must invite a retry."""
        assert Decision.REJECT_BUSY in RETRYABLE
        ticket = AdmissionTicket("r-1", Decision.REJECT_BUSY, 0.0)
        assert ticket.retryable
        assert parse_ticket(ticket_payload(ticket)).retryable


class TestProxyFaultPlan:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ProxyFaultPlan(reset_probability=1.5)
        with pytest.raises(ValueError):
            ProxyFaultPlan(duplicate_probability=-0.1)

    def test_active_property(self):
        assert not ProxyFaultPlan().active
        assert ProxyFaultPlan(latency_s=0.001).active
        assert ProxyFaultPlan(reorder_probability=0.1).active
