"""Property tests: capacity conservation and service guarantees across
the remaining server families.

``test_properties.py`` covers the polling and deferrable servers; this
module extends the same seeded-random treatment to the sporadic,
priority-exchange, slack-stealing and total-bandwidth servers, using
the verification layer's monitors where a family has a budgeted
account and the family's own defining guarantee where it does not.
"""

from __future__ import annotations

import pytest

from repro.analysis.rta import response_time_analysis
from repro.sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    PriorityExchangeServer,
    Simulation,
    SlackStealingServer,
    SporadicServer,
    TraceEventKind,
)
from repro.sim.schedulers.edf import EarliestDeadlineFirstPolicy
from repro.sim.servers.total_bandwidth import TotalBandwidthServer
from repro.verify.invariants import (
    MonotoneClockMonitor,
    NonOverlapMonitor,
    ServerCapacityMonitor,
)
from repro.workload.rng import PortableRandom
from repro.workload.spec import PeriodicTaskSpec, ServerSpec

SEEDS = (11, 23, 37, 59, 71, 97)
HORIZON = 60.0


def random_jobs(rng: PortableRandom, horizon: float,
                mean_gap: float = 3.0, max_cost: float = 2.0):
    jobs, t = [], 0.0
    while True:
        t += rng.exponential(mean_gap)
        if t >= horizon * 0.8:
            return jobs
        jobs.append(AperiodicJob(
            f"h{len(jobs)}", release=t,
            cost=rng.uniform(0.2, max_cost),
        ))


def random_tasks(rng: PortableRandom, n: int, target_util: float):
    tasks = []
    for i in range(n):
        period = rng.uniform(6.0, 20.0)
        cost = max(0.2, period * target_util / n)
        tasks.append(PeriodicTaskSpec(
            f"t{i}", cost=cost, period=period, priority=i + 1
        ))
    return tasks


@pytest.mark.parametrize("seed", SEEDS)
def test_sporadic_server_conserves_capacity(seed):
    rng = PortableRandom(seed)
    capacity = rng.uniform(1.0, 2.5)
    period = rng.uniform(5.0, 9.0)
    sim = Simulation(FixedPriorityPolicy(), monitors=[
        NonOverlapMonitor(),
        MonotoneClockMonitor(),
        ServerCapacityMonitor("SS", capacity, period, family="sporadic"),
    ])
    server = SporadicServer(
        ServerSpec(capacity, period, priority=10), name="SS"
    )
    server.attach(sim, horizon=HORIZON)
    for task in random_tasks(rng, n=2, target_util=0.4):
        sim.add_periodic_task(task)
    for job in random_jobs(rng, HORIZON):
        sim.submit_aperiodic(job, server.submit)
    sim.run(until=HORIZON)
    report = sim.trace.finish_monitors(HORIZON)
    assert report.ok, report.summary()
    assert server.capacity <= capacity + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_priority_exchange_ledger_conserved(seed):
    """PE holds no single account the capacity monitor can track
    (budget exchanged down in earlier periods legitimately survives the
    next replenishment), but its defining invariants are checkable
    directly: no ledger level ever goes negative, the server-level
    account never exceeds one grant, exchanged capacity only lives at
    real priority levels, and the schedule itself stays legal."""
    rng = PortableRandom(seed)
    capacity = rng.uniform(1.0, 2.5)
    period = rng.uniform(5.0, 9.0)
    sim = Simulation(FixedPriorityPolicy(), monitors=[
        NonOverlapMonitor(), MonotoneClockMonitor(),
    ])
    server = PriorityExchangeServer(
        ServerSpec(capacity, period, priority=10), name="PE"
    )
    server.attach(sim, horizon=HORIZON)
    tasks = random_tasks(rng, n=2, target_util=0.5)
    for task in tasks:
        sim.add_periodic_task(task)
    for job in random_jobs(rng, HORIZON):
        sim.submit_aperiodic(job, server.submit)
    sim.run(until=HORIZON)
    report = sim.trace.finish_monitors(HORIZON)
    assert report.ok, report.summary()
    assert all(v >= -1e-9 for v in server.ledger.values())
    assert server.ledger.get(server.priority, 0.0) <= capacity + 1e-9
    legal_levels = {server.priority} | {t.priority for t in tasks}
    assert set(server.ledger) <= legal_levels
    grants = 1 + int((HORIZON - 1e-9) // period)
    assert server.capacity <= grants * capacity + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_slack_stealer_never_breaks_schedulable_sets(seed):
    """Whenever RTA declares the periodic set schedulable, stealing
    slack for aperiodic work must not introduce a single miss."""
    rng = PortableRandom(seed)
    tasks = random_tasks(rng, n=3, target_util=0.55)
    assert response_time_analysis(tasks).schedulable
    sim = Simulation(FixedPriorityPolicy(), monitors=[
        NonOverlapMonitor(), MonotoneClockMonitor(),
    ])
    server = SlackStealingServer(
        ServerSpec(1.0, 1000.0, priority=10), name="SL"
    )
    server.attach(sim, horizon=HORIZON)
    for task in tasks:
        sim.add_periodic_task(task)
    for job in random_jobs(rng, HORIZON, mean_gap=4.0):
        sim.submit_aperiodic(job, server.submit)
    trace = sim.run(until=HORIZON)
    report = trace.finish_monitors(HORIZON)
    assert report.ok, report.summary()
    assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_tbs_meets_every_stamped_deadline(seed):
    """With periodic EDF load plus the reserved bandwidth below 1, every
    job must finish by the deadline stamped on its RELEASE event."""
    rng = PortableRandom(seed)
    utilization = rng.uniform(0.2, 0.35)
    sim = Simulation(EarliestDeadlineFirstPolicy(), monitors=[
        NonOverlapMonitor(), MonotoneClockMonitor(),
    ])
    server = TotalBandwidthServer(utilization=utilization)
    server.attach(sim, horizon=HORIZON)
    for task in random_tasks(rng, n=2, target_util=0.5):
        sim.add_periodic_task(task)
    jobs = random_jobs(rng, HORIZON, mean_gap=5.0, max_cost=1.5)
    for job in jobs:
        sim.submit_aperiodic(job, server.submit)
    trace = sim.run(until=HORIZON)
    report = trace.finish_monitors(HORIZON)
    assert report.ok, report.summary()
    stamped = {
        e.subject: float(e.detail.split("=", 1)[1])
        for e in trace.events_of(TraceEventKind.RELEASE)
        if e.detail.startswith("tbs-deadline=")
    }
    assert len(stamped) == len(jobs)
    for job in jobs:
        # the %g-formatted detail only carries 6 significant digits
        tolerance = 1e-5 * max(1.0, abs(stamped[job.name]))
        if job.finish_time is not None:
            assert job.finish_time <= stamped[job.name] + tolerance
        else:
            # unfinished is only legitimate past the horizon's edge
            assert stamped[job.name] > HORIZON - tolerance
