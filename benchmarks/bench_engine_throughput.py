"""Infrastructure benchmarks: simulator kernel and VM throughput.

Not a paper table — these pin the cost of the two substrates so that
regressions in the event kernels are visible: RTSS processing a dense
periodic set over a long horizon, and the emulated RTSJ VM running the
full Table 1 configuration with events.
"""

from __future__ import annotations

from repro.experiments import SCENARIOS, run_scenario_execution
from repro.sim import FixedPriorityPolicy, Simulation, TraceEventKind
from repro.workload.spec import PeriodicTaskSpec


def bench_rtss_kernel_dense_periodic(benchmark):
    def run():
        sim = Simulation(FixedPriorityPolicy())
        for i, (cost, period) in enumerate(
            [(1, 5), (2, 8), (1, 10), (3, 20), (2, 25)]
        ):
            sim.add_periodic_task(
                PeriodicTaskSpec(f"t{i}", cost=cost, period=period,
                                 priority=10 - i)
            )
        return sim.run(until=5000)

    trace = benchmark(run)
    assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []
    releases = len(trace.events_of(TraceEventKind.RELEASE))
    print(f"\nprocessed {releases} releases, "
          f"{len(trace.segments)} segments over 5000 tu")


def bench_rtsj_vm_scenario_pipeline(benchmark):
    def run():
        return [run_scenario_execution(spec) for spec in SCENARIOS]

    outcomes = benchmark(run)
    assert len(outcomes) == 3
