"""The emulated RTSJ virtual machine.

A deterministic virtual-time machine substituting for the paper's
testbed (TimeSys RI on RT-Linux).  It executes
:class:`~repro.rtsj.thread.RealtimeThread` generator logic under the
:class:`~repro.rtsj.scheduler.PriorityScheduler`, delivers timer events
through modelled interrupt-service windows that preempt every thread,
enforces ``Timed`` budgets as wall-clock deadlines, and accounts
(optionally enforces) processing-group budgets.

Time is an integer nanosecond counter.  Traces are emitted in *time
units* (1 tu = 1 ms) on the shared :class:`repro.sim.trace.ExecutionTrace`
format, so the simulator's Gantt renderer and metrics work unchanged on
execution runs.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from ..sim.trace import ExecutionTrace, TraceEventKind
from .instructions import AwaitRelease, Compute, Sleep, WaitForNextPeriod
from .interruptible import AsynchronouslyInterruptedException
from .overhead import OverheadModel
from .params import PeriodicParameters, ProcessingGroupParameters
from .scheduler import PriorityScheduler
from .thread import RealtimeThread, ThreadState

__all__ = ["RTSJVirtualMachine", "NS_PER_UNIT"]

#: nanoseconds per trace/metric time unit (1 tu = 1 ms)
NS_PER_UNIT = 1_000_000


class RTSJVirtualMachine:
    """Deterministic virtual-time RTSJ runtime."""

    def __init__(
        self,
        overhead: OverheadModel | None = None,
        trace: ExecutionTrace | None = None,
        timer_drift_ppm: float = 0.0,
    ) -> None:
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.trace = trace if trace is not None else ExecutionTrace()
        #: fault model: the hardware timer runs fast/slow by this many
        #: parts per million; 0 keeps exact timers (the golden path)
        self.timer_drift_ppm = timer_drift_ppm
        #: optional repro.faults.watchdog.DeadlineMissWatchdog
        self.watchdog = None
        self.scheduler = PriorityScheduler()
        self.now_ns = 0
        self._events: list[tuple[int, int, int, Callable[[int], None]]] = []
        self._seq = 0
        self._threads: list[RealtimeThread] = []
        self._busy_until_ns = 0
        self._running: RealtimeThread | None = None
        self._pgps: list[ProcessingGroupParameters] = []
        self._ran = False

    # -- construction API --------------------------------------------------------

    def schedule_event(self, time_ns: int, callback: Callable[[int], None],
                       order: int = 0) -> None:
        """Run ``callback(time_ns)`` at the given virtual time (zero cost)."""
        if time_ns < self.now_ns:
            raise ValueError(
                f"cannot schedule at {time_ns} before now={self.now_ns}"
            )
        heapq.heappush(self._events, (time_ns, order, self._seq, callback))
        self._seq += 1

    def schedule_timer_event(self, time_ns: int,
                             action: Callable[[int], None]) -> None:
        """A timer firing: charges the ISR cost, then runs ``action``.

        Under a non-zero ``timer_drift_ppm`` the firing instant is what
        the *drifting* hardware clock believes it to be.
        """
        def fire(now: int) -> None:
            self.add_isr_time(self.overhead.timer_fire_ns)
            self.trace.add_event(
                now / NS_PER_UNIT, TraceEventKind.TIMER_FIRE, "timer"
            )
            action(now)

        if self.timer_drift_ppm:
            drifted = round(time_ns * (1.0 + self.timer_drift_ppm / 1e6))
            time_ns = max(drifted, self.now_ns)
        self.schedule_event(time_ns, fire, order=2)

    def add_isr_time(self, cost_ns: int) -> None:
        """Extend the system-busy (interrupt) window by ``cost_ns``."""
        if cost_ns <= 0:
            return
        self._busy_until_ns = max(self._busy_until_ns, self.now_ns) + cost_ns

    def add_thread(self, thread: RealtimeThread) -> None:
        """Register and start a thread (ready at its release start)."""
        self._threads.append(thread)
        thread.start(self)

    def schedule_thread_start(self, thread: RealtimeThread,
                              at_ns: int) -> None:
        """Internal: called by ``RealtimeThread.start``."""
        at_ns = max(at_ns, self.now_ns)
        self.schedule_event(at_ns, lambda now, t=thread: self._begin(t), order=3)

    def register_pgp(self, pgp: ProcessingGroupParameters,
                     horizon_ns: int) -> None:
        """Track a processing group: schedule its periodic replenishments."""
        if pgp in self._pgps:
            return
        self._pgps.append(pgp)
        period = pgp.period.total_nanos
        t = pgp.start.total_nanos
        while t < horizon_ns:
            if t >= self.now_ns:
                self.schedule_event(
                    t, lambda now, g=pgp: self._replenish_pgp(now, g), order=1
                )
            t += period

    # -- thread release plumbing ---------------------------------------------------

    def release_thread(self, thread: RealtimeThread) -> None:
        """Deliver one release to a thread blocked in ``AwaitRelease`` (or
        bank it in the thread's pending count)."""
        thread.pending_releases += 1
        if (
            thread.state is ThreadState.BLOCKED
            and isinstance(thread.instruction, AwaitRelease)
        ):
            self._consume_release(thread)

    def _consume_release(self, thread: RealtimeThread) -> None:
        thread.pending_releases -= 1
        self._make_dispatchable(thread)

    # -- execution ------------------------------------------------------------------

    def run(self, until_ns: int) -> ExecutionTrace:
        """Advance virtual time to ``until_ns``; returns the trace."""
        if until_ns <= 0:
            raise ValueError(f"until_ns must be > 0, got {until_ns}")
        if self._ran:
            raise RuntimeError("a VM can only be run once")
        self._ran = True

        while self.now_ns < until_ns:
            self._drain_events()
            # interrupt windows block every thread
            if self._busy_until_ns > self.now_ns:
                stop = min(
                    self._busy_until_ns,
                    self._next_event_time() or math.inf,
                    until_ns,
                )
                stop = int(stop)
                self.trace.add_segment(
                    self.now_ns / NS_PER_UNIT, stop / NS_PER_UNIT, "ISR"
                )
                self.now_ns = stop
                continue
            thread = self._pick()
            if thread is None:
                nxt = self._next_event_time()
                if nxt is None or nxt > until_ns:
                    break
                self.now_ns = max(self.now_ns, nxt)
                continue
            if self._busy_until_ns > self.now_ns:
                # picking charged a context switch: serve the interrupt
                # window first (handled at the top of the loop)
                continue
            self._execute_slice(thread, until_ns)

        self.now_ns = min(self.now_ns, until_ns)
        self.trace.validate()
        return self.trace

    # -- internals ---------------------------------------------------------------------

    def _drain_events(self) -> None:
        while self._events and self._events[0][0] <= self.now_ns:
            _, _, _, callback = heapq.heappop(self._events)
            callback(self.now_ns)

    def _next_event_time(self) -> int | None:
        return self._events[0][0] if self._events else None

    def _begin(self, thread: RealtimeThread) -> None:
        """The thread's release instant: it becomes dispatchable; its
        logic prologue runs only when it first receives the processor."""
        self._make_dispatchable(thread)

    def _make_dispatchable(self, thread: RealtimeThread) -> None:
        """Park the thread on a zero-length compute: the kernel advances
        its generator at the next dispatch, so code between yields runs
        when the thread actually holds the processor — never while a
        higher-priority thread is running."""
        thread.set_resume_marker()
        thread.state = ThreadState.READY
        self.scheduler.make_ready(thread)

    def _replenish_pgp(self, now: int,
                       pgp: ProcessingGroupParameters) -> None:
        pgp.replenish()
        # group members throttled by enforcement become eligible again;
        # the ready queue already holds them, eligibility is re-checked
        # at dispatch

    def _pick(self) -> RealtimeThread | None:
        def dispatchable(t: RealtimeThread) -> bool:
            return isinstance(t.instruction, Compute) and self._eligible(t)

        best = self.scheduler.pick(dispatchable)
        if best is None:
            self._running = None
            return None
        current = self._running
        if (
            current is not None
            and current is not best
            and dispatchable(current)
            and current.ready()
            and not self.scheduler.should_preempt(best, current)
        ):
            best = current
        if best is not current and self.overhead.context_switch_ns:
            self.add_isr_time(self.overhead.context_switch_ns)
        self._running = best
        return best

    def _eligible(self, thread: RealtimeThread) -> bool:
        pgp = thread.pgp
        if pgp is None or not pgp.enforced:
            return True
        return not pgp.exhausted

    def _execute_slice(self, thread: RealtimeThread, until_ns: int) -> None:
        instr = thread.instruction
        assert isinstance(instr, Compute)
        # a Timed deadline that already passed (e.g. covered by an ISR
        # window) interrupts before any further execution
        if instr.deadline_ns is not None and instr.deadline_ns <= self.now_ns:
            self._interrupt(thread)
            return
        stop_candidates = [self.now_ns + instr.remaining_ns, until_ns]
        if instr.deadline_ns is not None:
            stop_candidates.append(instr.deadline_ns)
        nxt = self._next_event_time()
        if nxt is not None:
            stop_candidates.append(nxt)
        pgp = thread.pgp
        if pgp is not None and pgp.enforced:
            stop_candidates.append(self.now_ns + max(pgp.budget_ns, 0))
        stop = min(stop_candidates)
        if stop > self.now_ns:
            elapsed = stop - self.now_ns
            instr.remaining_ns -= elapsed
            if pgp is not None:
                pgp.budget_ns -= elapsed
                if pgp.budget_ns < 0:
                    # the portion of this slice past the budget boundary
                    pgp.overrun_ns += min(elapsed, -pgp.budget_ns)
            self.trace.add_segment(
                self.now_ns / NS_PER_UNIT,
                stop / NS_PER_UNIT,
                thread.name,
                thread.activity_label,
            )
            self.now_ns = stop
        if instr.remaining_ns <= 0:
            thread.advance()
            self._handle_instruction(thread)
        elif instr.deadline_ns is not None and instr.deadline_ns <= self.now_ns:
            self._interrupt(thread)
        # otherwise: preempted by an event/pgp boundary; loop re-picks

    def _interrupt(self, thread: RealtimeThread) -> None:
        instr = thread.instruction
        owner = instr.deadline_owner if isinstance(instr, Compute) else None
        thread.advance(exc=AsynchronouslyInterruptedException(owner))
        self._handle_instruction(thread)

    def _handle_instruction(self, thread: RealtimeThread) -> None:
        """Process non-compute instructions until the thread blocks,
        terminates, or parks on a Compute."""
        while True:
            instr = thread.instruction
            if thread.state is ThreadState.TERMINATED or instr is None:
                self.scheduler.remove(thread)
                thread.state = ThreadState.TERMINATED
                return
            if isinstance(instr, Compute):
                if instr.remaining_ns <= 0:
                    # zero-length compute: complete immediately
                    thread.advance()
                    continue
                thread.state = ThreadState.READY
                self.scheduler.make_ready(thread)
                return
            if isinstance(instr, WaitForNextPeriod):
                release = thread.release
                if not isinstance(release, PeriodicParameters):
                    raise RuntimeError(
                        f"thread {thread.name!r} yielded WaitForNextPeriod "
                        "without PeriodicParameters"
                    )
                period = release.period.total_nanos
                thread.next_release_ns += period
                while thread.next_release_ns < self.now_ns:
                    # overrun past a whole period: skip to the first
                    # release not in the past (a release due exactly now
                    # is still taken, as in RTSJ waitForNextPeriod)
                    thread.next_release_ns += period
                thread.state = ThreadState.BLOCKED
                self.scheduler.remove(thread)
                self.schedule_event(
                    thread.next_release_ns,
                    lambda now, t=thread: self._wake(t),
                    order=3,
                )
                return
            if isinstance(instr, Sleep):
                thread.state = ThreadState.BLOCKED
                self.scheduler.remove(thread)
                wake_at = max(instr.until_ns, self.now_ns)
                self.schedule_event(
                    wake_at, lambda now, t=thread: self._wake(t), order=3
                )
                return
            if isinstance(instr, AwaitRelease):
                if thread.pending_releases > 0:
                    thread.pending_releases -= 1
                    thread.advance()
                    continue
                thread.state = ThreadState.BLOCKED
                self.scheduler.remove(thread)
                return
            raise TypeError(f"unknown instruction {instr!r}")

    def _wake(self, thread: RealtimeThread) -> None:
        if thread.state is ThreadState.TERMINATED:
            return
        self._make_dispatchable(thread)
