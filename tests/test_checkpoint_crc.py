"""Per-record CRC in the checkpoint log (PR 8 satellite).

A crash can tear the last record mid-``append``; the CRC lets ``load``
skip torn or bit-flipped lines with a warning instead of refusing the
whole log (or, worse, replaying garbage)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    AdmissionService,
    EventRequest,
    ServiceConfig,
    VirtualClock,
    replay_ops,
)
from repro.service.checkpoint import CheckpointLog

CONFIG = ServiceConfig(capacity=2.0, period=2.0, detector=None)


def _write_ops(path, count: int = 4) -> str:
    """Run a real service against ``path``; return its twin hash."""

    async def scenario():
        clock = VirtualClock()
        service = AdmissionService(CONFIG, clock=clock,
                                   checkpoint_path=path)
        await service.start()
        for i in range(count):
            await service.submit(EventRequest(
                request_id=f"e{i}", cost=0.5, relative_deadline=60.0,
            ))
        await clock.advance(2.0)
        hash_ = service.twin.state_hash()
        service.kill()
        return hash_

    return asyncio.run(scenario())


class TestCrc:
    def test_round_trip_carries_no_crc_into_ops(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _write_ops(path)
        ops = CheckpointLog(path).load()
        assert ops
        assert all("crc" not in op for op in ops)

    def test_every_line_on_disk_is_checksummed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _write_ops(path)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert isinstance(record.pop("crc"), int)

    def test_torn_tail_is_skipped_with_a_warning(self, tmp_path):
        path = tmp_path / "log.jsonl"
        live_hash = _write_ops(path)
        intact = CheckpointLog(path).load()
        with open(path, "ab") as handle:
            handle.write(b'{"op": "admit", "t": 99, "requ')   # torn
        with pytest.warns(UserWarning, match="torn/corrupt"):
            ops = CheckpointLog(path).load()
        assert ops == intact
        _planner, twin, _header = replay_ops(ops)
        assert twin.state_hash() == live_hash

    def test_bit_flip_mid_file_is_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _write_ops(path)
        lines = path.read_text().splitlines()
        assert len(lines) >= 3
        # flip a digit inside a middle record: still valid JSON, but
        # the payload no longer matches its checksum
        victim = lines[2]
        flipped = None
        for pos, ch in enumerate(victim):
            if ch.isdigit() and '"crc"' not in victim[max(0, pos - 8):pos]:
                flipped = victim[:pos] + str((int(ch) + 1) % 10) \
                    + victim[pos + 1:]
                break
        assert flipped is not None and flipped != victim
        lines[2] = flipped
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="torn/corrupt"):
            ops = CheckpointLog(path).load()
        assert len(ops) == len(lines) - 1

    def test_crcless_legacy_lines_still_load(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _write_ops(path)
        stripped = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            record.pop("crc")
            stripped.append(json.dumps(record, sort_keys=True))
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text("\n".join(stripped) + "\n")
        assert CheckpointLog(legacy).load() == CheckpointLog(path).load()

    def test_restore_survives_a_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        live_hash = _write_ops(path)
        with open(path, "ab") as handle:
            handle.write(b'{"half a rec')

        async def restore():
            with pytest.warns(UserWarning, match="torn/corrupt"):
                service = await AdmissionService.restore(path)
            assert service.twin.state_hash() == live_hash
            await service.drain()

        asyncio.run(restore())
