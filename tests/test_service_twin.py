"""The digital twin: divergence taxonomy and state identity."""

from __future__ import annotations

import pytest

from repro.service.planner import IncrementalPlanner
from repro.service.requests import EventRequest
from repro.service.twin import (
    BUDGET_DRIFT,
    DEADLINE_SLIP,
    HEARTBEAT_MISS,
    DigitalTwin,
    TwinConfig,
)


def _twin(**config) -> DigitalTwin:
    planner = IncrementalPlanner(capacity=2.0, period=2.0)
    return DigitalTwin(config=TwinConfig(**config), planner=planner)


def _admit(twin: DigitalTwin, rid: str, cost: float = 1.0,
           deadline: float = 50.0, now: float = 0.0):
    job, _ = twin.planner.admit(now, EventRequest(
        request_id=rid, cost=cost, relative_deadline=deadline,
    ))
    assert job is not None
    twin.observe_admit(now, job)
    return job


class TestReconcile:
    def test_on_time_completion_is_quiet(self):
        twin = _twin()
        job = _admit(twin, "a")
        divergences = twin.reconcile(
            job.predicted_finish, "a", job.predicted_finish, job.request.cost
        )
        assert divergences == []
        assert twin.counters["completed"] == 1

    def test_slip_past_tolerance_diverges(self):
        twin = _twin(slip_tolerance=0.25)
        job = _admit(twin, "a")
        late = job.predicted_finish + 1.0
        divergences = twin.reconcile(late, "a", late, job.request.cost)
        kinds = [d.kind for d in divergences]
        assert DEADLINE_SLIP in kinds
        assert twin.divergences[DEADLINE_SLIP] == 1

    def test_slip_within_tolerance_is_quiet(self):
        twin = _twin(slip_tolerance=0.25)
        job = _admit(twin, "a")
        barely = job.predicted_finish + 0.2
        assert twin.reconcile(barely, "a", barely, job.request.cost) == []

    def test_cut_has_zero_slip_tolerance(self):
        """A deadline-guard cut is divergence by definition: the promise
        said in-time, reality said not."""
        twin = _twin(slip_tolerance=10.0)   # huge tolerance
        job = _admit(twin, "a")
        barely = job.predicted_finish + 0.01
        divergences = twin.reconcile(barely, "a", barely,
                                     job.request.cost, cut=True)
        assert [d.kind for d in divergences] == [DEADLINE_SLIP]
        assert twin.counters["completed"] == 0   # a cut never completed

    def test_budget_drift_ewma(self):
        twin = _twin(drift_tolerance=0.15, ewma_alpha=0.5)
        kinds: list[str] = []
        for i in range(4):
            job = _admit(twin, f"j{i}")
            served = job.request.cost * 1.8   # consistent 80% overrun
            divergences = twin.reconcile(
                job.predicted_finish, f"j{i}", job.predicted_finish, served
            )
            kinds += [d.kind for d in divergences]
            twin.planner.retire(f"j{i}")
        assert BUDGET_DRIFT in kinds
        assert twin.drift_estimate > 1.15

    def test_negotiated_drift_silences_known_drift(self):
        twin = _twin(drift_tolerance=0.15, ewma_alpha=1.0)
        twin.negotiated_drift = 1.8           # re-negotiation folded in
        job = _admit(twin, "a")
        divergences = twin.reconcile(
            job.predicted_finish, "a", job.predicted_finish,
            job.request.cost * 1.8,
        )
        assert BUDGET_DRIFT not in [d.kind for d in divergences]


class TestHeartbeat:
    def test_due_only_with_backlog(self):
        twin = _twin(heartbeat=10.0)
        assert not twin.heartbeat_due(100.0)   # idle: silence is fine
        _admit(twin, "a")
        assert not twin.heartbeat_due(5.0)
        assert twin.heartbeat_due(11.0)

    def test_miss_counts_once_per_lapse(self):
        twin = _twin(heartbeat=10.0)
        _admit(twin, "a")
        divergence = twin.note_heartbeat_miss(12.0)
        assert divergence.kind == HEARTBEAT_MISS
        assert not twin.heartbeat_due(13.0)    # the miss reset the clock
        assert twin.divergences[HEARTBEAT_MISS] == 1


class TestStateHash:
    def test_stable_across_identical_histories(self):
        a, b = _twin(), _twin()
        for twin in (a, b):
            job = _admit(twin, "x")
            twin.reconcile(job.predicted_finish, "x",
                           job.predicted_finish + 0.5, 1.2)
            twin.planner.retire("x")
        assert a.state_hash() == b.state_hash()

    def test_sensitive_to_any_mutation(self):
        a, b = _twin(), _twin()
        _admit(a, "x")
        _admit(b, "x")
        baseline = a.state_hash()
        assert baseline == b.state_hash()
        b.observe_shed(1.0, "x")
        assert b.state_hash() != baseline

    def test_hash_covers_planner_state(self):
        a, b = _twin(), _twin()
        _admit(a, "x")
        _admit(b, "x")
        b.planner.repair(1.0)
        assert a.state_hash() != b.state_hash()

    @pytest.mark.parametrize("bad", [
        dict(slip_tolerance=-1.0), dict(drift_tolerance=0.0),
        dict(heartbeat=0.0), dict(ewma_alpha=0.0), dict(ewma_alpha=1.5),
    ])
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            TwinConfig(**bad)
