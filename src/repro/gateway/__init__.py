"""Wall-clock network ingestion for the admission service (PR 9).

The gateway is the deployment face of the repo: a hardened asyncio
socket front end (:mod:`~repro.gateway.gateway`) speaking a
length-prefixed JSON protocol (:mod:`~repro.gateway.protocol`),
journaling every ingested frame for crash-safe at-least-once delivery,
and drilled by a frame-aware chaos proxy (:mod:`~repro.gateway.faults`)
plus seeded wall-clock soaks whose fates are cross-checked against a
``VirtualClock`` control replay (:mod:`~repro.gateway.soak`).
"""

from .faults import NetworkFaultProxy, ProxyFaultPlan
from .gateway import (
    AdmissionGateway,
    GatewayConfig,
    load_journal,
    undecided_entries,
)
from .protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameTimeout,
    FrameTooLarge,
    TornFrame,
    encode_frame,
    error_payload,
    parse_request,
    parse_ticket,
    ping_payload,
    read_frame,
    read_raw_frame,
    submit_payload,
    ticket_payload,
    write_frame,
)
from .soak import (
    GatewaySoakConfig,
    GatewaySoakReport,
    default_gateway_service_config,
    run_control_replay,
    run_gateway_soak,
    soak_requests,
)

__all__ = [
    "AdmissionGateway",
    "GatewayConfig",
    "load_journal",
    "undecided_entries",
    "NetworkFaultProxy",
    "ProxyFaultPlan",
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameTimeout",
    "FrameTooLarge",
    "TornFrame",
    "encode_frame",
    "error_payload",
    "parse_request",
    "parse_ticket",
    "ping_payload",
    "read_frame",
    "read_raw_frame",
    "submit_payload",
    "ticket_payload",
    "write_frame",
    "GatewaySoakConfig",
    "GatewaySoakReport",
    "default_gateway_service_config",
    "run_control_replay",
    "run_gateway_soak",
    "soak_requests",
]
