"""Wall-clock gateway soak drills (PR 9): fates must match the control."""

from __future__ import annotations

from repro.gateway import (
    GatewaySoakConfig,
    ProxyFaultPlan,
    default_gateway_service_config,
    load_journal,
    run_control_replay,
    run_gateway_soak,
    soak_requests,
)

FAULTS = ProxyFaultPlan(
    latency_s=0.001, jitter_s=0.002,
    reset_probability=0.03, torn_frame_probability=0.02,
    duplicate_probability=0.05, reorder_probability=0.03,
)


class TestSchedule:
    def test_seeded_schedule_is_deterministic(self):
        config = GatewaySoakConfig(requests=40, seed=9)
        first = soak_requests(config)
        second = soak_requests(config)
        assert first == second
        other = soak_requests(GatewaySoakConfig(requests=40, seed=10))
        assert other != first

    def test_schedule_shape(self):
        config = GatewaySoakConfig(requests=30, sources=3, seed=1)
        schedule = soak_requests(config)
        assert len(schedule) == 30
        times = [t for t, _r in schedule]
        assert times == sorted(times)
        assert {r.source for _t, r in schedule} == {
            "src-0", "src-1", "src-2"
        }
        assert len({r.request_id for _t, r in schedule}) == 30


class TestPlainSoak:
    def test_clean_run_matches_control_replay(self, tmp_path):
        report = run_gateway_soak(
            GatewaySoakConfig(requests=60, seed=5), tmp_path / "plain"
        )
        assert report.clean
        assert report.delivered == 60
        assert report.lost == 0
        assert report.fate_mismatches == []
        assert report.violations == []
        assert report.fates == report.control_fates
        assert report.summary()["clean"] is True

    def test_control_replay_is_deterministic(self, tmp_path):
        run_gateway_soak(
            GatewaySoakConfig(requests=40, seed=6), tmp_path / "s"
        )
        ops = load_journal(tmp_path / "s" / "gateway-journal.jsonl")
        service_config = default_gateway_service_config()
        first = run_control_replay(ops, service_config, seed=6)
        second = run_control_replay(ops, service_config, seed=6)
        assert first == second
        assert len(first) == 40


class TestChaosSoak:
    def test_fault_proxy_soak_stays_fate_identical(self, tmp_path):
        report = run_gateway_soak(
            GatewaySoakConfig(requests=80, seed=11, proxy=FAULTS),
            tmp_path / "faults",
        )
        assert report.clean, (report.fate_mismatches, report.violations)
        assert report.proxy is not None
        assert report.proxy["forwarded"] > 0

    def test_kill_restore_drill_stays_fate_identical(self, tmp_path):
        report = run_gateway_soak(
            GatewaySoakConfig(requests=80, seed=13, proxy=FAULTS,
                              kill_at=12.0),
            tmp_path / "kill",
        )
        assert report.clean, (report.fate_mismatches, report.violations)
        assert report.killed and report.restored
        # the blackout forced clients through reconnect-and-retry
        assert report.retries > 0

    def test_overload_pressure_keeps_fate_parity(self, tmp_path):
        """Rejections, not just admits, must replay identically."""
        report = run_gateway_soak(
            GatewaySoakConfig(requests=100, seed=3, rate=8.0,
                              cost_range=(0.3, 0.9), deadline_factor=6.0,
                              kill_at=8.0),
            tmp_path / "hot",
        )
        assert report.clean, (report.fate_mismatches, report.violations)
        assert sum(report.decisions.values()) == 100


class TestChaosFlavor:
    def test_gateway_flavor_runs_clean(self):
        from repro.verify.chaos import CHAOS_FLAVORS, run_chaos_campaign

        assert "gateway" in CHAOS_FLAVORS
        result = run_chaos_campaign(
            n_systems=1, seed=2, flavors=("gateway",)
        )
        assert result.ok, result.summary()
