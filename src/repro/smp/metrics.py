"""Per-core and aggregate metrics for multicore runs.

Extends the paper's AART / AIR / ASR measures (uniprocessor
:mod:`repro.sim.metrics`) with the two quantities that only exist on SMP:
per-core breakdowns (each core's share of the aperiodic service and its
utilization) and the migration count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.metrics import RunMetrics, measure_run
from ..sim.task import AperiodicJob
from ..sim.trace import ExecutionTrace, TraceEventKind

__all__ = [
    "CoreMetrics",
    "MulticoreRunMetrics",
    "measure_multicore_run",
    "multicore_metrics_to_dict",
    "multicore_metrics_from_dict",
]


@dataclass(frozen=True)
class CoreMetrics:
    """One core's view of a run."""

    core: int
    metrics: RunMetrics
    #: fraction of the horizon the core spent executing anything
    utilization: float


@dataclass(frozen=True)
class MulticoreRunMetrics:
    """Per-core breakdown plus the aggregate the paper's tables report."""

    per_core: tuple[CoreMetrics, ...]
    aggregate: RunMetrics
    migrations: int
    #: jobs whose serving core could not be determined (never executed)
    unattributed: int = 0

    @property
    def n_cores(self) -> int:
        return len(self.per_core)

    @property
    def total_utilization(self) -> float:
        """Sum of per-core utilizations (in [0, n_cores])."""
        return sum(c.utilization for c in self.per_core)


def _core_of_job(trace: ExecutionTrace, job_name: str) -> int | None:
    """The core that *finished* a job: core of its last labelled segment."""
    core = None
    for segment in trace.segments:
        if segment.job == job_name and segment.core is not None:
            core = segment.core
    return core


def measure_multicore_run(
    jobs: list[AperiodicJob],
    trace: ExecutionTrace,
    n_cores: int,
    horizon: float,
    core_of_job: dict[str, int] | None = None,
) -> MulticoreRunMetrics:
    """Compute one multicore run's metrics.

    ``core_of_job`` pins each aperiodic job to the core whose server it
    was routed to (the partitioned case, where attribution is a design
    input); without it a job is attributed to the core that executed its
    last segment (the global case, where attribution is an outcome).
    Jobs that never ran and have no pinned core count only in the
    aggregate and in ``unattributed``.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    per_core_jobs: dict[int, list[AperiodicJob]] = {
        k: [] for k in range(n_cores)
    }
    unattributed = 0
    for job in jobs:
        core = None
        if core_of_job is not None:
            core = core_of_job.get(job.name)
        if core is None:
            core = _core_of_job(trace, job.name)
        if core is None:
            unattributed += 1
            continue
        if not 0 <= core < n_cores:
            raise ValueError(
                f"job {job.name!r} attributed to core {core}, but the run "
                f"had {n_cores} cores"
            )
        per_core_jobs[core].append(job)
    busy = [0.0] * n_cores
    for segment in trace.segments:
        if segment.core is not None and 0 <= segment.core < n_cores:
            busy[segment.core] += segment.duration
    return MulticoreRunMetrics(
        per_core=tuple(
            CoreMetrics(
                core=k,
                metrics=measure_run(per_core_jobs[k]),
                utilization=min(busy[k] / horizon, 1.0),
            )
            for k in range(n_cores)
        ),
        aggregate=measure_run(jobs),
        migrations=len(trace.events_of(TraceEventKind.MIGRATION)),
        unattributed=unattributed,
    )


def _run_metrics_to_dict(metrics: RunMetrics) -> dict:
    return {
        "released": metrics.released,
        "served": metrics.served,
        "interrupted": metrics.interrupted,
        "average_response_time": metrics.average_response_time,
        "response_times": list(metrics.response_times),
    }


def _run_metrics_from_dict(data: dict) -> RunMetrics:
    return RunMetrics(
        released=data["released"],
        served=data["served"],
        interrupted=data["interrupted"],
        average_response_time=data["average_response_time"],
        response_times=tuple(data["response_times"]),
    )


def multicore_metrics_to_dict(metrics: MulticoreRunMetrics) -> dict:
    """A JSON-serialisable form (checkpoint payloads round-trip this)."""
    return {
        "per_core": [
            {
                "core": c.core,
                "metrics": _run_metrics_to_dict(c.metrics),
                "utilization": c.utilization,
            }
            for c in metrics.per_core
        ],
        "aggregate": _run_metrics_to_dict(metrics.aggregate),
        "migrations": metrics.migrations,
        "unattributed": metrics.unattributed,
    }


def multicore_metrics_from_dict(data: dict) -> MulticoreRunMetrics:
    """Rebuild :class:`MulticoreRunMetrics` from its dict form."""
    return MulticoreRunMetrics(
        per_core=tuple(
            CoreMetrics(
                core=c["core"],
                metrics=_run_metrics_from_dict(c["metrics"]),
                utilization=c["utilization"],
            )
            for c in data["per_core"]
        ),
        aggregate=_run_metrics_from_dict(data["aggregate"]),
        migrations=data["migrations"],
        unattributed=data.get("unattributed", 0),
    )
