"""Smoke tests: every example script runs cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
# underscore-prefixed files are shared helpers (e.g. the sys.path
# bootstrap), not runnable demos
EXAMPLES = sorted(
    p for p in EXAMPLES_DIR.glob("*.py") if not p.name.startswith("_")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path, tmp_path: Path) -> None:
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=tmp_path,  # examples must not depend on the CWD
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they show"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3
