"""Core-aware fault targeting: perturb only what the plan names."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, ReleaseJitter, WcetOverrun
from repro.sim.trace_io import trace_to_dict
from repro.smp import (
    MULTICORE_MODES,
    MulticoreParameters,
    build_multicore_system,
    run_multicore_system,
)

PARAMS = MulticoreParameters(
    n_cores=2, n_tasks=4, total_utilization=1.0, nb_systems=1, seed=3,
    horizon_periods=4,
)

INJECTORS = (WcetOverrun(factor=2.0, probability=1.0, periodic=True),)


class TestIdentity:
    def test_disabled_plan_is_identity_object(self):
        system = build_multicore_system(PARAMS, 0)
        plan = FaultPlan(injectors=INJECTORS, seed=11, enabled=False,
                         targets=("tau1",))
        assert plan.apply(system) is system

    def test_disabled_plan_run_byte_identical_on_multicore(self):
        system = build_multicore_system(PARAMS, 0)
        plan = FaultPlan(injectors=INJECTORS, seed=11, enabled=False)
        for mode in MULTICORE_MODES:
            golden = run_multicore_system(system, 2, mode)
            faulted = run_multicore_system(plan.apply(system), 2, mode)
            assert (
                trace_to_dict(faulted.trace) == trace_to_dict(golden.trace)
            ), f"disabled plan drifted the {mode} run"

    def test_empty_targets_perturbs_nothing(self):
        system = build_multicore_system(PARAMS, 0)
        plan = FaultPlan(injectors=INJECTORS, seed=11, targets=())
        faulted = plan.apply(system)
        assert faulted.periodic_tasks == system.periodic_tasks
        assert faulted.events == system.events


class TestTargeting:
    def test_only_named_tasks_and_events_perturbed(self):
        system = build_multicore_system(PARAMS, 0)
        plan = FaultPlan(injectors=INJECTORS, seed=11,
                         targets=("tau1", "h0"))
        faulted = plan.apply(system)
        for before, after in zip(system.periodic_tasks,
                                 faulted.periodic_tasks):
            if before.name == "tau1":
                assert after != before
                assert after.actual_cost == pytest.approx(before.cost * 2)
            else:
                assert after == before
        for before, after in zip(system.events, faulted.events):
            if before.event_id == 0:
                assert after.actual_cost == pytest.approx(before.cost * 2)
            else:
                assert after == before

    def test_targeting_is_deterministic(self):
        system = build_multicore_system(PARAMS, 0)
        plan = FaultPlan(injectors=INJECTORS, seed=11, targets=("tau2",))
        assert plan.apply(system) == plan.apply(system)

    def test_target_perturbation_independent_of_placement(self):
        """The same targeted fault hits the same tasks under every mode.

        The plan transforms the workload descriptor before any placement
        decision, so partitioned-ff, partitioned-wf and global runs all
        consume one identical faulted system.
        """
        system = build_multicore_system(PARAMS, 0)
        plan = FaultPlan(injectors=INJECTORS, seed=11, targets=("tau1",))
        faulted = plan.apply(system)
        results = {
            mode: run_multicore_system(faulted, 2, mode)
            for mode in ("part-ff", "part-wf", "global-edf")
        }
        placements = {
            mode: result.partition.core_of["tau1"]
            for mode, result in results.items()
            if result.partition is not None
        }
        # the two heuristics need not agree on where tau1 lands ...
        assert len(placements) == 2
        # ... yet the perturbation is the same faulted spec everywhere
        spec = next(t for t in faulted.periodic_tasks if t.name == "tau1")
        assert spec.actual_cost == pytest.approx(spec.cost * 2)

    def test_rng_stream_isolated_to_targets(self):
        """Adding untargeted tasks must not change what a target gets."""
        big = MulticoreParameters(
            n_cores=2, n_tasks=8, total_utilization=1.0, seed=3,
            horizon_periods=4,
        )
        jitter = (ReleaseJitter(max_jitter=0.5),)
        sys_small = build_multicore_system(PARAMS, 0)
        sys_big = build_multicore_system(big, 0)
        plan = FaultPlan(injectors=jitter, seed=17, targets=("h0",))
        shifted_small = plan.apply(sys_small).events
        shifted_big = plan.apply(sys_big).events
        delta_small = (
            shifted_small[0].release - sys_small.events[0].release
        )
        delta_big = shifted_big[0].release - sys_big.events[0].release
        assert delta_small == pytest.approx(delta_big)


class TestValidation:
    def test_non_string_target_rejected(self):
        with pytest.raises(TypeError, match="targets"):
            FaultPlan(injectors=INJECTORS, targets=(3,))
