"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import InstanceBucketQueue, PendingQueue
from repro.core.response_time import ideal_ps_finish_time
from repro.rtsj.time_types import AbsoluteTime, RelativeTime
from repro.sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealDeferrableServer,
    IdealPollingServer,
    JobState,
    Simulation,
)
from repro.workload import GenerationParameters, RandomSystemGenerator
from repro.workload.rng import PortableRandom
from repro.workload.spec import ServerSpec


# ---------------------------------------------------------------- time types

nanos = st.integers(min_value=-10**15, max_value=10**15)


class TestTimeTypeProperties:
    @given(a=nanos, b=nanos)
    def test_relative_addition_commutes(self, a, b):
        x, y = RelativeTime.from_nanos(a), RelativeTime.from_nanos(b)
        assert x.add(y) == y.add(x)

    @given(a=nanos, b=nanos, c=nanos)
    def test_relative_addition_associates(self, a, b, c):
        x, y, z = (RelativeTime.from_nanos(v) for v in (a, b, c))
        assert x.add(y).add(z) == x.add(y.add(z))

    @given(a=nanos, b=nanos)
    def test_absolute_difference_roundtrip(self, a, b):
        p, q = AbsoluteTime.from_nanos(a), AbsoluteTime.from_nanos(b)
        assert q.add(p.subtract(q)) == p

    @given(a=nanos)
    def test_canonical_component_reconstruction(self, a):
        t = RelativeTime.from_nanos(a)
        assert t.milliseconds * 1_000_000 + t.nanoseconds == a
        assert 0 <= t.nanoseconds < 1_000_000

    @given(a=nanos, k=st.integers(min_value=-100, max_value=100))
    def test_scale_matches_repeated_addition(self, a, k):
        t = RelativeTime.from_nanos(a)
        assert t.scale(k).total_nanos == a * k


# ---------------------------------------------------------------- PRNG

class TestRngProperties:
    @given(seed=st.integers())
    def test_stream_restart_identical(self, seed):
        a, b = PortableRandom(seed), PortableRandom(seed)
        assert [a.next_u64() for _ in range(16)] == [
            b.next_u64() for _ in range(16)
        ]

    @given(seed=st.integers(), low=st.integers(-50, 50),
           span=st.integers(0, 100))
    def test_randint_bounds(self, seed, low, span):
        r = PortableRandom(seed)
        high = low + span
        assert all(low <= r.randint(low, high) <= high for _ in range(32))

    @given(seed=st.integers())
    def test_random_unit_interval(self, seed):
        r = PortableRandom(seed)
        assert all(0.0 <= r.random() < 1.0 for _ in range(64))


# ---------------------------------------------------------------- queues

@dataclass
class Item:
    cost_ns: int


costs = st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                 max_size=40)


class TestQueueProperties:
    @given(cs=costs)
    def test_bucket_invariants(self, cs):
        q = InstanceBucketQueue(capacity_ns=40)
        placements = [q.add(Item(c)) for c in cs]
        # every bucket obeys the capacity; offsets are non-decreasing
        offsets = [p.instance_offset for p in placements]
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))
        assert all(p.cumulative_before_ns + c <= 40
                   for p, c in zip(placements, cs))
        # draining preserves insertion order exactly (strict FIFO)
        drained = [q.pop_current().cost_ns for _ in range(len(cs))]
        assert drained == cs
        assert q.empty

    @given(cs=costs, limit=st.integers(min_value=0, max_value=40))
    def test_first_fitting_is_earliest(self, cs, limit):
        q = PendingQueue()
        items = [Item(c) for c in cs]
        for item in items:
            q.add(item)
        chosen = q.choose_first_fitting(limit)
        fitting = [i for i in items if i.cost_ns <= limit]
        assert chosen is (fitting[0] if fitting else None)


# ---------------------------------------------------------------- servers

arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    ),
    min_size=0,
    max_size=12,
)


def run_server(server_cls, arrivals, capacity=4.0, period=6.0,
               horizon=120.0):
    sim = Simulation(FixedPriorityPolicy())
    server = server_cls(ServerSpec(capacity, period, priority=10), name="S")
    server.attach(sim, horizon=horizon)
    jobs = []
    for i, (t, c) in enumerate(sorted(arrivals)):
        job = AperiodicJob(f"j{i}", release=t, cost=c)
        jobs.append(job)
        sim.submit_aperiodic(job, server.submit)
    trace = sim.run(until=horizon)
    return server, jobs, trace


class TestServerProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrivals=arrival_lists)
    def test_polling_invariants(self, arrivals):
        server, jobs, trace = run_server(IdealPollingServer, arrivals)
        self._common_invariants(server, jobs, trace, capacity=4.0, period=6.0)

    @settings(max_examples=40, deadline=None)
    @given(arrivals=arrival_lists)
    def test_deferrable_invariants(self, arrivals):
        server, jobs, trace = run_server(IdealDeferrableServer, arrivals)
        self._common_invariants(server, jobs, trace, capacity=4.0, period=6.0)

    @staticmethod
    def _common_invariants(server, jobs, trace, capacity, period):
        trace.validate()
        assert 0 <= server.capacity <= capacity + 1e-9
        for job in jobs:
            if job.state is JobState.COMPLETED:
                rt = job.response_time
                assert rt is not None and rt >= job.cost - 1e-9
                assert job.start_time is not None
                assert job.start_time >= job.release - 1e-9
        # the server never does more work in any period than its capacity
        k = 0
        while k * period < trace.makespan:
            window_work = sum(
                max(0.0, min(s.end, (k + 1) * period) - max(s.start, k * period))
                for s in trace.segments_of("S")
            )
            assert window_work <= capacity + 1e-6
            k += 1
        # total service never exceeds total demand
        assert trace.busy_time("S") <= sum(j.cost for j in jobs) + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(arrivals=arrival_lists)
    def test_ds_serves_no_fewer_than_ps(self, arrivals):
        ps, ps_jobs, _ = run_server(IdealPollingServer, arrivals)
        ds, ds_jobs, _ = run_server(IdealDeferrableServer, arrivals)
        assert len(ds.completed) >= len(ps.completed)


# ---------------------------------------------------------------- generator

class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        density=st.floats(min_value=0.2, max_value=4.0),
        std=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_generated_systems_well_formed(self, seed, density, std):
        params = GenerationParameters(
            task_density=density, average_cost=3.0, std_deviation=std,
            server_capacity=4.0, server_period=6.0, nb_generation=3,
            seed=seed,
        )
        for system in RandomSystemGenerator(params).generate():
            releases = [e.release for e in system.events]
            assert releases == sorted(releases)
            assert all(0 <= r < system.horizon for r in releases)
            assert all(e.declared_cost >= params.min_cost
                       for e in system.events)


# ---------------------------------------------------------------- equations

class TestEquationProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        t=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        w=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        cs_frac=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_finish_time_bounds(self, t, w, cs_frac):
        capacity, period = 4.0, 6.0
        cs = cs_frac * capacity
        finish = ideal_ps_finish_time(t, w, cs, capacity, period)
        # never earlier than doing the work back to back
        assert finish >= t + w - 1e-9
        # never later than one instance per period from scratch
        if w > 0:
            import math

            worst = (math.floor(t / period) + 1 + math.ceil(w / capacity)) \
                * period
            assert finish <= worst + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(
        t=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        w=st.floats(min_value=0.1, max_value=60.0, allow_nan=False),
        extra=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_finish_time_monotone_in_workload(self, t, w, extra):
        capacity, period = 4.0, 6.0
        f1 = ideal_ps_finish_time(t, w, 0.0, capacity, period)
        f2 = ideal_ps_finish_time(t, w + extra, 0.0, capacity, period)
        assert f2 >= f1 - 1e-9
