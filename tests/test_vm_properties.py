"""Property-based tests on the emulated RTSJ VM.

The completion properties are gated on the *analysis* verdict, which
makes them double-duty: they cross-validate
:mod:`repro.analysis` against the VM — whenever the response-time
analysis declares a set schedulable, the VM must execute every job of
every task on time.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    PeriodicInterference,
    response_time_analysis,
    response_time_with_interference,
)
from repro.rtsj import OverheadModel, RTSJVirtualMachine
from repro.workload.spec import PeriodicTaskSpec
from conftest import M, make_periodic_thread


task_sets = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),    # cost (tu)
        st.integers(min_value=5, max_value=20),   # period (tu)
    ),
    min_size=1,
    max_size=5,
)


def to_specs(tasks):
    return [
        PeriodicTaskSpec(f"t{i}", cost=float(c), period=float(p),
                         priority=35 - i)
        for i, (c, p) in enumerate(tasks)
    ]


def build_vm(specs, overhead=None):
    vm = RTSJVirtualMachine(
        overhead=overhead if overhead is not None else OverheadModel.zero()
    )
    for spec in specs:
        vm.add_thread(
            make_periodic_thread(spec.name, spec.cost, spec.period,
                                 spec.priority)
        )
    return vm


class TestVMProperties:
    @settings(max_examples=40, deadline=None)
    @given(tasks=task_sets)
    def test_trace_never_overlaps_and_never_overruns(self, tasks):
        specs = to_specs(tasks)
        vm = build_vm(specs)
        horizon = 120
        trace = vm.run(horizon * M)
        trace.validate()
        for spec in specs:
            busy = trace.busy_time(spec.name)
            releases = math.ceil(horizon / spec.period)
            assert busy <= releases * spec.cost + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_sets)
    def test_rta_schedulable_sets_complete_every_job(self, tasks):
        specs = to_specs(tasks)
        if not response_time_analysis(specs).schedulable:
            return
        horizon = 200
        vm = build_vm(specs)
        trace = vm.run(horizon * M)
        for spec in specs:
            # every release with a full window inside the horizon ran to
            # completion: the executed time equals the full demand
            full_windows = math.floor(horizon / spec.period)
            expected = full_windows * spec.cost
            assert trace.busy_time(spec.name) >= expected - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        tasks=task_sets,
        isr_cost=st.integers(min_value=0, max_value=200_000),
    )
    def test_isr_noise_respects_extended_analysis(self, tasks, isr_cost):
        """With periodic ISR noise added as one more interference source,
        the analysis verdict still upper-bounds VM behaviour."""
        specs = to_specs(tasks)
        noise_period = 7.0
        sources = [
            PeriodicInterference(t.cost, t.period, t.priority) for t in specs
        ]
        sources.append(
            PeriodicInterference(
                max(isr_cost / M, 1e-9), noise_period, priority=99
            )
        )
        all_ok = all(
            response_time_with_interference(
                cost=t.cost, deadline=t.period, priority=t.priority,
                sources=[s for s in sources if s is not sources[i]],
            )
            is not None
            for i, t in enumerate(specs)
        )
        if not all_ok:
            return
        vm = build_vm(
            specs,
            overhead=OverheadModel(
                timer_fire_ns=isr_cost, release_ns=0, dispatch_ns=0,
                handler_inflation_ns=0,
            ),
        )
        horizon = 140
        k = 1
        while k * noise_period < horizon:
            vm.schedule_timer_event(round(k * noise_period * M),
                                    lambda now: None)
            k += 1
        trace = vm.run(horizon * M)
        trace.validate()
        for spec in specs:
            full_windows = math.floor(horizon / spec.period)
            expected = full_windows * spec.cost
            assert trace.busy_time(spec.name) >= expected - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(tasks=task_sets)
    def test_determinism(self, tasks):
        from repro.sim.trace_io import diff_traces

        specs = to_specs(tasks)
        vm_a = build_vm(specs)
        vm_b = build_vm(specs)
        assert diff_traces(vm_a.run(80 * M), vm_b.run(80 * M)) == []
