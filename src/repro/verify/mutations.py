"""Deliberate scheduler bugs, behind test-only context managers.

The monitors are only trustworthy if they are non-vacuous: each family
must demonstrably catch at least one real kernel bug.  Each mutation
here monkey-patches one well-understood defect into the live code for
the duration of a ``with`` block — a priority inversion, a leaking
capacity account, a replenishment that over-grants, a lost wakeup, a
breaker that closes on failure, a skewed trace clock, a skipped server
activation, a double completion — and :data:`MUTATIONS` records which
violation kinds the verification layer is expected to report for it.

Strictly test infrastructure: nothing in the package imports this
module on the golden path.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..overload.breaker import CircuitBreaker
from ..sim.engine import PeriodicTaskEntity
from ..sim.schedulers.edf import EarliestDeadlineFirstPolicy
from ..sim.schedulers.fp import FixedPriorityPolicy
from ..sim.servers.base import AperiodicServer
from ..sim.servers.deferrable import IdealDeferrableServer
from ..sim.servers.polling import IdealPollingServer
from ..sim.trace import ExecutionTrace, TraceEventKind

__all__ = [
    "MUTATIONS",
    "MutationOutcome",
    "mutation",
    "run_mutation_selftest",
]


@contextmanager
def _fp_inversion():
    """FP picks the *lowest*-priority ready entity (classic inversion)."""
    original = FixedPriorityPolicy.select

    def select(self, now, ready):
        if not ready:
            return None
        best = min(range(len(ready)), key=lambda i: (ready[i].priority, i))
        return ready[best]

    FixedPriorityPolicy.select = select
    try:
        yield
    finally:
        FixedPriorityPolicy.select = original


@contextmanager
def _edf_inversion():
    """EDF picks the *latest*-deadline ready entity."""
    original = EarliestDeadlineFirstPolicy.select

    def select(self, now, ready):
        if not ready:
            return None
        best = max(
            range(len(ready)),
            key=lambda i: (ready[i].current_deadline(now), -i),
        )
        return ready[best]

    EarliestDeadlineFirstPolicy.select = select
    try:
        yield
    finally:
        EarliestDeadlineFirstPolicy.select = original


@contextmanager
def _capacity_leak():
    """The server's capacity account never drains: it serves past its
    budget inside every replenishment window."""
    original = AperiodicServer.consume

    def consume(self, start, duration, sim):
        before = self.capacity
        original(self, start, duration, sim)
        self.capacity = before  # the drain leaks straight back

    AperiodicServer.consume = consume
    try:
        yield
    finally:
        AperiodicServer.consume = original


@contextmanager
def _over_replenish():
    """The Deferrable Server refills to twice its configured capacity."""
    original = IdealDeferrableServer._replenish_full

    def replenish_full(self, now):
        self.capacity = 0.0
        grant = 2.0 * self.spec.capacity * self.service_scale
        self._replenish(now, grant, cap=grant)

    IdealDeferrableServer._replenish_full = replenish_full
    try:
        yield
    finally:
        IdealDeferrableServer._replenish_full = original


@contextmanager
def _lost_release():
    """Lost wakeup: every third release is announced on the trace but
    never queued, so the job silently never runs."""
    original = PeriodicTaskEntity.release
    counter = {"n": 0}

    def release(self, now, job, sim):
        counter["n"] += 1
        if counter["n"] % 3 == 0:
            # the RELEASE event fires, the queue append is lost
            sim.trace.add_event(now, TraceEventKind.RELEASE, job.name)
            return
        original(self, now, job, sim)

    PeriodicTaskEntity.release = release
    try:
        yield
    finally:
        PeriodicTaskEntity.release = original


@contextmanager
def _breaker_close_bug():
    """A failure *closes* the breaker instead of counting toward a trip."""
    original = CircuitBreaker.record_failure

    def record_failure(self, now):
        self._close(now)

    CircuitBreaker.record_failure = record_failure
    try:
        yield
    finally:
        CircuitBreaker.record_failure = original


@contextmanager
def _clock_skew():
    """Segments are recorded 0.25tu early, overlapping their
    predecessors; the trace's own assert is disarmed so the run
    completes and the sanitizer has to catch it."""
    original_add = ExecutionTrace.add_segment
    original_validate = ExecutionTrace.validate

    def add_segment(self, start, end, entity, job=None, core=None):
        if start > 0.5:
            start = start - 0.25
        original_add(self, start, end, entity, job, core)

    ExecutionTrace.add_segment = add_segment
    ExecutionTrace.validate = lambda self: None
    try:
        yield
    finally:
        ExecutionTrace.add_segment = original_add
        ExecutionTrace.validate = original_validate


@contextmanager
def _polling_skip_activation():
    """The Polling Server misses every other activation: pending jobs
    wait a full extra period, breaking the Section 7 response bound."""
    original = IdealPollingServer._activate
    counter = {"n": 0}

    def activate(self, now):
        counter["n"] += 1
        if counter["n"] % 2 == 0:
            self.capacity = 0.0
            self.record_capacity(now)
            return
        original(self, now)

    IdealPollingServer._activate = activate
    try:
        yield
    finally:
        IdealPollingServer._activate = original


@contextmanager
def _double_completion():
    """Completion bookkeeping fires twice for every periodic job."""
    original = PeriodicTaskEntity.on_budget_exhausted

    def on_budget_exhausted(self, now, sim):
        head = self._queue[0] if self._queue else None
        original(self, now, sim)
        if head is not None and head.finish_time is not None:
            sim.trace.add_event(
                now, TraceEventKind.COMPLETION, head.name
            )

    PeriodicTaskEntity.on_budget_exhausted = on_budget_exhausted
    try:
        yield
    finally:
        PeriodicTaskEntity.on_budget_exhausted = original


#: mutation name -> (context manager factory, violation kinds at least
#: one of which the verification layer must report under the mutation)
MUTATIONS = {
    "fp-inversion": (_fp_inversion, {"fp-inversion"}),
    "edf-inversion": (_edf_inversion, {"edf-inversion"}),
    "capacity-leak": (_capacity_leak, {"capacity-overdraw"}),
    "over-replenish": (_over_replenish, {"over-replenish"}),
    "lost-release": (_lost_release, {"fp-inversion", "unserved-release"}),
    "breaker-close-bug": (
        _breaker_close_bug,
        {"breaker-close-without-open", "shed-while-closed"},
    ),
    "clock-skew": (_clock_skew, {"overlap"}),
    "polling-skip-activation": (
        _polling_skip_activation,
        {"response-time-mismatch", "unserved-within-bound",
         "admission-bound-exceeded", "admitted-not-served",
         "aart-speedup"},
    ),
    "double-completion": (_double_completion, {"duplicate-terminal"}),
}


def mutation(name: str):
    """The context manager arming one named mutation."""
    try:
        factory, _expected = MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; have {sorted(MUTATIONS)}"
        ) from None
    return factory()


# -- self-test --------------------------------------------------------------


def _selftest_system(seed: int = 6021, dense: bool = True,
                     tasks: bool = True):
    """A deterministic workload busy enough to exercise every monitor."""
    from dataclasses import replace

    from ..workload.generator import RandomSystemGenerator
    from ..workload.spec import GenerationParameters, PeriodicTaskSpec

    params = GenerationParameters(
        task_density=6.0 if dense else 2.0,
        average_cost=0.8,
        std_deviation=0.2,
        server_capacity=2.0,
        server_period=10.0,
        nb_generation=1,
        seed=seed,
        horizon_periods=8,
    )
    system = RandomSystemGenerator(params).generate()[0]
    if tasks:
        system = replace(system, periodic_tasks=(
            PeriodicTaskSpec("lo", cost=1.5, period=12.0, priority=1),
            PeriodicTaskSpec("hi", cost=1.0, period=7.0, priority=2),
        ))
    return system


def _check_sim(policy: str, oracles: bool = False,
               overload: bool = False):
    """Scenario closure: one verified ``simulate_system`` run."""
    def run():
        from ..experiments.campaign import (
            default_overload_config,
            simulate_system,
        )
        from .oracle import admission_oracle, polling_response_oracle

        system = _selftest_system()
        config = default_overload_config() if overload else None
        if overload:
            from ..faults.injectors import EventBurst, FaultPlan

            system = FaultPlan(
                injectors=(EventBurst(
                    extra=5, probability=0.9, spacing=0.02
                ),),
                seed=17,
            ).apply(system)
        result = simulate_system(
            system, policy, overload=config, verify=True
        )
        report = result.report
        if oracles and policy == "polling":
            polling_response_oracle(system, result.trace, report=report)
            admission_oracle(system, result.trace, report=report)
        return report
    return run


def _check_edf():
    """Scenario closure: an EDF run with the ordering monitor attached."""
    from ..sim.engine import Simulation
    from ..workload.spec import PeriodicTaskSpec
    from .invariants import EDFOrderMonitor, NonOverlapMonitor

    specs = (
        PeriodicTaskSpec("long", cost=2.0, period=10.0, priority=1),
        PeriodicTaskSpec("short", cost=2.0, period=5.0, priority=1),
    )
    sim = Simulation(
        EarliestDeadlineFirstPolicy(),
        monitors=[
            NonOverlapMonitor(),
            EDFOrderMonitor({s.name: s.period for s in specs}),
        ],
    )
    for spec in specs:
        sim.add_periodic_task(spec)
    sim.run(until=40.0)
    return sim.trace.finish_monitors(40.0)


#: mutation name -> scenario whose verified run the mutation must break
_SELFTEST_SCENARIOS = {
    "fp-inversion": _check_sim("polling"),
    "edf-inversion": _check_edf,
    "capacity-leak": _check_sim("polling"),
    "over-replenish": _check_sim("deferrable"),
    "lost-release": _check_sim("polling"),
    "breaker-close-bug": _check_sim("polling", overload=True),
    "clock-skew": _check_sim("polling"),
    "polling-skip-activation": _check_sim("polling", oracles=True),
    "double-completion": _check_sim("polling"),
}


class MutationOutcome:
    """One row of the self-test: what the armed mutation provoked."""

    def __init__(self, name: str, expected: set[str], baseline_ok: bool,
                 kinds: set[str]) -> None:
        self.name = name
        self.expected = expected
        self.baseline_ok = baseline_ok
        self.kinds = kinds

    @property
    def caught(self) -> bool:
        return self.baseline_ok and bool(self.kinds & self.expected)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MutationOutcome {self.name} caught={self.caught} "
            f"kinds={sorted(self.kinds)}>"
        )


def run_mutation_selftest() -> list[MutationOutcome]:
    """Prove every monitor family non-vacuous.

    For each registered mutation: the scenario must verify clean on the
    pristine code, and report at least one of the expected violation
    kinds with the mutation armed.  Returns one outcome per mutation;
    callers assert ``all(o.caught for o in outcomes)``.
    """
    outcomes = []
    for name, (factory, expected) in MUTATIONS.items():
        scenario = _SELFTEST_SCENARIOS[name]
        baseline_ok = scenario().ok
        with factory():
            mutated = scenario()
        outcomes.append(MutationOutcome(
            name, set(expected), baseline_ok, set(mutated.kinds())
        ))
    return outcomes
