"""Regenerates Table 2: Polling Server *simulations* (ideal policy).

Six sets x ten systems on RTSS with the literature Polling Server; the
benchmark measures the whole generation+simulation+aggregation pipeline
and prints the AART / AIR / ASR rows beside the paper's values.
"""

from __future__ import annotations

from conftest import run_table_benchmark


def bench_table2_polling_simulations(benchmark):
    measured = run_table_benchmark(benchmark, 2)
    # the ideal policy never interrupts: the paper's AIR row is all zero
    assert all(m.air == 0.0 for m in measured.values())
    # response times grow with density within each std block
    for std in (0.0, 2.0):
        assert (
            measured[(1, std)].aart
            < measured[(2, std)].aart
            < measured[(3, std)].aart
        )
