"""The mutation self-test: every monitor family is non-vacuous."""

from __future__ import annotations

import pytest

from repro.verify.mutations import (
    MUTATIONS,
    mutation,
    run_mutation_selftest,
)


def test_unknown_mutation_rejected():
    with pytest.raises(KeyError, match="unknown mutation"):
        mutation("segfault-on-tuesdays")


def test_registry_covers_every_monitor_family():
    expected_kinds = set()
    for _factory, kinds in MUTATIONS.values():
        expected_kinds |= kinds
    # at least one mutation per family: ordering (FP + EDF), capacity,
    # accounting, breaker, clock, oracle-visible service
    assert {"fp-inversion", "edf-inversion", "capacity-overdraw",
            "over-replenish", "overlap",
            "breaker-close-without-open"} <= expected_kinds


def test_mutations_restore_the_pristine_code():
    from repro.sim.schedulers.fp import FixedPriorityPolicy

    original = FixedPriorityPolicy.select
    with mutation("fp-inversion"):
        assert FixedPriorityPolicy.select is not original
    assert FixedPriorityPolicy.select is original


def test_selftest_catches_every_mutation():
    outcomes = run_mutation_selftest()
    assert len(outcomes) == len(MUTATIONS)
    for outcome in outcomes:
        assert outcome.baseline_ok, (
            f"{outcome.name}: scenario is not clean on pristine code"
        )
        assert outcome.caught, (
            f"{outcome.name}: expected one of {sorted(outcome.expected)}, "
            f"monitors reported {sorted(outcome.kinds)}"
        )
