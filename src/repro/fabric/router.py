"""The shard router: consistent mapping, breakers, idempotent retries.

:class:`ShardRouter` is the fabric's client-facing edge.  Per submitted
request it

1. answers **idempotently** from the fabric-level
   :class:`~repro.service.requests.IdempotencyCache` first — the router
   outlives shard crashes, so a request settled on a shard that has
   since died (and whose own cache died with it) is never re-admitted
   through a sibling after failover;
2. routes by the **consistent** source → shard placement, overridden by
   the supervisor's failover table while a shard is down;
3. gates each shard behind its own :class:`~repro.overload.breaker.
   CircuitBreaker` fed by *unreachability* (a dead shard's connection
   refusals), so a flapping shard is steered around without hammering;
4. returns retryable :data:`~repro.service.requests.Decision.
   REJECT_UNREACHABLE` tickets for dead/breaker-open/browned-out
   targets, which :class:`FabricClient` retries with the shared
   exponential backoff — by then the supervisor has usually failed the
   source over or restored the shard.

On a healthy single-shard fabric every step is side-effect-free beyond
the shard's own ``submit``, which keeps the fabric byte-identical to a
bare :class:`~repro.service.service.AdmissionService`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from ..overload.breaker import CircuitBreaker
from ..service.requests import (
    AdmissionTicket,
    Decision,
    EventRequest,
    IdempotencyCache,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fabric import AdmissionFabric

__all__ = ["ShardRouter", "FabricClient"]


class ShardRouter:
    """Routes one request to one shard — or refuses it, retryably."""

    def __init__(self, fabric: "AdmissionFabric",
                 idempotency_entries: int = 65536) -> None:
        self.fabric = fabric
        self.cache = IdempotencyCache(max_entries=idempotency_entries)
        self._breakers: dict[int, CircuitBreaker] = {}
        if fabric.config.breaker is not None:
            self._breakers = {
                shard.index: CircuitBreaker(
                    fabric.config.breaker,
                    name=f"shard-{shard.index}",
                    trace=fabric.trace,
                )
                for shard in fabric.shards
            }
        #: source -> takeover shard while its home is down; ``None``
        #: means browned out (no sibling had spare bucket capacity)
        self._overrides: dict[str, int | None] = {}
        self.routed = 0
        self.deduplicated = 0
        self.unreachable = 0
        self.failover_routed = 0
        self.browned_out = 0

    # -- routing state (supervisor-driven) ---------------------------------

    def set_override(self, source: str, shard: int | None) -> None:
        """Fail ``source`` over to ``shard`` (``None`` = brown-out)."""
        self._overrides[source] = shard

    def clear_overrides_for(self, home_shard: int) -> list[str]:
        """Drop every override for sources homed on ``home_shard``."""
        placement = self.fabric.placement
        cleared = [
            source for source in self._overrides
            if placement.shard_for(source) == home_shard
        ]
        for source in cleared:
            del self._overrides[source]
        return cleared

    def shard_for(self, source: str) -> int | None:
        """Current target shard for ``source`` (``None`` = browned out)."""
        if source in self._overrides:
            return self._overrides[source]
        return self.fabric.placement.shard_for(source)

    def breaker_for(self, shard: int) -> CircuitBreaker | None:
        return self._breakers.get(shard)

    # -- the client-facing edge --------------------------------------------

    async def submit(
        self, request: EventRequest, *, at: float | None = None
    ) -> AdmissionTicket:
        """One routing + admission attempt, idempotent by request id.

        ``at`` anchors the decision on a caller-chosen stamp, exactly as
        in :meth:`AdmissionService.submit` — the gateway's wall-clock
        front end stamps frames once and routes with that stamp.
        """
        now = at if at is not None else self.fabric.clock.now()
        self.routed += 1
        cached = self.cache.get(request.request_id)
        if cached is not None:
            self.deduplicated += 1
            return replace(cached, duplicate=True)
        target = self.shard_for(request.source)
        if target is None:
            # browned out through the degraded-mode stack: optionals
            # are degraded-shed, the rest wait out the blackout
            self.browned_out += 1
            decision = (
                Decision.REJECT_DEGRADED if request.optional
                else Decision.REJECT_UNREACHABLE
            )
            return AdmissionTicket(
                request.request_id, decision, now,
                detail=f"source {request.source} browned out "
                       "(home shard down, no spare capacity)",
            )
        shard = self.fabric.shards[target]
        breaker = self._breakers.get(target)
        if not shard.alive:
            # connection refused — evidence the breaker counts
            if breaker is not None:
                breaker.record_failure(now)
            self.unreachable += 1
            return AdmissionTicket(
                request.request_id, Decision.REJECT_UNREACHABLE, now,
                detail=f"shard-{target} unreachable (dead)",
            )
        if breaker is not None and not breaker.allow(now):
            self.unreachable += 1
            return AdmissionTicket(
                request.request_id, Decision.REJECT_UNREACHABLE, now,
                detail=f"shard-{target} breaker open",
            )
        if source_failed_over := (request.source in self._overrides):
            self.failover_routed += 1
        ticket = await shard.service.submit(request, at=now)
        if breaker is not None:
            # the shard answered — that is success for *reachability*
            # (an overload rejection is the shard doing its job)
            breaker.record_success(now)
        self.cache.put(ticket)
        if source_failed_over and ticket.admitted:
            self.fabric.note_failover_admit(request.request_id, target)
        return ticket


class FabricClient:
    """A well-behaved fabric client: idempotent retries with backoff.

    Mirrors :class:`~repro.service.service.ServiceClient` exactly —
    same request id on every attempt, same jittered backoff drawn from
    the same seeded stream, sleeping on the fabric's clock — so a
    single-shard fabric replays a plain service storm byte-for-byte.
    """

    def __init__(self, router: ShardRouter, backoff=None, seed: int = 0,
                 max_attempts: int = 4) -> None:
        from ..service.backoff import DEFAULT_BACKOFF
        from ..workload.rng import PortableRandom
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.router = router
        self.backoff = backoff if backoff is not None else DEFAULT_BACKOFF
        self.max_attempts = max_attempts
        self._rng = PortableRandom(seed)
        self.retries = 0

    async def submit(self, request: EventRequest) -> AdmissionTicket:
        attempt = 1
        while True:
            ticket = await self.router.submit(request)
            if not ticket.retryable or attempt >= self.max_attempts:
                return replace(ticket, attempt=attempt)
            self.retries += 1
            delay = self.backoff.delay(attempt, self._rng)
            await self.router.fabric.clock.sleep(delay)
            attempt += 1
