"""The Task Server Framework — the paper's contribution (Sections 3-4).

Six classes extend the (emulated) RTSJ with aperiodic task servers:

* :class:`ServableAsyncEvent` / :class:`ServableAsyncEventHandler` —
  servable events and their server-scheduled handlers;
* :class:`TaskServer` — the abstract server (Schedulable + scheduler of
  handlers);
* :class:`PollingTaskServer` / :class:`DeferrableTaskServer` — the two
  adapted policies;
* :class:`TaskServerParameters` — construction parameters.

Section 7's machinery is here too: the
:class:`~repro.core.queues.InstanceBucketQueue` list-of-lists, the
response-time equations and the on-line admission controllers.
"""

from .events import HandlerRelease, ServableAsyncEvent, ServableAsyncEventHandler
from .parameters import TaskServerParameters
from .queues import BucketPlacement, InstanceBucketQueue, PendingQueue
from .server import TaskServer
from .polling import PollingTaskServer
from .deferrable import DeferrableTaskServer
from .response_time import (
    cape,
    ideal_ps_finish_time,
    ideal_ps_response_time,
    implementation_ps_response_time,
)
from .admission import (
    AdmissionDecision,
    BucketAdmissionController,
    BucketLedger,
    BucketSlot,
    IdealPSAdmissionController,
)

__all__ = [
    "HandlerRelease",
    "ServableAsyncEvent",
    "ServableAsyncEventHandler",
    "TaskServerParameters",
    "BucketPlacement",
    "InstanceBucketQueue",
    "PendingQueue",
    "TaskServer",
    "PollingTaskServer",
    "DeferrableTaskServer",
    "cape",
    "ideal_ps_finish_time",
    "ideal_ps_response_time",
    "implementation_ps_response_time",
    "AdmissionDecision",
    "BucketAdmissionController",
    "BucketLedger",
    "BucketSlot",
    "IdealPSAdmissionController",
]
