"""Unit tests for minimum-interarrival control on servable events."""

from __future__ import annotations

import pytest

from repro.core import (
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServerParameters,
)
from repro.rtsj import OverheadModel, RelativeTime, RTSJVirtualMachine
from conftest import M


def build(mit=None, violation="ignore"):
    vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
    server = PollingTaskServer(
        TaskServerParameters(
            RelativeTime(4, 0), RelativeTime(6, 0), priority=30
        )
    )
    server.attach(vm, 60 * M)
    handler = ServableAsyncEventHandler(RelativeTime(1, 0), server, name="h")
    event = ServableAsyncEvent(
        "e",
        min_interarrival=RelativeTime.from_units(mit) if mit else None,
        mit_violation=violation,
    )
    event.add_servable_handler(handler)
    return vm, server, event


def fire_at(vm, event, times):
    for t in times:
        vm.schedule_timer_event(round(t * M), lambda now, e=event: e.fire())


class TestMITIgnore:
    def test_violating_fires_dropped(self):
        vm, server, event = build(mit=5.0, violation="ignore")
        fire_at(vm, event, [0.0, 2.0, 4.0, 6.0])
        vm.run(30 * M)
        # accepted at 0 (first) and 6 (>= 0+5); 2 and 4 dropped
        assert len(server.releases) == 2
        assert event.ignored_fire_count == 2
        releases = [r.release_ns / M for r in server.releases]
        assert releases == [0.0, 6.0]

    def test_spaced_fires_all_accepted(self):
        vm, server, event = build(mit=2.0, violation="ignore")
        fire_at(vm, event, [0.0, 2.0, 4.5])
        vm.run(30 * M)
        assert len(server.releases) == 3
        assert event.ignored_fire_count == 0


class TestMITDelay:
    def test_violating_fires_deferred(self):
        vm, server, event = build(mit=5.0, violation="delay")
        fire_at(vm, event, [0.0, 1.0])
        vm.run(30 * M)
        releases = [r.release_ns / M for r in server.releases]
        assert releases == [0.0, 5.0]
        assert event.ignored_fire_count == 0

    def test_burst_spreads_at_mit_spacing(self):
        vm, server, event = build(mit=3.0, violation="delay")
        fire_at(vm, event, [0.0, 0.1, 0.2, 0.3])
        vm.run(30 * M)
        releases = [r.release_ns / M for r in server.releases]
        assert releases == [0.0, 3.0, 6.0, 9.0]


class TestMITValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            ServableAsyncEvent("e", min_interarrival=RelativeTime(1, 0),
                               mit_violation="explode")

    def test_bad_mit(self):
        with pytest.raises(ValueError):
            ServableAsyncEvent("e", min_interarrival=RelativeTime(0, 0))

    def test_no_mit_is_passthrough(self):
        vm, server, event = build()
        fire_at(vm, event, [0.0, 0.1, 0.2])
        vm.run(30 * M)
        assert len(server.releases) == 3

    def test_control_requires_attached_server(self):
        event = ServableAsyncEvent(
            "e", min_interarrival=RelativeTime(1, 0)
        )
        with pytest.raises(RuntimeError, match="attached"):
            event.fire()
