"""Graceful shutdown and crash recovery (PR 6 satellite).

Drain must give every in-flight admitted event exactly one terminal
fate — completion or an explicit SHED — never a silent drop.  A killed
service must restore from its JSONL checkpoint with a byte-identical
twin state hash and finish the surviving work cleanly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    AdmissionService,
    Decision,
    EventRequest,
    ServiceConfig,
    TwinConfig,
    VirtualClock,
    replay_ops,
)
from repro.service.checkpoint import CheckpointError, CheckpointLog
from repro.sim.trace import TraceEventKind

CONFIG = ServiceConfig(capacity=2.0, period=2.0, detector=None)


def _req(rid: str, cost: float = 0.8, deadline: float = 40.0,
         **kw) -> EventRequest:
    return EventRequest(request_id=rid, cost=cost,
                        relative_deadline=deadline, **kw)


async def _service(clock: VirtualClock, **kw) -> AdmissionService:
    service = AdmissionService(CONFIG, clock=clock, **kw)
    await service.start()
    return service


class TestDrain:
    def test_every_inflight_event_gets_one_terminal(self):
        async def scenario():
            clock = VirtualClock()
            service = await _service(clock)
            for i in range(6):
                ticket = await service.submit(_req(f"e{i}"))
                assert ticket.admitted
            report = await service.drain()
            assert report.completed == 6 and report.shed == 0
            assert service.planner.backlog == 0

            # exactly one terminal per released id, no silent drops
            events = service.trace.events
            released = {e.subject for e in events
                        if e.kind is TraceEventKind.RELEASE}
            terminals = [e.subject for e in events
                         if e.kind in (TraceEventKind.COMPLETION,
                                       TraceEventKind.SHED)]
            assert sorted(terminals) == sorted(released)
            verification = service.finish()
            assert verification is not None and not verification.violations

        asyncio.run(scenario())

    def test_max_wait_sheds_far_future_work_explicitly(self):
        async def scenario():
            clock = VirtualClock()
            service = await _service(clock)
            near = await service.submit(_req("near", cost=0.5))
            # a queue of work whose settle time exceeds the drain budget
            far_ids = []
            for i in range(8):
                ticket = await service.submit(
                    _req(f"far{i}", cost=1.5, deadline=120.0)
                )
                assert ticket.admitted
                far_ids.append(ticket.request_id)
            report = await service.drain(max_wait=3.0)
            assert report.completed >= 1          # near work finished
            assert report.shed >= 1               # far work explicitly shed
            assert report.completed + report.shed == 9
            events = service.trace.events
            cutoff_sheds = {e.subject for e in events
                            if e.kind is TraceEventKind.SHED
                            and "drain cutoff" in e.detail}
            assert cutoff_sheds                   # the shed is attributed
            terminals = [e.subject for e in events
                         if e.kind in (TraceEventKind.COMPLETION,
                                       TraceEventKind.SHED)]
            assert len(terminals) == 9            # nothing silently dropped
            assert len(set(terminals)) == 9

        asyncio.run(scenario())

    def test_draining_rejects_new_submissions(self):
        async def scenario():
            clock = VirtualClock()
            service = await _service(clock)
            await service.submit(_req("inflight"))
            drain_task = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0)
            late = await service.submit(_req("late"))
            assert late.decision is Decision.REJECT_DRAINING
            assert not late.retryable
            report = await drain_task
            assert report.completed == 1

        asyncio.run(scenario())

    def test_drain_is_idempotent(self):
        async def scenario():
            clock = VirtualClock()
            service = await _service(clock)
            await service.submit(_req("a"))
            first = await service.drain()
            second = await service.drain()
            assert first.completed == 1
            assert second.completed == 0 and second.shed == 0

        asyncio.run(scenario())


class TestDrainHousekeepingRace:
    def test_no_housekeeping_ops_after_the_drain_cutoff(self, tmp_path):
        """The drain/heartbeat race (PR 8 satellite): once ``drain()``
        has written its cutoff op, a housekeeping tick waking during the
        drain advance must not append ``heartbeat_miss`` ops behind it —
        a restore would otherwise replay divergences that post-date the
        shutdown."""
        path = tmp_path / "service.jsonl"
        config = ServiceConfig(
            capacity=2.0, period=2.0, detector=None,
            twin=TwinConfig(heartbeat=1.0),
        )

        async def scenario():
            clock = VirtualClock()
            service = AdmissionService(config, clock=clock,
                                       checkpoint_path=path)
            await service.start()
            # slow work keeps events in flight long past the heartbeat
            # window, so ticks during the drain advance WOULD fire
            # heartbeat-miss divergences without the suppression
            for i in range(4):
                assert (await service.submit(
                    _req(f"slow{i}", cost=1.5, deadline=120.0)
                )).admitted
            beats_before = service.heartbeats
            report = await service.drain()
            assert report.completed + report.shed == 4
            assert service.heartbeats == beats_before  # counter froze
            return service

        asyncio.run(scenario())
        ops = CheckpointLog(path).load()
        drain_index = next(
            i for i, op in enumerate(ops) if op["op"] == "drain"
        )
        tail = [op["op"] for op in ops[drain_index + 1:]]
        assert "heartbeat_miss" not in tail

    def test_draining_housekeeper_exits_promptly(self):
        async def scenario():
            clock = VirtualClock()
            service = await _service(clock)
            await service.submit(_req("a"))
            await service.drain()
            assert service._housekeeper is None
            frozen = service.heartbeats
            await clock.advance(clock.now() + 50.0)
            assert service.heartbeats == frozen

        asyncio.run(scenario())


class TestCheckpointRestart:
    def test_kill_restore_twin_hash_identical(self, tmp_path):
        path = tmp_path / "service.jsonl"

        async def run_and_kill():
            clock = VirtualClock()
            service = AdmissionService(CONFIG, clock=clock,
                                       checkpoint_path=path, seed=7)
            await service.start()
            for i in range(5):
                assert (await service.submit(
                    _req(f"e{i}", deadline=60.0))).admitted
            await clock.advance(1.5)        # some work completes pre-kill
            live_hash = service.twin.state_hash()
            live_counters = dict(service.twin.counters)
            service.kill()
            return live_hash, live_counters

        live_hash, live_counters = asyncio.run(run_and_kill())

        # replaying the log off-line reproduces the twin byte-for-byte
        log = CheckpointLog(path)
        _planner, twin, _header = replay_ops(log.load())
        assert twin.state_hash() == live_hash
        assert dict(twin.counters) == live_counters

        async def restore_and_finish():
            service = await AdmissionService.restore(path)
            assert service.twin.state_hash() == live_hash
            resumed = service.planner.backlog
            report = await service.drain()
            assert report.completed + report.shed == resumed
            verification = service.finish()
            assert verification is not None and not verification.violations

        asyncio.run(restore_and_finish())

    def test_restore_refuses_missing_log(self, tmp_path):
        with pytest.raises(CheckpointError):
            asyncio.run(AdmissionService.restore(tmp_path / "absent.jsonl"))

    def test_fresh_service_refuses_existing_log(self, tmp_path):
        path = tmp_path / "service.jsonl"

        async def first():
            clock = VirtualClock()
            service = AdmissionService(CONFIG, clock=clock,
                                       checkpoint_path=path)
            await service.start()
            await service.submit(_req("a"))
            await service.drain()

        asyncio.run(first())
        with pytest.raises(CheckpointError):
            AdmissionService(CONFIG, checkpoint_path=path)

    def test_duplicate_submit_after_restore_is_idempotent(self, tmp_path):
        path = tmp_path / "service.jsonl"

        async def run_and_kill():
            clock = VirtualClock()
            service = AdmissionService(CONFIG, clock=clock,
                                       checkpoint_path=path)
            await service.start()
            assert (await service.submit(_req("dup", deadline=60.0))).admitted
            service.kill()

        asyncio.run(run_and_kill())

        async def restore_and_resubmit():
            service = await AdmissionService.restore(path)
            again = await service.submit(_req("dup", deadline=60.0))
            # the id is still in flight: no double admission
            assert again.decision is not Decision.ADMIT or again.duplicate
            assert service.planner.backlog == 1
            await service.drain()

        asyncio.run(restore_and_resubmit())
