"""Ablation: the Section 7 anti-interruption safety margin.

The paper's proposed (untested) improvement: "avoid some interruptions
in delaying the execution of events handlers with a cost too close of
the remaining capacity."  This bench runs the heterogeneous execution
sets with increasing margins and shows the trade the paper anticipates:
the interrupted ratio falls monotonically while deferred service shifts
the response-time / served-ratio balance.
"""

from __future__ import annotations

from repro.experiments.campaign import execute_system
from repro.rtsj import RelativeTime
from repro.sim.metrics import aggregate
from repro.workload import GenerationParameters, RandomSystemGenerator

HETERO = GenerationParameters(
    task_density=2.0, average_cost=3.0, std_deviation=2.0,
    server_capacity=4.0, server_period=6.0, nb_generation=10, seed=1983,
)

MARGINS_TU = (0.0, 0.25, 0.5, 1.0)


def sweep_margins():
    systems = RandomSystemGenerator(HETERO).generate()
    rows = {}
    for margin in MARGINS_TU:
        runs = [
            execute_system(
                system, "polling",
                safety_margin=RelativeTime.from_units(margin),
            ).metrics
            for system in systems
        ]
        rows[margin] = aggregate(runs)
    return rows


def bench_ablation_safety_margin(benchmark):
    rows = benchmark(sweep_margins)
    print()
    print(f"{'margin':>8} {'AIR':>6} {'ASR':>6} {'AART':>8}")
    for margin, metrics in rows.items():
        print(
            f"{margin:8.2f} {metrics.air:6.2f} {metrics.asr:6.2f} "
            f"{metrics.aart:8.2f}"
        )
    airs = [rows[m].air for m in MARGINS_TU]
    # the margin can only reduce interruptions
    assert all(b <= a + 1e-9 for a, b in zip(airs, airs[1:]))
    # and a 1 tu margin (the homogeneous sets' natural slack) removes
    # essentially all of them
    assert rows[1.0].air <= rows[0.0].air * 0.5
