"""Gateway-level runtime verification: the ingestion protocol oracle.

:class:`GatewayProtocolMonitor` replays the merged timeline produced by
:meth:`~repro.gateway.gateway.AdmissionGateway.merged_trace` — service
events plus the gateway plane's ``INGEST`` / ``RESPONSE`` /
``CLOCK_PAUSE`` / ``GATEWAY_RESTORED`` events — and enforces the socket
edge's contract:

* **every ingested frame is answered, exactly once** — per request id,
  the number of non-edge ``RESPONSE`` events equals the number of
  ``INGEST`` events by the horizon (a crash may defer the answer to the
  restored incarnation's journal replay, never drop it);
* a non-edge ``RESPONSE`` without a prior ``INGEST`` is a fabrication;
* **edge rejections stay at the edge** — a ``RESPONSE`` tagged ``edge``
  must be a retryable ``reject_busy`` (with the pipeline declared full)
  or a ``reject_draining``; nothing else may bypass the journal;
* an ``admit`` response must be backed by a service ``RELEASE`` for the
  same id (no promised admissions the backend never performed);
* **ingest stamps are monotone** — the dispatcher serializes decisions,
  so out-of-order stamps mean the determinism contract is broken;
* once the gateway announces draining (``MODE_CHANGE`` with subject
  ``gateway``), no *new* admission is ingested — only frames accepted
  before the drain mark may still decide (they carry earlier stamps).
"""

from __future__ import annotations

import re

from ..sim.trace import TraceEvent, TraceEventKind
from .invariants import TraceMonitor

__all__ = ["GatewayProtocolMonitor"]

_EPS = 1e-9
_STAMP = re.compile(r"stamp=([-0-9.e+]+)")
_DEPTH = re.compile(r"depth=(\d+)/(\d+)")


class GatewayProtocolMonitor(TraceMonitor):
    """Every frame answered once; edge rejections honest; stamps monotone."""

    name = "gateway-protocol"

    def __init__(self) -> None:
        super().__init__()
        self._ingests: dict[str, int] = {}
        self._responses: dict[str, int] = {}
        self._first_decision: dict[str, str] = {}
        self._released: set[str] = set()
        self._last_stamp: float | None = None
        self._drained_at: float | None = None

    def on_event(self, index: int, event: TraceEvent) -> None:
        kind = event.kind
        if kind is TraceEventKind.RELEASE:
            self._released.add(event.subject)
        elif kind is TraceEventKind.INGEST:
            self._on_ingest(index, event)
        elif kind is TraceEventKind.RESPONSE:
            self._on_response(index, event)
        elif kind is TraceEventKind.MODE_CHANGE:
            if event.subject == "gateway" and "draining" in event.detail:
                self._drained_at = event.time
        elif kind is TraceEventKind.CLOCK_PAUSE:
            if event.subject != "clock":
                self.report.record(
                    "malformed-clock-pause", event.time, (event.subject,),
                    "CLOCK_PAUSE must be recorded against the clock",
                    witness=(index,),
                )

    def _on_ingest(self, index: int, event: TraceEvent) -> None:
        rid = event.subject
        self._ingests[rid] = self._ingests.get(rid, 0) + 1
        match = _STAMP.search(event.detail)
        if match is None:
            self.report.record(
                "ingest-without-stamp", event.time, (rid,),
                "INGEST carries no stamp= detail — the decision cannot "
                "be anchored for a control replay",
                witness=(index,),
            )
            return
        stamp = float(match.group(1))
        if self._last_stamp is not None and stamp < self._last_stamp - _EPS:
            self.report.record(
                "non-monotone-ingest", event.time, (rid,),
                f"ingest stamp {stamp:g} precedes the previous stamp "
                f"{self._last_stamp:g} — the dispatcher serialization "
                "is broken",
                witness=(index,),
            )
        self._last_stamp = max(
            stamp, self._last_stamp if self._last_stamp is not None else stamp
        )
        if self._drained_at is not None and event.time > self._drained_at:
            self.report.record(
                "ingest-after-drain", event.time, (rid,),
                "a frame was ingested after the gateway announced "
                "draining",
                witness=(index,),
            )

    def _on_response(self, index: int, event: TraceEvent) -> None:
        rid = event.subject
        detail = event.detail
        decision = detail.split()[0] if detail else ""
        if " edge" in detail or detail.endswith("edge"):
            if decision not in ("reject_busy", "reject_draining"):
                self.report.record(
                    "illegal-edge-rejection", event.time, (rid,),
                    f"edge response with decision {decision!r} — only "
                    "busy/draining rejections may bypass the journal",
                    witness=(index,),
                )
            if decision == "reject_busy":
                match = _DEPTH.search(detail)
                if match is None or match.group(1) != match.group(2):
                    self.report.record(
                        "busy-below-bound", event.time, (rid,),
                        "REJECT_BUSY issued without the pipeline "
                        "declared full — backpressure fired early",
                        witness=(index,),
                    )
            return
        self._responses[rid] = self._responses.get(rid, 0) + 1
        self._first_decision.setdefault(rid, decision)
        if self._responses[rid] > self._ingests.get(rid, 0):
            self.report.record(
                "response-without-ingest", event.time, (rid,),
                "more responses than ingested frames for this id",
                witness=(index,),
            )

    def finish(self, horizon: float) -> None:
        for rid, count in self._ingests.items():
            answered = self._responses.get(rid, 0)
            if answered != count:
                self.report.record(
                    "unanswered-ingest", horizon, (rid,),
                    f"{count} frame(s) ingested but {answered} answered "
                    "— a frame was dropped without a decision",
                )
        for rid, decision in self._first_decision.items():
            if decision == "admit" and rid not in self._released:
                self.report.record(
                    "admit-without-release", horizon, (rid,),
                    "the gateway answered admit but the backend never "
                    "released the request",
                )
