"""Integration tests: several servers and richer system compositions.

Nothing in the framework restricts a VM to one task server; these tests
exercise compositions the paper implies but never shows: two servers at
adjacent priorities, a server above generated periodic load, and the
determinism guarantees that make the whole evaluation reproducible.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DeferrableTaskServer,
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServerParameters,
)
from repro.experiments import execute_system, simulate_system
from repro.rtsj import OverheadModel, RelativeTime, RTSJVirtualMachine
from repro.sim.task import JobState
from repro.sim.trace_io import diff_traces
from repro.workload import (
    GenerationParameters,
    RandomSystemGenerator,
    generate_periodic_taskset,
)
from conftest import M

PARAMS = GenerationParameters(
    task_density=2.0, average_cost=2.0, std_deviation=1.0,
    server_capacity=3.0, server_period=6.0, nb_generation=3, seed=99,
)


class TestTwoServers:
    def build(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        hi = DeferrableTaskServer(
            TaskServerParameters(
                RelativeTime(2, 0), RelativeTime(6, 0), priority=35
            ),
            name="DS-hi",
        )
        lo = PollingTaskServer(
            TaskServerParameters(
                RelativeTime(2, 0), RelativeTime(8, 0), priority=30
            ),
            name="PS-lo",
        )
        hi.attach(vm, 60 * M)
        lo.attach(vm, 60 * M)
        return vm, hi, lo

    def fire(self, vm, server, at, cost, name):
        handler = ServableAsyncEventHandler(
            RelativeTime.from_units(cost), server, name=name
        )
        event = ServableAsyncEvent(name)
        event.add_servable_handler(handler)
        vm.schedule_timer_event(round(at * M), lambda now, e=event: e.fire())

    def test_independent_queues_and_budgets(self):
        vm, hi, lo = self.build()
        self.fire(vm, hi, 1.0, 1.5, "urgent")
        self.fire(vm, lo, 1.0, 1.5, "bulk")
        vm.run(60 * M)
        urgent = hi.jobs[0]
        bulk = lo.jobs[0]
        assert urgent.state is JobState.COMPLETED
        assert bulk.state is JobState.COMPLETED
        # the DS serves at arrival; the PS waits for its activation,
        # and the DS (higher priority) would preempt it anyway
        assert urgent.start_time == 1.0
        assert bulk.start_time == 8.0

    def test_high_server_preempts_low_server(self):
        vm, hi, lo = self.build()
        self.fire(vm, lo, 0.0, 1.0, "bulk")    # PS instance at 0 serves it
        self.fire(vm, hi, 0.5, 1.0, "urgent")  # DS preempts mid-service
        trace = vm.run(60 * M)
        urgent = hi.jobs[0]
        bulk = lo.jobs[0]
        assert urgent.start_time == 0.5
        assert urgent.finish_time == 1.5
        # bulk's wall time stretches across the preemption but stays
        # within its Timed budget (capacity 2 vs cost 1): completes
        assert bulk.start_time == 0.0
        assert bulk.finish_time == 2.0
        assert not bulk.interrupted
        trace.validate()

    def test_preemption_counts_against_low_server_budget(self):
        # the PS measures wall time in run(): the DS preemption eats the
        # PS budget, so a budget-exact bulk job gets interrupted — the
        # exact AIR mechanism of the paper's executions.  The AIE lands
        # when the PS is next dispatched (the DS still holds the CPU at
        # the nominal deadline), so the abort is stamped at 2.5.
        vm, hi, lo = self.build()
        self.fire(vm, lo, 0.0, 2.0, "bulk")    # budget = capacity = 2
        self.fire(vm, hi, 0.5, 2.0, "urgent")  # steals 2 tu mid-run
        vm.run(60 * M)
        bulk = lo.jobs[0]
        assert bulk.interrupted
        assert bulk.finish_time == 2.5


class TestArmsConsistency:
    def test_exec_converges_to_sim_without_overheads_homogeneous(self):
        params = GenerationParameters(
            task_density=1.0, average_cost=3.0, std_deviation=0.0,
            server_capacity=3.0, server_period=6.0, nb_generation=5,
            seed=123,
        )
        for system in RandomSystemGenerator(params).generate():
            sim_m = simulate_system(system, "polling").metrics
            exec_m = execute_system(
                system, "polling", overhead=OverheadModel.zero()
            ).metrics
            # costs equal the capacity: no skipping, no resumption edge;
            # the two arms serve the same count
            assert exec_m.released == sim_m.released
            assert exec_m.interrupted == 0
            assert exec_m.served <= sim_m.served  # non-resumability

    def test_execution_is_deterministic(self):
        system = RandomSystemGenerator(PARAMS).generate()[0]
        a = execute_system(system, "deferrable")
        b = execute_system(system, "deferrable")
        assert diff_traces(a.trace, b.trace) == []
        assert a.metrics == b.metrics

    def test_simulation_is_deterministic(self):
        system = RandomSystemGenerator(PARAMS).generate()[0]
        a = simulate_system(system, "deferrable")
        b = simulate_system(system, "deferrable")
        assert diff_traces(a.trace, b.trace) == []

    def test_exec_with_periodic_load_metrics_unchanged(self):
        tasks = tuple(
            generate_periodic_taskset(seed=4, n=3, total_utilization=0.3,
                                      period_range=(10.0, 30.0))
        )
        from dataclasses import replace

        for system in RandomSystemGenerator(PARAMS).generate():
            loaded = replace(system, periodic_tasks=tasks)
            bare_m = execute_system(system, "polling").metrics
            loaded_m = execute_system(loaded, "polling").metrics
            assert bare_m == loaded_m
