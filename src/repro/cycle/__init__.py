"""Hyperperiod cycle detection and state fast-forward.

Public surface of the ``cycle="off"|"detect"|"fastforward"`` knob on
both kernels (see :mod:`repro.cycle.tracker` for the mechanism and its
stand-down rails, :mod:`repro.cycle.monitor` for the trace obligations,
:mod:`repro.cycle.crosscheck` for the full-replay verifier).
"""

from ..analysis.utilization import hyperperiod
from ..sim.engine import CYCLE_MODES
from ..sim.metrics import PeriodicRunSummary, periodic_summary
from .crosscheck import CrossCheckResult, cross_check
from .monitor import CycleConsistencyMonitor, parse_cycle_detail
from .tracker import (
    STAND_DOWNS,
    CycleReport,
    CycleTracker,
    cycle_hyperperiod,
)

__all__ = [
    "CYCLE_MODES",
    "CycleReport",
    "CycleTracker",
    "CycleConsistencyMonitor",
    "parse_cycle_detail",
    "CrossCheckResult",
    "cross_check",
    "cycle_hyperperiod",
    "hyperperiod",
    "PeriodicRunSummary",
    "periodic_summary",
    "STAND_DOWNS",
]
