"""Cost-overrun enforcement policies and fault reporting.

One :class:`EnforcementConfig` drives the three executors that can
detect a job running past its declared cost:

* the RTSS periodic entities (:class:`~repro.sim.engine.PeriodicTaskEntity`),
* the ideal servers (:class:`~repro.sim.servers.base.AperiodicServer`),
* the RTSJ task servers (:class:`~repro.core.server.TaskServer`), where
  it narrows the ``Timed`` budget — mirroring RTSJ cost-overrun
  semantics (``cost`` in ``ReleaseParameters`` plus the overrun
  handler) on the emulated VM.

Policies
--------
``abort-job``
    The overrunning activation is killed at its enforcement budget and
    recorded as aborted (RTSJ: fire the cost-overrun handler and
    deschedule).
``skip-next-release``
    Like ``abort-job``, and the *next* activation of the same source is
    shed on arrival — a recovery breather for the overloaded resource.
``clip-to-budget``
    The activation is cut at its enforcement budget but counted as
    completed: the handler's partial work stands (imprecise-computation
    semantics).
``log-and-continue``
    Nothing is cut; the first instant an activation crosses its
    enforcement budget is recorded as an ``OVERRUN`` trace event.

The enforcement budget of an activation is ``declared cost * (1 +
tolerance)``: a zero tolerance enforces the declaration exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.trace import ExecutionTrace, TraceEventKind

__all__ = [
    "OVERRUN_POLICIES",
    "EnforcementConfig",
    "FaultSummary",
    "summarize_faults",
]

OVERRUN_POLICIES = (
    "abort-job",
    "skip-next-release",
    "clip-to-budget",
    "log-and-continue",
)


@dataclass(frozen=True)
class EnforcementConfig:
    """How an executor reacts to a job exceeding its declared cost."""

    policy: str = "log-and-continue"
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in OVERRUN_POLICIES:
            raise ValueError(
                f"policy must be one of {OVERRUN_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.tolerance < 0:
            raise ValueError(
                f"tolerance must be >= 0, got {self.tolerance}"
            )

    @property
    def cuts_execution(self) -> bool:
        """True when the policy stops the job at its budget."""
        return self.policy != "log-and-continue"

    @property
    def completes_on_cut(self) -> bool:
        """True when a cut job still counts as served."""
        return self.policy == "clip-to-budget"

    @property
    def sheds_next(self) -> bool:
        """True when the next release of an overrunning source is shed."""
        return self.policy == "skip-next-release"

    def budget_for(self, declared_cost: float) -> float:
        """The enforcement budget granted to a declared cost."""
        return declared_cost * (1.0 + self.tolerance)


@dataclass(frozen=True)
class FaultSummary:
    """Per-run fault counts, read off the execution trace."""

    deadline_misses: int
    overruns: int
    interrupts: int
    injected: int
    watchdog_trips: int

    @property
    def total(self) -> int:
        return (
            self.deadline_misses + self.overruns + self.interrupts
            + self.injected + self.watchdog_trips
        )


def summarize_faults(trace: ExecutionTrace) -> FaultSummary:
    """Count the fault-class events of one run's trace."""
    counts = {kind: 0 for kind in TraceEventKind}
    for event in trace.events:
        counts[event.kind] += 1
    return FaultSummary(
        deadline_misses=counts[TraceEventKind.DEADLINE_MISS],
        overruns=counts[TraceEventKind.OVERRUN],
        interrupts=counts[TraceEventKind.INTERRUPT],
        injected=counts[TraceEventKind.FAULT],
        watchdog_trips=counts[TraceEventKind.WATCHDOG],
    )
