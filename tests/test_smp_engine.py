"""The multicore kernel: parallelism, migrations, Dhall, periodicity."""

from __future__ import annotations

import pytest

from repro.sim import FixedPriorityPolicy, Simulation, TraceEventKind
from repro.smp import (
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    MulticoreSimulation,
    PartitionedPolicy,
    partition_tasks,
)
from repro.workload.spec import PeriodicTaskSpec
from conftest import segments_of


def _labelled(trace) -> list[tuple[float, float, str, int | None]]:
    return sorted(
        (round(s.start, 6), round(s.end, 6), s.entity, s.core)
        for s in trace.segments
    )


def _window(trace, t0: float, t1: float, shift: float = 0.0):
    """(start, end, entity, core) tuples inside [t0, t1), shifted back."""
    return sorted(
        (round(s.start - shift, 6), round(s.end - shift, 6), s.entity,
         s.core)
        for s in trace.segments
        if s.start >= t0 - 1e-9 and s.end <= t1 + 1e-9
    )


class TestParallelExecution:
    def test_two_tasks_run_simultaneously_on_two_cores(self):
        sim = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=2, period=5,
                                               priority=9))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=2, period=5,
                                               priority=1))
        trace = sim.run(until=5)
        assert segments_of(trace, "a") == [(0, 2)]
        assert segments_of(trace, "b") == [(0, 2)]
        cores = {s.entity: s.core for s in trace.segments}
        assert sorted(cores.values()) == [0, 1]

    def test_single_core_matches_uniprocessor_kernel(self):
        specs = [
            PeriodicTaskSpec("hi", cost=1, period=3, priority=9),
            PeriodicTaskSpec("lo", cost=4, period=12, priority=1),
        ]
        uni = Simulation(FixedPriorityPolicy())
        smp = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=1)
        for spec in specs:
            uni.add_periodic_task(spec)
            smp.add_periodic_task(spec)
        t_uni = uni.run(until=12)
        t_smp = smp.run(until=12)
        assert [
            (round(s.start, 6), round(s.end, 6), s.entity, s.job)
            for s in t_uni.segments
        ] == [
            (round(s.start, 6), round(s.end, 6), s.entity, s.job)
            for s in t_smp.segments
        ]
        assert all(s.core == 0 for s in t_smp.segments)
        assert smp.migrations == 0

    def test_per_core_nonoverlap_validated(self):
        sim = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=3, period=6,
                                               priority=2))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=3, period=6,
                                               priority=1))
        trace = sim.run(until=12)
        trace.validate()  # would raise on any same-core overlap
        assert trace.cores == [0, 1]


class TestMigration:
    def test_preempted_task_migrates_to_freed_core(self):
        # t=0: H on core 0, L on core 1.  t=1: M releases and preempts L.
        # t=2: H completes and L resumes on core 0 -> one migration 1->0.
        sim = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("H", cost=2, period=20,
                                               priority=9))
        sim.add_periodic_task(PeriodicTaskSpec("M", cost=3, period=20,
                                               priority=5, offset=1))
        sim.add_periodic_task(PeriodicTaskSpec("L", cost=3, period=20,
                                               priority=1))
        trace = sim.run(until=10)
        migrations = trace.events_of(TraceEventKind.MIGRATION)
        assert len(migrations) == 1
        assert sim.migrations == 1
        event = migrations[0]
        assert event.time == pytest.approx(2.0)
        assert event.subject.startswith("L")
        assert event.detail == "1->0"
        # the preemption that caused it is also on the trace
        preemptions = trace.events_of(TraceEventKind.PREEMPTION)
        assert any(e.subject.startswith("L") for e in preemptions)

    def test_partitioned_never_migrates(self):
        core_of = {"a": 0, "b": 1, "c": 1}
        sim = MulticoreSimulation(PartitionedPolicy(core_of, 2), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=2, period=4,
                                               priority=3))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=1, period=4,
                                               priority=2))
        sim.add_periodic_task(PeriodicTaskSpec("c", cost=2, period=8,
                                               priority=1))
        trace = sim.run(until=16)
        assert sim.migrations == 0
        assert trace.events_of(TraceEventKind.MIGRATION) == []
        for segment in trace.segments:
            assert segment.core == core_of[segment.entity]


class TestDhallEffect:
    """Dhall's effect: global EDF fails a set partitioning schedules."""

    LIGHT = [
        PeriodicTaskSpec("l1", cost=0.1, period=1.0, priority=1),
        PeriodicTaskSpec("l2", cost=0.1, period=1.0, priority=1),
    ]
    HEAVY = PeriodicTaskSpec("heavy", cost=1.05, period=1.1, priority=1)

    def test_global_edf_misses_heavy_deadline(self):
        sim = MulticoreSimulation(GlobalEDFPolicy(), n_cores=2)
        for spec in [*self.LIGHT, self.HEAVY]:
            sim.add_periodic_task(spec)
        trace = sim.run(until=2.2)
        misses = trace.events_of(TraceEventKind.DEADLINE_MISS)
        assert misses, "global EDF should exhibit the Dhall effect"
        assert all(e.subject.startswith("heavy") for e in misses)

    def test_partitioned_ff_schedules_the_same_set(self):
        specs = [self.HEAVY, *self.LIGHT]
        partition = partition_tasks(specs, n_cores=2, heuristic="ff")
        # the heavy task gets a core of its own
        assert partition.core_of["heavy"] == 0
        assert partition.core_of["l1"] == partition.core_of["l2"] == 1
        sim = MulticoreSimulation(
            PartitionedPolicy(partition.core_of, 2), n_cores=2
        )
        for spec in specs:
            sim.add_periodic_task(spec)
        trace = sim.run(until=2.2)
        assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []


class TestPeriodicity:
    """Grolleau et al.: a deterministic scheduler over a synchronous
    periodic set repeats its schedule every hyperperiod."""

    @pytest.mark.parametrize("policy_cls", [
        GlobalFixedPriorityPolicy, GlobalEDFPolicy,
    ])
    def test_schedule_repeats_with_hyperperiod(self, policy_cls):
        sim = MulticoreSimulation(policy_cls(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=1, period=4,
                                               priority=3))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=2, period=4,
                                               priority=2))
        sim.add_periodic_task(PeriodicTaskSpec("c", cost=2, period=8,
                                               priority=1))
        hyper = 8.0
        trace = sim.run(until=2 * hyper)
        assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []
        first = _window(trace, 0.0, hyper)
        second = _window(trace, hyper, 2 * hyper, shift=hyper)
        assert first == second
        # and every demanded unit was executed in each window
        demand = 2 * (1 + 2) + 2  # two a/b jobs + one c job per window
        assert sum(e - s for s, e, _, _ in first) == pytest.approx(demand)

    @pytest.mark.parametrize("policy_cls", [
        GlobalFixedPriorityPolicy, GlobalEDFPolicy,
    ])
    def test_offset_set_repeats_past_max_offset(self, policy_cls):
        """The asynchronous extension (Grolleau et al.): with release
        offsets the pattern still repeats every hyperperiod, but only
        from the first hyperperiod boundary at or past the largest
        offset — the windows before it hold the transient."""
        sim = MulticoreSimulation(policy_cls(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=1, period=4,
                                               priority=3, offset=1.0))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=2, period=4,
                                               priority=2, offset=0.5))
        sim.add_periodic_task(PeriodicTaskSpec("c", cost=2, period=8,
                                               priority=1))
        hyper = 8.0  # >= max offset, so the pattern locks from t=8
        trace = sim.run(until=4 * hyper)
        second = _window(trace, hyper, 2 * hyper, shift=hyper)
        third = _window(trace, 2 * hyper, 3 * hyper, shift=2 * hyper)
        fourth = _window(trace, 3 * hyper, 4 * hyper, shift=3 * hyper)
        assert second == third == fourth

    @pytest.mark.parametrize("policy_cls", [
        GlobalFixedPriorityPolicy, GlobalEDFPolicy,
    ])
    def test_cycle_tracker_exploits_the_periodicity(self, policy_cls):
        """The theorem operationalized: ``cycle="fastforward"`` detects
        the repeat at a hyperperiod boundary and skips ahead, with
        per-task metrics bit-identical to the full run."""
        from repro.cycle import cross_check

        def make_sim(cycle):
            sim = MulticoreSimulation(policy_cls(), n_cores=2, cycle=cycle)
            sim.add_periodic_task(PeriodicTaskSpec("a", cost=1, period=4,
                                                   priority=3, offset=1.0))
            sim.add_periodic_task(PeriodicTaskSpec("b", cost=2, period=4,
                                                   priority=2, offset=0.5))
            sim.add_periodic_task(PeriodicTaskSpec("c", cost=2, period=8,
                                                   priority=1))
            return sim

        outcome = cross_check(make_sim, until=50 * 8.0)
        assert outcome.fast_forwarded
        assert outcome.matched, outcome.mismatches
        # the fast-forwarded run also extrapolates migration counts
        fast, full = make_sim("fastforward"), make_sim("off")
        fast.run(until=50 * 8.0)
        full.run(until=50 * 8.0)
        assert fast.migrations == full.migrations


class TestValidation:
    def test_bad_core_count(self):
        with pytest.raises(ValueError, match="n_cores"):
            MulticoreSimulation(GlobalEDFPolicy(), n_cores=0)

    def test_run_twice_rejected(self):
        sim = MulticoreSimulation(GlobalEDFPolicy(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("t", cost=1, period=4,
                                               priority=1))
        sim.run(until=4)
        with pytest.raises(RuntimeError, match="once"):
            sim.run(until=4)

    def test_unpinned_entity_rejected_by_partitioned_policy(self):
        sim = MulticoreSimulation(PartitionedPolicy({}, 2), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("ghost", cost=1, period=4,
                                               priority=1))
        with pytest.raises(KeyError, match="ghost"):
            sim.run(until=4)

    def test_bad_pin_rejected(self):
        with pytest.raises(ValueError, match="pinned to core"):
            PartitionedPolicy({"t": 5}, 2)

    def test_policy_core_count_mismatch(self):
        with pytest.raises(ValueError, match="one policy per core"):
            PartitionedPolicy({}, 2, policies=[FixedPriorityPolicy()])
