"""On-line aperiodic response-time computation (paper Section 7).

Two analyses, both valid only when the server is the highest-priority
task in the system (the paper's standing assumption — otherwise the
analysis cannot be performed on-line at all, cf. Section 2.1):

* :func:`ideal_ps_response_time` — equations (1)-(4): the response time
  of an aperiodic task under the *standard* (resumable) Polling Server,
  computable at the task's arrival instant;
* :func:`implementation_ps_response_time` — equation (5): the response
  time under the paper's non-resumable RTSJ implementation, given the
  ``(Ia, Cpa)`` placement provided in O(1) by the
  :class:`~repro.core.queues.InstanceBucketQueue`.

Times here are plain floats in time units (analysis-level API; the
framework's internal nanosecond variant lives in
:meth:`repro.core.polling.PollingTaskServer.predict_response_time_ns`).
"""

from __future__ import annotations

import math

__all__ = [
    "cape",
    "ideal_ps_response_time",
    "ideal_ps_finish_time",
    "implementation_ps_response_time",
]


def cape(pending: list[tuple[float, float]], deadline: float) -> float:
    """``Cape(t, dk)``: cumulative cost of the pending aperiodic tasks
    with a deadline not after ``deadline`` (deadline-ordered service).

    ``pending`` is a list of ``(cost, absolute_deadline)`` pairs including
    the task under analysis.
    """
    return sum(c for c, d in pending if d <= deadline)


def ideal_ps_finish_time(
    t: float,
    workload: float,
    cs_t: float,
    capacity: float,
    period: float,
    start: float = 0.0,
) -> float:
    """Completion instant of ``workload`` units of aperiodic demand under
    the standard Polling Server, evaluated at time ``t``.

    ``cs_t`` is the server capacity still available in the instance
    active at ``t`` (0 between instances).  Implements equations (1)-(4)
    with the off-by-one at exact capacity multiples fixed: the paper's
    closed form ``(Fk + Gk)Ts + Rk`` yields a zero last-instance residue
    when the residual demand is an exact multiple of the capacity; we use
    ``F = ceil(residual / capacity)`` and a positive residue instead,
    which agrees with the paper everywhere else.
    """
    if workload < 0:
        raise ValueError(f"workload must be >= 0, got {workload}")
    if cs_t < 0 or cs_t > capacity:
        raise ValueError(f"cs_t must be within [0, {capacity}], got {cs_t}")
    if capacity <= 0 or period <= 0 or capacity > period:
        raise ValueError("need 0 < capacity <= period")
    if workload == 0:
        return t
    # index of the first server activation strictly after t
    g = math.floor((t - start) / period) + 1
    # the live capacity is only usable until the next activation refills
    # the budget anyway; clamping makes the closed form exact when
    # cs(t) exceeds the time to the boundary (service then continues
    # seamlessly into the refilled instance)
    cs_usable = min(cs_t, start + g * period - t)
    if workload <= cs_usable:
        # equation (1), first case: served entirely in the current instance
        return t + workload
    residual = workload - cs_usable
    f = math.ceil(residual / capacity)
    last_residue = residual - (f - 1) * capacity
    return start + (g + f - 1) * period + last_residue


def ideal_ps_response_time(
    release: float,
    pending: list[tuple[float, float]],
    cost: float,
    deadline: float,
    cs_t: float,
    capacity: float,
    period: float,
    start: float = 0.0,
) -> float:
    """``Ra`` of equations (1)-(4): the response time of a task released
    at ``release`` with the given ``cost`` and absolute ``deadline``,
    against the ``pending`` aperiodic backlog (``(cost, deadline)`` pairs,
    *excluding* the new task), under deadline-ordered service.
    """
    workload = cape(pending + [(cost, deadline)], deadline)
    finish = ideal_ps_finish_time(
        release, workload, cs_t, capacity, period, start
    )
    return finish - release


def implementation_ps_response_time(
    release: float,
    instance: int,
    cumulative_before: float,
    cost: float,
    period: float,
    start: float = 0.0,
) -> float:
    """Equation (5): ``Ra = (Ia*Ts + Cpa + Ca) - ra``.

    ``instance`` is the absolute index of the server instance that will
    run the handler (``Ia``), ``cumulative_before`` the summed declared
    cost of the handlers scheduled before it in that instance (``Cpa``).
    Both come straight from an
    :class:`~repro.core.queues.InstanceBucketQueue` placement, making the
    computation O(1).
    """
    if instance < 0:
        raise ValueError(f"instance must be >= 0, got {instance}")
    if cumulative_before < 0 or cost <= 0:
        raise ValueError("need cumulative_before >= 0 and cost > 0")
    finish = start + instance * period + cumulative_before + cost
    return finish - release
