"""Streaming invariant monitors over the execution-trace feed.

A :class:`TraceMonitor` watches one run — live, through a
:class:`MonitoredTrace` attached to the kernel, or post-hoc through
:func:`run_monitors` replaying a finished trace — and records structured
:class:`~repro.verify.violations.Violation` records instead of raising.

The monitors exploit a kernel guarantee: executed slices never span an
event instant (the engines bound every slice at the next timed
callback), so the pending set derived from RELEASE/terminal events is
constant inside any recorded slice.  That turns scheduling-legality
checks (fixed-priority, EDF, D-OVER) into interval arithmetic over the
release/terminal windows and the executed segments, no kernel
introspection required.
"""

from __future__ import annotations

import math
import re

from ..sim.trace import (
    CompactTrace,
    ExecutionTrace,
    Segment,
    TraceEvent,
    TraceEventKind,
)
from .violations import VerificationReport

__all__ = [
    "TraceMonitor",
    "MonitoredTrace",
    "MonitoredCompactTrace",
    "run_monitors",
    "NonOverlapMonitor",
    "MonotoneClockMonitor",
    "FixedPriorityMonitor",
    "EDFOrderMonitor",
    "DOverLegalityMonitor",
    "ServerCapacityMonitor",
    "ReleaseAccountingMonitor",
    "BreakerMonitor",
]

_EPS = 1e-9
#: default slack before an interval of illegal behaviour is reported
_TOL = 1e-6

#: event kinds that end a job's pending window
_TERMINAL_KINDS = (
    TraceEventKind.COMPLETION,
    TraceEventKind.ABORT,
    TraceEventKind.SHED,
)

_CAPACITY_RE = re.compile(r"capacity=([-+0-9.eE]+)")
_BREAKER_SHED_RE = re.compile(r"breaker open \((.+)\)")


# -- interval arithmetic -----------------------------------------------------


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of half-open intervals, sorted and coalesced."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end + _EPS:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged

def _clip(intervals: list[tuple[float, float]],
          lo: float, hi: float) -> list[tuple[float, float]]:
    """Intersect a merged interval list with the window [lo, hi)."""
    out = []
    for start, end in intervals:
        s, e = max(start, lo), min(end, hi)
        if e - s > _EPS:
            out.append((s, e))
    return out


def _subtract(intervals: list[tuple[float, float]],
              holes: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Set difference of two merged interval lists."""
    out = []
    for start, end in intervals:
        cursor = start
        for hole_start, hole_end in holes:
            if hole_end <= cursor + _EPS:
                continue
            if hole_start >= end - _EPS:
                break
            if hole_start > cursor + _EPS:
                out.append((cursor, min(hole_start, end)))
            cursor = max(cursor, hole_end)
            if cursor >= end - _EPS:
                break
        if end - cursor > _EPS:
            out.append((cursor, end))
    return out


def _total(intervals: list[tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


# -- monitor protocol --------------------------------------------------------


class TraceMonitor:
    """Base class: bind to a report/trace, then observe the feed.

    ``on_event`` sees every point event as it is recorded (``index`` is
    its position in ``trace.events``, the witness coordinate system);
    ``on_slice`` sees every executed processor slice *before* the trace
    merges it into a contiguous segment; ``finish`` runs once when the
    run ends, with the horizon actually reached.
    """

    name = "monitor"

    def __init__(self) -> None:
        self.report: VerificationReport = VerificationReport()
        self.trace: ExecutionTrace | None = None

    def bind(self, report: VerificationReport, trace: ExecutionTrace) -> None:
        self.report = report
        self.trace = trace

    def on_event(self, index: int, event: TraceEvent) -> None:
        """One point event was recorded."""

    def on_slice(self, start: float, end: float, entity: str,
                 job: str | None, core: int | None) -> None:
        """One processor slice was executed."""

    def finish(self, horizon: float) -> None:
        """The run ended; emit any accumulated verdicts."""


class MonitoredTrace(ExecutionTrace):
    """An :class:`ExecutionTrace` that feeds every record to monitors.

    Drop-in for the kernels' ``trace=`` parameter: with no monitors the
    behaviour (and the stored trace) is identical to the base class, so
    the golden path stays byte-identical when verification is off.
    """

    def __init__(self, monitors: list[TraceMonitor],
                 report: VerificationReport | None = None) -> None:
        super().__init__()
        self.report = report if report is not None else VerificationReport()
        self.monitors = list(monitors)
        for monitor in self.monitors:
            monitor.bind(self.report, self)
        self._finished = False

    def add_event(self, time: float, kind: TraceEventKind, subject: str,
                  detail: str = "") -> None:
        super().add_event(time, kind, subject, detail)
        index = len(self.events) - 1
        event = self.events[index]
        for monitor in self.monitors:
            monitor.on_event(index, event)

    def add_segment(self, start: float, end: float, entity: str,
                    job: str | None = None, core: int | None = None) -> None:
        super().add_segment(start, end, entity, job, core)
        if end - start <= _EPS:
            return  # the base class dropped it; monitors skip it too
        for monitor in self.monitors:
            monitor.on_slice(start, end, entity, job, core)

    def finish_monitors(self, horizon: float) -> VerificationReport:
        """Run every monitor's end-of-run sweep (idempotent).

        Each violation is additionally stamped onto the trace as a
        VIOLATION point event, so the failing window shows up on the
        Gantt renderings."""
        if not self._finished:
            self._finished = True
            for monitor in self.monitors:
                monitor.finish(horizon)
            for violation in self.report.violations:
                ExecutionTrace.add_event(
                    self, max(violation.time, 0.0),
                    TraceEventKind.VIOLATION,
                    violation.entities[0] if violation.entities
                    else violation.kind,
                    str(violation),
                )
        return self.report


class MonitoredCompactTrace(CompactTrace):
    """A :class:`~repro.sim.trace.CompactTrace` that feeds monitors.

    Mirrors :class:`MonitoredTrace` for the columnar trace so the
    ``monitors=`` hook still layers on top of ``trace_mode="compact"``.
    Events handed to the monitors are materialised one at a time (not via
    the ``.events`` view, which would rebuild the whole list per append).
    """

    def __init__(self, monitors: list[TraceMonitor],
                 report: VerificationReport | None = None) -> None:
        super().__init__()
        self.report = report if report is not None else VerificationReport()
        self.monitors = list(monitors)
        for monitor in self.monitors:
            monitor.bind(self.report, self)
        self._finished = False

    def add_event(self, time: float, kind: TraceEventKind, subject: str,
                  detail: str = "") -> None:
        super().add_event(time, kind, subject, detail)
        index = len(self._evt_time) - 1
        event = TraceEvent(time, kind, subject, detail)
        for monitor in self.monitors:
            monitor.on_event(index, event)

    def add_segment(self, start: float, end: float, entity: str,
                    job: str | None = None, core: int | None = None) -> None:
        super().add_segment(start, end, entity, job, core)
        if end - start <= _EPS:
            return  # the base class dropped it; monitors skip it too
        for monitor in self.monitors:
            monitor.on_slice(start, end, entity, job, core)

    def finish_monitors(self, horizon: float) -> VerificationReport:
        """Run every monitor's end-of-run sweep (idempotent)."""
        if not self._finished:
            self._finished = True
            for monitor in self.monitors:
                monitor.finish(horizon)
            for violation in self.report.violations:
                CompactTrace.add_event(
                    self, max(violation.time, 0.0),
                    TraceEventKind.VIOLATION,
                    violation.entities[0] if violation.entities
                    else violation.kind,
                    str(violation),
                )
        return self.report


def run_monitors(trace: ExecutionTrace, monitors: list[TraceMonitor],
                 horizon: float | None = None) -> VerificationReport:
    """Replay a finished trace through monitors, post-hoc.

    The feed is reconstructed in kernel order: a slice is observed when
    it *ends* and events are drained before the slice starting at the
    same instant begins, so at equal timestamps segments (keyed by their
    end) come before events (keyed by their time) — the order a live
    :class:`MonitoredTrace` would have seen.
    """
    report = VerificationReport()
    for monitor in monitors:
        monitor.bind(report, trace)
    feed: list[tuple[float, int, int, object]] = []
    for i, segment in enumerate(trace.segments):
        feed.append((segment.end, 0, i, segment))
    for i, event in enumerate(trace.events):
        feed.append((event.time, 1, i, event))
    for _, _, index, item in sorted(feed, key=lambda entry: entry[:3]):
        if isinstance(item, Segment):
            for monitor in monitors:
                monitor.on_slice(item.start, item.end, item.entity,
                                 item.job, item.core)
        else:
            for monitor in monitors:
                monitor.on_event(index, item)  # type: ignore[arg-type]
    end = horizon if horizon is not None else trace.makespan
    for monitor in monitors:
        monitor.finish(end)
    return report


# -- sanitizer family --------------------------------------------------------


class NonOverlapMonitor(TraceMonitor):
    """Per-core execution exclusivity, as a report instead of an assert.

    Works off the *stored* segments at :meth:`finish`, so it also catches
    corruption introduced below the feed (a skewed ``add_segment``).
    """

    name = "non-overlap"

    def finish(self, horizon: float) -> None:
        assert self.trace is not None
        by_core: dict[int | None, list[Segment]] = {}
        for segment in self.trace.segments:
            by_core.setdefault(segment.core, []).append(segment)
        for segments in by_core.values():
            ordered = sorted(segments, key=lambda s: (s.start, s.end))
            for a, b in zip(ordered, ordered[1:]):
                if b.start < a.end - _TOL:
                    self.report.record(
                        "overlap", b.start, (a.entity, b.entity),
                        f"[{a.start:g},{a.end:g}) overlaps "
                        f"[{b.start:g},{b.end:g}) on core {a.core}",
                    )


class MonotoneClockMonitor(TraceMonitor):
    """Point events must be recorded in non-decreasing time order."""

    name = "monotone-clock"

    def __init__(self, tol: float = _TOL) -> None:
        super().__init__()
        self.tol = tol
        self._last = -math.inf
        self._last_subject = ""

    def on_event(self, index: int, event: TraceEvent) -> None:
        if event.time < self._last - self.tol:
            self.report.record(
                "clock-skew", event.time,
                (self._last_subject, event.subject),
                f"{event.kind.value} at {event.time:g} after an event "
                f"at {self._last:g}", witness=(index,),
            )
        self._last = max(self._last, event.time)
        self._last_subject = event.subject


# -- scheduling-order family -------------------------------------------------


class _PendingTracker(TraceMonitor):
    """Shared bookkeeping: job pending windows and executed intervals.

    ``owner_of(job_name)`` maps a job label to its monitored entity (or
    ``None`` to ignore the job).  Pending windows run from the RELEASE
    event to the first terminal (COMPLETION / ABORT / SHED / a FAULT
    that sheds the release), or to the horizon.
    """

    def __init__(self) -> None:
        super().__init__()
        #: job -> (entity, release time)
        self._release: dict[str, tuple[str, float]] = {}
        #: job -> first terminal time
        self._terminal: dict[str, float] = {}
        #: (entity, job) -> executed slices
        self._executed: dict[tuple[str, str | None], list[tuple[float, float]]] = {}
        #: entity -> executed slices with cores, in feed order
        self._slices: dict[str, list[tuple[float, float, int | None, str | None]]] = {}

    def owner_of(self, job_name: str) -> str | None:
        raise NotImplementedError

    def on_event(self, index: int, event: TraceEvent) -> None:
        owner = self.owner_of(event.subject)
        if owner is None:
            return
        if event.kind is TraceEventKind.RELEASE:
            self._release.setdefault(event.subject, (owner, event.time))
        elif event.kind in _TERMINAL_KINDS or (
            event.kind is TraceEventKind.FAULT and "shed" in event.detail
        ):
            self._terminal.setdefault(event.subject, event.time)

    def on_slice(self, start: float, end: float, entity: str,
                 job: str | None, core: int | None) -> None:
        if job is not None and self.owner_of(job) is not None:
            self._executed.setdefault((entity, job), []).append((start, end))
        self._slices.setdefault(entity, []).append((start, end, core, job))

    def pending_window(self, job_name: str,
                       horizon: float) -> tuple[float, float] | None:
        info = self._release.get(job_name)
        if info is None:
            return None
        release = info[1]
        terminal = self._terminal.get(job_name, horizon)
        if terminal - release <= _EPS:
            return None
        return (release, terminal)

    def executed(self, entity: str,
                 job: str | None = None) -> list[tuple[float, float]]:
        if job is not None:
            return _merge(self._executed.get((entity, job), []))
        return _merge([
            (s, e) for (s, e, _c, _j) in self._slices.get(entity, [])
        ])


class FixedPriorityMonitor(_PendingTracker):
    """No runnable higher-priority task while a lower-priority one runs.

    ``priorities`` maps monitored entity names to fixed priorities
    (larger = more urgent); job labels of the form ``"<entity>#<k>"``
    attach to their entity.  ``core_of`` scopes the check per core
    (partitioned scheduling); without it, on an *m*-core global-FP trace
    a waiting higher-priority entity is illegal on any core (top-*m*
    selection), so one scope covers both kernels.
    """

    name = "fixed-priority"

    def __init__(self, priorities: dict[str, int],
                 core_of: dict[str, int] | None = None,
                 tol: float = _TOL) -> None:
        super().__init__()
        self.priorities = dict(priorities)
        self.core_of = dict(core_of) if core_of is not None else None
        self.tol = tol

    def owner_of(self, job_name: str) -> str | None:
        entity = job_name.split("#", 1)[0]
        return entity if entity in self.priorities else None

    def _in_scope(self, a: str, b: str) -> bool:
        if self.core_of is None:
            return True
        return self.core_of.get(a) == self.core_of.get(b)

    def _waiting(self, entity: str, lo: float, hi: float,
                 horizon: float) -> list[tuple[float, float]]:
        """Sub-intervals of [lo, hi) where ``entity`` had a pending job
        but was not executing anywhere."""
        windows = []
        for job, (owner, _release) in self._release.items():
            if owner != entity:
                continue
            window = self.pending_window(job, horizon)
            if window is not None:
                windows.append(window)
        pending = _clip(_merge(windows), lo, hi)
        if not pending:
            return []
        return _subtract(pending, self.executed(entity))

    def finish(self, horizon: float) -> None:
        reported: set[tuple[str, str]] = set()
        for low, slices in self._slices.items():
            low_priority = self.priorities.get(low)
            if low_priority is None:
                continue
            rivals = [
                name for name, priority in self.priorities.items()
                if priority > low_priority and self._in_scope(name, low)
            ]
            if not rivals:
                continue
            for start, end, _core, _job in slices:
                for high in rivals:
                    if (low, high) in reported:
                        continue
                    starved = self._waiting(high, start, end, horizon)
                    if _total(starved) > self.tol:
                        self.report.record(
                            "fp-inversion", starved[0][0], (low, high),
                            f"{low} (priority {low_priority}) ran "
                            f"[{start:g},{end:g}) while {high} (priority "
                            f"{self.priorities[high]}) waited",
                        )
                        reported.add((low, high))


class EDFOrderMonitor(_PendingTracker):
    """No job executes while an earlier-deadline job waits unserved.

    ``relative_deadlines`` maps monitored entities to their relative
    deadlines; a job ``"<entity>#<k>"`` released at *r* carries absolute
    deadline *r + D*.  The check is job-granular: during a slice
    attributed to job *x*, any monitored job *y* in scope with
    ``deadline(y) < deadline(x) - tol`` that is pending and not
    executing anywhere is a violation (on global EDF, top-*m* selection
    makes this core-independent, like the FP case).
    """

    name = "edf-order"

    def __init__(self, relative_deadlines: dict[str, float],
                 core_of: dict[str, int] | None = None,
                 tol: float = _TOL) -> None:
        super().__init__()
        self.relative_deadlines = dict(relative_deadlines)
        self.core_of = dict(core_of) if core_of is not None else None
        self.tol = tol

    def owner_of(self, job_name: str) -> str | None:
        entity = job_name.split("#", 1)[0]
        return entity if entity in self.relative_deadlines else None

    def _deadline(self, job_name: str) -> float:
        owner, release = self._release[job_name]
        return release + self.relative_deadlines[owner]

    def _in_scope(self, a: str, b: str) -> bool:
        if self.core_of is None:
            return True
        return self.core_of.get(a) == self.core_of.get(b)

    def finish(self, horizon: float) -> None:
        reported: set[tuple[str, str]] = set()
        jobs = list(self._release)
        for entity, slices in self._slices.items():
            for start, end, _core, job in slices:
                if job is None or self.owner_of(job) is None:
                    continue
                own_deadline = self._deadline(job)
                for rival in jobs:
                    if rival == job or (job, rival) in reported:
                        continue
                    rival_owner = self._release[rival][0]
                    if not self._in_scope(rival_owner, entity):
                        continue
                    if self._deadline(rival) >= own_deadline - self.tol:
                        continue
                    window = self.pending_window(rival, horizon)
                    if window is None:
                        continue
                    waiting = _subtract(
                        _clip([window], start, end),
                        self.executed(rival_owner),
                    )
                    if _total(waiting) > self.tol:
                        self.report.record(
                            "edf-inversion", waiting[0][0], (job, rival),
                            f"{job} (d={own_deadline:g}) ran "
                            f"[{start:g},{end:g}) while {rival} "
                            f"(d={self._deadline(rival):g}) waited",
                        )
                        reported.add((job, rival))


class DOverLegalityMonitor(_PendingTracker):
    """Legality of a D-OVER run (Koren & Shasha's firm-deadline MAX).

    ``jobs`` maps job names to ``(release, cost, deadline)``.  Checks:
    no execution outside a job's [release, deadline] window or after its
    terminal, completed jobs received their full demand by the deadline,
    and EDF ordering among pending jobs — with the latest-start-time
    exception: a job dispatched at zero laxity legally outranks earlier
    deadlines, so a slice whose job had laxity ≈ 0 when it started is
    exempt.
    """

    name = "dover-legality"

    def __init__(self, jobs: dict[str, tuple[float, float, float]],
                 tol: float = _TOL) -> None:
        super().__init__()
        self.jobs = dict(jobs)
        self.tol = tol

    def owner_of(self, job_name: str) -> str | None:
        return "dover" if job_name in self.jobs else None

    def _laxity(self, job: str, at: float) -> float:
        release, cost, deadline = self.jobs[job]
        done = _total(_clip(self.executed("dover", job), release, at))
        return deadline - at - (cost - done)

    def finish(self, horizon: float) -> None:
        for job, (release, cost, deadline) in self.jobs.items():
            executed = self.executed("dover", job)
            outside = _subtract(executed, [(release, deadline + self.tol)])
            if _total(outside) > self.tol:
                self.report.record(
                    "dover-window", outside[0][0], (job,),
                    f"executed outside [{release:g},{deadline:g}]",
                )
            terminal = self._terminal.get(job)
            if terminal is not None:
                late = _subtract(executed, [(-math.inf, terminal + self.tol)])
                if _total(late) > self.tol:
                    self.report.record(
                        "exec-after-terminal", late[0][0], (job,),
                        f"executed after terminal at {terminal:g}",
                    )
            completions = (
                self.trace.events_of(TraceEventKind.COMPLETION, job)
                if self.trace is not None else []
            )
            if completions:
                finish_time = completions[0].time
                if finish_time > deadline + self.tol:
                    self.report.record(
                        "late-completion", finish_time, (job,),
                        f"completed at {finish_time:g}, deadline {deadline:g}",
                    )
                if abs(_total(executed) - cost) > self.tol:
                    self.report.record(
                        "demand-mismatch", finish_time, (job,),
                        f"executed {_total(executed):g} of cost {cost:g}",
                    )
        # EDF order with the zero-laxity exception
        reported: set[tuple[str, str]] = set()
        for start, end, _core, job in self._slices.get("dover", []):
            if job not in self.jobs:
                continue
            if self._laxity(job, start) <= self.tol:
                continue  # privileged: dispatched at its latest start time
            deadline = self.jobs[job][2]
            for rival, (_r, _c, rival_deadline) in self.jobs.items():
                if rival == job or (job, rival) in reported:
                    continue
                if rival_deadline >= deadline - self.tol:
                    continue
                window = self.pending_window(rival, horizon)
                if window is None:
                    continue
                waiting = _subtract(
                    _clip([window], start, end),
                    self.executed("dover", rival),
                )
                if _total(waiting) > self.tol:
                    self.report.record(
                        "dover-order", waiting[0][0], (job, rival),
                        f"{job} (d={deadline:g}, positive laxity) ran "
                        f"while {rival} (d={rival_deadline:g}) waited",
                    )
                    reported.add((job, rival))


# -- server-capacity family --------------------------------------------------


class ServerCapacityMonitor(TraceMonitor):
    """Capacity conservation for the budgeted server families.

    Tracks the server's live budget from the trace alone: REPLENISH
    events carry the absolute post-refill capacity, executed slices
    drain it, a Polling Server's idle suspension forfeits it.  Checks,
    per replenishment window:

    * consumption never exceeds the granted budget (``capacity-overdraw``);
    * no refill exceeds the configured capacity (``over-replenish``) —
      suspended while a MODE_CHANGE has rescaled the budget;
    * Polling/Deferrable refills land on period boundaries
      (``replenish-off-boundary``), optional for drifting-clock arms.

    The default tolerance is looser than the other monitors': REPLENISH
    details carry ``%g``-formatted (6 significant digit) capacities, so
    the reconstructed budget is only accurate to ~1e-5 of its magnitude.
    """

    name = "server-capacity"

    _FAMILIES = ("polling", "deferrable", "sporadic")

    def __init__(self, server: str, capacity: float, period: float,
                 family: str, check_boundary: bool = True,
                 tol: float = 1e-4) -> None:
        super().__init__()
        if family not in self._FAMILIES:
            raise ValueError(
                f"family must be one of {self._FAMILIES}, got {family!r}"
            )
        self.server = server
        self.capacity = capacity
        self.period = period
        self.family = family
        self.check_boundary = check_boundary
        self.tol = tol
        # Polling grants nothing until its first activation; Deferrable
        # and Sporadic start with a full (event-less) budget.
        self._cap = 0.0 if family == "polling" else capacity
        self._rescaled = False

    def on_slice(self, start: float, end: float, entity: str,
                 job: str | None, core: int | None) -> None:
        if entity != self.server:
            return
        self._cap -= end - start
        if self._cap < -self.tol:
            self.report.record(
                "capacity-overdraw", end, (self.server,),
                f"consumed {-self._cap:g} beyond the granted budget "
                f"in the window ending at {end:g}",
            )
            self._cap = 0.0  # re-arm so later windows report independently

    def on_event(self, index: int, event: TraceEvent) -> None:
        if event.kind is TraceEventKind.MODE_CHANGE:
            self._rescaled = True
            return
        if event.subject != self.server:
            return
        if event.kind is TraceEventKind.REPLENISH:
            match = _CAPACITY_RE.search(event.detail)
            if match is None:
                return  # ledger-style servers report differently
            granted = float(match.group(1))
            if not self._rescaled and granted > self.capacity + self.tol:
                self.report.record(
                    "over-replenish", event.time, (self.server,),
                    f"refilled to {granted:g}, configured capacity "
                    f"{self.capacity:g}", witness=(index,),
                )
            if (
                self.check_boundary
                and self.family in ("polling", "deferrable")
                and event.time > self.tol
            ):
                phase = event.time / self.period
                if abs(phase - round(phase)) * self.period > self.tol:
                    self.report.record(
                        "replenish-off-boundary", event.time, (self.server,),
                        f"refill at {event.time:g} is not a multiple of "
                        f"the period {self.period:g}", witness=(index,),
                    )
            self._cap = granted
        elif event.kind is TraceEventKind.SERVER_SUSPEND:
            if self.family == "polling":
                self._cap = 0.0  # PS forfeits remaining budget on idle


# -- accounting family -------------------------------------------------------


class ReleaseAccountingMonitor(_PendingTracker):
    """Every release resolves consistently: at most one terminal, no
    execution after it, and — when per-job costs are known and nothing
    legitimately cuts execution — demand conservation.

    ``costs`` maps job names to their true execution demand.  With
    ``strict_serve=True`` a released job with no terminal by the horizon
    is itself a violation (only sound for workloads known to drain).
    """

    name = "release-accounting"

    def __init__(self, costs: dict[str, float] | None = None,
                 check_demand: bool = True, strict_serve: bool = False,
                 tol: float = _TOL) -> None:
        super().__init__()
        self.costs = dict(costs) if costs is not None else {}
        self.check_demand = check_demand
        self.strict_serve = strict_serve
        self.tol = tol
        #: job -> list of terminal (kind, time, event index)
        self._terminals: dict[str, list[tuple[str, float, int]]] = {}
        self._completed: set[str] = set()

    def owner_of(self, job_name: str) -> str | None:
        return job_name.split("#", 1)[0]

    def on_event(self, index: int, event: TraceEvent) -> None:
        super().on_event(index, event)
        if event.kind in _TERMINAL_KINDS or (
            event.kind is TraceEventKind.FAULT and "shed" in event.detail
        ):
            self._terminals.setdefault(event.subject, []).append(
                (event.kind.value, event.time, index)
            )
            if event.kind is TraceEventKind.COMPLETION:
                self._completed.add(event.subject)

    def _job_executed(self, job: str) -> list[tuple[float, float]]:
        merged = []
        for (_entity, owned_job), slices in self._executed.items():
            if owned_job == job:
                merged.extend(slices)
        return _merge(merged)

    def finish(self, horizon: float) -> None:
        for job, terminals in self._terminals.items():
            if len(terminals) > 1:
                kinds = "+".join(kind for kind, _t, _i in terminals)
                self.report.record(
                    "duplicate-terminal", terminals[1][1], (job,),
                    f"{len(terminals)} terminals ({kinds})",
                    witness=tuple(i for _k, _t, i in terminals),
                )
            executed = self._job_executed(job)
            first_terminal = terminals[0][1]
            late = _subtract(
                executed, [(-math.inf, first_terminal + self.tol)]
            )
            if _total(late) > self.tol:
                self.report.record(
                    "exec-after-terminal", late[0][0], (job,),
                    f"executed after the terminal at {first_terminal:g}",
                )
        for job in set(self._release) | set(self.costs):
            if job not in self.costs or not self.check_demand:
                continue
            cost = self.costs[job]
            executed = _total(self._job_executed(job))
            if executed > cost + self.tol:
                self.report.record(
                    "over-execution", horizon, (job,),
                    f"executed {executed:g} of demand {cost:g}",
                )
            elif job in self._completed and executed < cost - self.tol:
                self.report.record(
                    "under-service", horizon, (job,),
                    f"completed after {executed:g} of demand {cost:g}",
                )
        if self.strict_serve:
            for job in self._release:
                if job not in self._terminals:
                    self.report.record(
                        "unserved-release", horizon, (job,),
                        "released but neither served nor shed by the horizon",
                    )


# -- overload family ---------------------------------------------------------


class BreakerMonitor(TraceMonitor):
    """Circuit-breaker state-machine legality, from the trace alone.

    A BREAKER_CLOSE is only legal after a BREAKER_OPEN (consecutive
    opens are fine: a failed half-open probe re-opens), and a SHED
    attributed to an open breaker is only legal while that breaker has
    actually tripped.
    """

    name = "breaker"

    def __init__(self) -> None:
        super().__init__()
        self._state: dict[str, str] = {}

    def on_event(self, index: int, event: TraceEvent) -> None:
        if event.kind is TraceEventKind.BREAKER_OPEN:
            self._state[event.subject] = "open"
        elif event.kind is TraceEventKind.BREAKER_CLOSE:
            if self._state.get(event.subject, "closed") != "open":
                self.report.record(
                    "breaker-close-without-open", event.time,
                    (event.subject,),
                    "BREAKER_CLOSE while the breaker was never open",
                    witness=(index,),
                )
            self._state[event.subject] = "closed"
        elif event.kind is TraceEventKind.SHED:
            match = _BREAKER_SHED_RE.search(event.detail)
            if match is None:
                return
            breaker = match.group(1)
            if self._state.get(breaker, "closed") != "open":
                self.report.record(
                    "shed-while-closed", event.time,
                    (event.subject, breaker),
                    f"shed blamed on breaker {breaker!r}, which is closed",
                    witness=(index,),
                )
