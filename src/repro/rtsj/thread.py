"""Realtime threads for the emulated VM.

A :class:`RealtimeThread` wraps a *logic* callable returning a generator
of VM instructions (see :mod:`repro.rtsj.instructions`).  The VM drives
the generator; scheduling state lives here.

The RTSJ priority range is modelled after the usual JVM mapping: 28
real-time priorities from :data:`MIN_RT_PRIORITY` (11) to
:data:`MAX_RT_PRIORITY` (38).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, TYPE_CHECKING

from .instructions import Compute, Instruction, WaitForNextPeriod
from .params import (
    PeriodicParameters,
    PriorityParameters,
    ProcessingGroupParameters,
    ReleaseParameters,
    SchedulingParameters,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .vm import RTSJVirtualMachine

__all__ = [
    "MIN_RT_PRIORITY",
    "MAX_RT_PRIORITY",
    "ThreadState",
    "Schedulable",
    "RealtimeThread",
]

MIN_RT_PRIORITY = 11
MAX_RT_PRIORITY = 38

ThreadLogic = Callable[["RealtimeThread"], Generator[Instruction, Any, Any]]


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    BLOCKED = "blocked"
    TERMINATED = "terminated"


class Schedulable:
    """Base for objects the scheduler can dispatch (RTSJ ``Schedulable``)."""

    def __init__(
        self,
        scheduling: SchedulingParameters | None = None,
        release: ReleaseParameters | None = None,
        pgp: ProcessingGroupParameters | None = None,
    ) -> None:
        self.scheduling = scheduling
        self.release = release
        self.pgp = pgp

    @property
    def priority(self) -> int:
        if isinstance(self.scheduling, PriorityParameters):
            return self.scheduling.priority
        return MIN_RT_PRIORITY


class RealtimeThread(Schedulable):
    """A schedulable thread of control on the emulated VM.

    ``logic`` receives the thread itself (giving access to ``thread.vm``
    for clock reads and event firing) and yields VM instructions.
    Periodic threads (``release`` is :class:`PeriodicParameters`) may
    yield :class:`WaitForNextPeriod`, mirroring
    ``RealtimeThread.waitForNextPeriod()``.
    """

    def __init__(
        self,
        logic: ThreadLogic,
        scheduling: SchedulingParameters | None = None,
        release: ReleaseParameters | None = None,
        pgp: ProcessingGroupParameters | None = None,
        name: str = "rt-thread",
    ) -> None:
        super().__init__(scheduling, release, pgp)
        self.logic = logic
        self.name = name
        self.state = ThreadState.NEW
        self.vm: "RTSJVirtualMachine | None" = None
        self._generator: Generator[Instruction, Any, Any] | None = None
        self._instruction: Instruction | None = None
        #: absolute time of the next periodic release (periodic threads)
        self.next_release_ns: int = 0
        #: banked firings not yet consumed by ``AwaitRelease``
        self.pending_releases: int = 0
        #: label shown in trace segments while a handler runs (optional)
        self.activity_label: str | None = None

    # -- lifecycle driven by the VM ------------------------------------------

    def start(self, vm: "RTSJVirtualMachine") -> None:
        """Register with a VM; the thread becomes ready at its start time
        (periodic threads) or immediately."""
        if self.state is not ThreadState.NEW:
            raise RuntimeError(f"thread {self.name!r} already started")
        self.vm = vm
        self._generator = self.logic(self)
        if isinstance(self.release, PeriodicParameters):
            self.next_release_ns = self.release.start.total_nanos
            start_at = self.next_release_ns
        else:
            start_at = vm.now_ns
        self.state = ThreadState.BLOCKED
        vm.schedule_thread_start(self, start_at)

    @property
    def instruction(self) -> Instruction | None:
        """The instruction currently being executed (a Compute when the
        thread holds or competes for the processor)."""
        return self._instruction

    def set_resume_marker(self) -> None:
        """Park the thread on a zero-length compute so the VM dispatches
        it before resuming its generator (used at release/wake time)."""
        self._instruction = Compute(0)

    def ready(self) -> bool:
        return self.state is ThreadState.READY

    def advance(self, *, value: Any = None,
                exc: BaseException | None = None) -> Instruction | None:
        """Resume the generator (zero virtual time) and stash the next
        instruction; returns ``None`` when the logic finished."""
        assert self._generator is not None, "thread not started"
        try:
            if exc is not None:
                instr = self._generator.throw(exc)
            else:
                instr = self._generator.send(value)
        except StopIteration:
            self._instruction = None
            self.state = ThreadState.TERMINATED
            return None
        if not isinstance(instr, Instruction):
            raise TypeError(
                f"thread {self.name!r} yielded {instr!r}, not an Instruction"
            )
        self._instruction = instr
        return instr

    # -- convenience for logic code ----------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current virtual time (logic-side convenience)."""
        assert self.vm is not None
        return self.vm.now_ns

    def compute_until_next_period(self) -> Instruction:
        """Helper building a WaitForNextPeriod instruction."""
        return WaitForNextPeriod()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RealtimeThread {self.name} prio={self.priority} {self.state.value}>"


def burn(duration_ns: int) -> Generator[Instruction, Any, None]:
    """Tiny logic helper: a generator that computes for ``duration_ns``."""
    if duration_ns > 0:
        yield Compute(duration_ns)
