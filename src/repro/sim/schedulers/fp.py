"""Preemptive fixed-priority scheduling (the paper's base assumption).

Larger ``priority`` integers denote more urgent entities.  Among equal
priorities the entity registered first wins and a running entity is never
displaced by an equal-priority competitor (FIFO-within-priority, the
behaviour mandated for the RTSJ ``PriorityScheduler``).
"""

from __future__ import annotations

from ..engine import Entity, SchedulingPolicy

__all__ = ["FixedPriorityPolicy"]


class FixedPriorityPolicy(SchedulingPolicy):
    """Preemptive fixed priority, FIFO within a priority level."""

    name = "fixed-priority"

    def select(self, now: float, ready: list[Entity]) -> Entity | None:
        if not ready:
            return None
        best = ready[0]
        for entity in ready[1:]:
            if entity.priority > best.priority:
                best = entity
        return best

    def preempts(self, candidate: Entity, running: Entity, now: float) -> bool:
        return candidate.priority > running.priority


# canonical hooks, stashed so the kernel's ready index can tell when
# select()/preempts() have been replaced (tests, instrumentation) and
# fall back to calling them instead of reproducing their semantics
FixedPriorityPolicy._exact_select = FixedPriorityPolicy.select  # type: ignore[attr-defined]
FixedPriorityPolicy._exact_preempts = FixedPriorityPolicy.preempts  # type: ignore[attr-defined]
