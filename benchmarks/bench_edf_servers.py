"""EDF-side server landscape: TBS bandwidth sweep.

RTSS supports EDF scheduling (paper Section 5); the Total Bandwidth
Server is the matching aperiodic server (the deadline-environment family
of the paper's citation [5]).  This bench sweeps the reserved bandwidth
and shows the latency/deadline trade it buys on the paper's workload
model, with periodic EDF load underneath.
"""

from __future__ import annotations

from repro.sim import (
    AperiodicJob,
    EarliestDeadlineFirstPolicy,
    Simulation,
    TotalBandwidthServer,
    TraceEventKind,
    aggregate,
    measure_run,
)
from repro.workload import GenerationParameters, RandomSystemGenerator
from repro.workload.spec import PeriodicTaskSpec

PARAMS = GenerationParameters(
    task_density=1.0, average_cost=1.0, std_deviation=0.3,
    server_capacity=2.0, server_period=6.0, nb_generation=8, seed=1983,
)

#: periodic EDF load of 0.5
PERIODIC = [
    PeriodicTaskSpec("ctrl", cost=2.0, period=8.0, priority=1),
    PeriodicTaskSpec("io", cost=3.0, period=12.0, priority=1),
]

BANDWIDTHS = (0.1, 0.2, 0.35, 0.5)


def sweep():
    systems = RandomSystemGenerator(PARAMS).generate()
    rows = {}
    for us in BANDWIDTHS:
        runs = []
        misses = 0
        for system in systems:
            sim = Simulation(EarliestDeadlineFirstPolicy())
            tbs = TotalBandwidthServer(utilization=us)
            tbs.attach(sim, horizon=system.horizon)
            for task in PERIODIC:
                sim.add_periodic_task(task)
            jobs = []
            for event in system.events:
                job = AperiodicJob(
                    f"h{event.event_id}", release=event.release,
                    cost=event.cost,
                )
                jobs.append(job)
                sim.submit_aperiodic(job, tbs.submit)
            trace = sim.run(until=system.horizon)
            misses += len(trace.events_of(TraceEventKind.DEADLINE_MISS))
            runs.append(measure_run(jobs))
        rows[us] = (aggregate(runs), misses)
    return rows


def bench_edf_tbs_bandwidth_sweep(benchmark):
    rows = benchmark(sweep)
    print()
    print(f"{'Us':>6} {'AART':>8} {'ASR':>6} {'periodic misses':>16}")
    for us, (metrics, misses) in rows.items():
        print(f"{us:6.2f} {metrics.aart:8.2f} {metrics.asr:6.2f} {misses:16d}")
    aarts = [rows[us][0].aart for us in BANDWIDTHS]
    # more reserved bandwidth -> tighter TBS deadlines -> faster service
    assert all(b <= a + 1e-9 for a, b in zip(aarts, aarts[1:]))
    # and the periodic tasks stay safe while U_periodic + Us <= 1
    assert all(misses == 0 for _, misses in rows.values())
