"""Execution traces: the temporal diagrams RTSS displays.

A trace is a list of processor *segments* (who ran, from when to when)
plus a list of point *events* (releases, completions, interruptions,
capacity replenishments...).  Both the simulator arm and the emulated-RTSJ
execution arm emit this format, so the Gantt renderer and the metrics
module work identically on either.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "TraceEventKind",
    "TraceEvent",
    "Segment",
    "ExecutionTrace",
    "CompactTrace",
]

_EPS = 1e-9


class TraceEventKind(enum.Enum):
    """Point events recorded on the timeline."""

    RELEASE = "release"
    START = "start"
    COMPLETION = "completion"
    PREEMPTION = "preemption"
    RESUME = "resume"
    DEADLINE_MISS = "deadline_miss"
    INTERRUPT = "interrupt"          # Timed budget overrun (exec arm)
    ABORT = "abort"                  # D-OVER abandonment
    REPLENISH = "replenish"          # server capacity refill
    CAPACITY_EXHAUSTED = "capacity_exhausted"
    SERVER_SUSPEND = "server_suspend"
    TIMER_FIRE = "timer_fire"
    OVERHEAD = "overhead"            # runtime overhead charged (exec arm)
    OVERRUN = "overrun"              # cost-overrun enforcement fired
    FAULT = "fault"                  # injected fault (drop, burst, delay)
    WATCHDOG = "watchdog"            # deadline-miss watchdog tripped
    MIGRATION = "migration"          # entity moved between cores (SMP)
    SHED = "shed"                    # overload: a release was shed
    BREAKER_OPEN = "breaker_open"    # circuit breaker tripped open
    BREAKER_CLOSE = "breaker_close"  # circuit breaker recovered (closed)
    MODE_CHANGE = "mode_change"      # overload detector switched modes
    VIOLATION = "violation"          # a verification monitor fired
    RECONCILE = "reconcile"          # twin matched an actual execution event
    DIVERGENCE = "divergence"        # twin/actual divergence detected
    REPLAN = "replan"                # the service repaired its schedule
    SHARD_DOWN = "shard_down"        # supervisor declared a shard dead
    SHARD_RESTORED = "shard_restored"  # shard restored from checkpoint
    FAILOVER = "failover"            # a source rerouted to a sibling shard
    INGEST = "ingest"                # gateway accepted a frame off the wire
    RESPONSE = "response"            # gateway wrote a decision frame back
    CLOCK_PAUSE = "clock_pause"      # wall-clock stall/blackout detected
    GATEWAY_RESTORED = "gateway_restored"  # gateway replayed its journal
    CYCLE = "cycle"                  # hyperperiod cycle detected (repro.cycle)


@dataclass(frozen=True)
class TraceEvent:
    """One point event: (time, kind, subject, free-form detail)."""

    time: float
    kind: TraceEventKind
    subject: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.time < -_EPS:
            raise ValueError(f"event time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class Segment:
    """A half-open processor interval [start, end) executed by ``entity``.

    ``job`` identifies the particular activation when relevant (e.g. which
    aperiodic handler the server was running during the interval).
    ``core`` is the processor that executed the interval; ``None`` (the
    default, and the only value the uniprocessor kernel emits) means "the
    single processor", so single-core traces are unchanged by the SMP
    extension.
    """

    start: float
    end: float
    entity: str
    job: str | None = None
    core: int | None = None

    def __post_init__(self) -> None:
        if self.end < self.start - _EPS:
            raise ValueError(f"segment ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Accumulates segments and events during a run."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []
        self.events: list[TraceEvent] = []

    def add_segment(self, start: float, end: float, entity: str,
                    job: str | None = None, core: int | None = None) -> None:
        """Record a processor interval; zero-length intervals are dropped,
        and an interval contiguous with the previous one for the same
        entity/job/core is merged into it."""
        if end - start <= _EPS:
            return
        for offset in range(len(self.segments), 0, -1):
            last = self.segments[offset - 1]
            if last.core != core:
                # SMP interleaves cores: look past other cores' segments,
                # but only while they overlap the merge candidate
                if core is not None and last.end >= start - _EPS:
                    continue
                break
            if (
                last.entity == entity
                and last.job == job
                and abs(last.end - start) <= _EPS
            ):
                self.segments[offset - 1] = Segment(
                    last.start, end, entity, job, core
                )
                return
            break
        self.segments.append(Segment(start, end, entity, job, core))

    def add_event(self, time: float, kind: TraceEventKind, subject: str,
                  detail: str = "") -> None:
        """Record a point event."""
        self.events.append(TraceEvent(time, kind, subject, detail))

    # -- queries -----------------------------------------------------------

    def segments_of(self, entity: str) -> list[Segment]:
        """All segments executed by ``entity``, in time order."""
        return [s for s in self.segments if s.entity == entity]

    def segments_of_job(self, job: str) -> list[Segment]:
        """All segments attributed to a particular job."""
        return [s for s in self.segments if s.job == job]

    def events_of(self, kind: TraceEventKind,
                  subject: str | None = None) -> list[TraceEvent]:
        """All events of ``kind`` (optionally filtered by subject)."""
        return [
            e for e in self.events
            if e.kind is kind and (subject is None or e.subject == subject)
        ]

    def busy_time(self, entity: str | None = None) -> float:
        """Total processor time consumed (by one entity, or overall)."""
        return sum(
            s.duration for s in self.segments
            if entity is None or s.entity == entity
        )

    @property
    def makespan(self) -> float:
        """Latest time touched by any segment or event."""
        seg_end = max((s.end for s in self.segments), default=0.0)
        evt_end = max((e.time for e in self.events), default=0.0)
        return max(seg_end, evt_end)

    def validate(self) -> None:
        """Check the processor invariant: segments never overlap per core.

        Segments with ``core=None`` all share the single processor; on a
        multicore trace the invariant holds independently on every core.
        """
        by_core: dict[int | None, list[Segment]] = {}
        for segment in self.segments:
            by_core.setdefault(segment.core, []).append(segment)
        for segments in by_core.values():
            ordered = sorted(segments, key=lambda s: (s.start, s.end))
            for a, b in zip(ordered, ordered[1:]):
                if b.start < a.end - _EPS:
                    raise AssertionError(f"overlapping segments: {a} / {b}")

    @property
    def cores(self) -> list[int]:
        """Distinct core ids touched by segments (empty when uniprocessor)."""
        return sorted({s.core for s in self.segments if s.core is not None})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ExecutionTrace {len(self.segments)} segments, "
            f"{len(self.events)} events, makespan={self.makespan:.3f}>"
        )


class CompactTrace(ExecutionTrace):
    """Columnar :class:`ExecutionTrace` for high-volume campaign runs.

    Records are stored as parallel arrays (one list per field) with
    subject/entity/job strings interned per-trace, so the recording hot
    path appends plain floats and shared string references instead of
    constructing a frozen dataclass per record.  The full
    :class:`ExecutionTrace` query API is preserved: ``.segments`` and
    ``.events`` are materialised on demand (and cached until the next
    mutation), so anything written against the object trace — renderers,
    metrics, monitors replays — works unchanged.

    Selected with ``trace_mode="compact"`` on the kernels and the
    campaign entry points; the recorded *content* is identical to the
    object trace (same merge rule, same validation), only the in-memory
    representation differs.
    """

    def __init__(self) -> None:
        # deliberately no super().__init__(): ``segments``/``events`` are
        # class-level properties materialising from the columns below
        self._seg_start: list[float] = []
        self._seg_end: list[float] = []
        self._seg_entity: list[str] = []
        self._seg_job: list[str | None] = []
        self._seg_core: list[int | None] = []
        self._evt_time: list[float] = []
        self._evt_kind: list[TraceEventKind] = []
        self._evt_subject: list[str] = []
        self._evt_detail: list[str] = []
        self._intern: dict[str, str] = {}
        self._seg_cache: list[Segment] | None = None
        self._evt_cache: list[TraceEvent] | None = None

    def _interned(self, text: str) -> str:
        return self._intern.setdefault(text, text)

    def add_segment(self, start: float, end: float, entity: str,
                    job: str | None = None, core: int | None = None) -> None:
        if end - start <= _EPS:
            return
        ends = self._seg_end
        cores = self._seg_core
        if core is None:
            # uniprocessor: only the last segment can merge (the general
            # scan below would break after one step anyway)
            i = len(ends) - 1
            if (
                i >= 0
                and cores[i] is None
                and self._seg_entity[i] == entity
                and self._seg_job[i] == job
                and -_EPS <= ends[i] - start <= _EPS
            ):
                ends[i] = end
                self._seg_cache = None
                return
        else:
            # same backwards merge scan as the object trace, on the columns
            for offset in range(len(ends), 0, -1):
                i = offset - 1
                if cores[i] != core:
                    if ends[i] >= start - _EPS:
                        continue
                    break
                if (
                    self._seg_entity[i] == entity
                    and self._seg_job[i] == job
                    and abs(ends[i] - start) <= _EPS
                ):
                    ends[i] = end
                    self._seg_cache = None
                    return
                break
        table = self._intern
        self._seg_start.append(start)
        ends.append(end)
        self._seg_entity.append(table.setdefault(entity, entity))
        self._seg_job.append(
            None if job is None else table.setdefault(job, job)
        )
        cores.append(core)

    def add_event(self, time: float, kind: TraceEventKind, subject: str,
                  detail: str = "") -> None:
        if time < -_EPS:
            # same contract the TraceEvent constructor enforces
            raise ValueError(f"event time must be >= 0, got {time}")
        table = self._intern
        self._evt_time.append(time)
        self._evt_kind.append(kind)
        self._evt_subject.append(table.setdefault(subject, subject))
        self._evt_detail.append(
            detail if not detail else table.setdefault(detail, detail)
        )

    # -- materialised views -------------------------------------------------

    @property
    def segments(self) -> list[Segment]:  # type: ignore[override]
        # appends are caught by the length check; in-place merges (which
        # keep the length) explicitly clear the cache
        cache = self._seg_cache
        if cache is None or len(cache) != len(self._seg_start):
            cache = [
                Segment(
                    self._seg_start[i], self._seg_end[i],
                    self._seg_entity[i], self._seg_job[i], self._seg_core[i],
                )
                for i in range(len(self._seg_start))
            ]
            self._seg_cache = cache
        return cache

    @property
    def events(self) -> list[TraceEvent]:  # type: ignore[override]
        # events are append-only, so a same-length cache is always valid
        cache = self._evt_cache
        if cache is None or len(cache) != len(self._evt_time):
            cache = [
                TraceEvent(
                    self._evt_time[i], self._evt_kind[i],
                    self._evt_subject[i], self._evt_detail[i],
                )
                for i in range(len(self._evt_time))
            ]
            self._evt_cache = cache
        return cache

    # -- columnar fast paths for the common aggregations --------------------

    def busy_time(self, entity: str | None = None) -> float:
        starts, ends = self._seg_start, self._seg_end
        if entity is None:
            return sum(ends) - sum(starts)
        names = self._seg_entity
        return sum(
            ends[i] - starts[i]
            for i in range(len(starts)) if names[i] == entity
        )

    @property
    def makespan(self) -> float:
        seg_end = max(self._seg_end, default=0.0)
        evt_end = max(self._evt_time, default=0.0)
        return max(seg_end, evt_end)

    def validate(self) -> None:
        by_core: dict[int | None, list[int]] = {}
        for i, core in enumerate(self._seg_core):
            by_core.setdefault(core, []).append(i)
        starts, ends = self._seg_start, self._seg_end
        for indices in by_core.values():
            indices.sort(key=lambda i: (starts[i], ends[i]))
            for a, b in zip(indices, indices[1:]):
                if starts[b] < ends[a] - _EPS:
                    materialised = self.segments
                    raise AssertionError(
                        "overlapping segments: "
                        f"{materialised[a]} / {materialised[b]}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CompactTrace {len(self._seg_start)} segments, "
            f"{len(self._evt_time)} events, makespan={self.makespan:.3f}>"
        )
