"""Regeneration of the paper's Figures 2-4 (scenario temporal diagrams).

Renders each scenario's execution trace as the ASCII chart RTSS would
display and, optionally, as a standalone SVG file.  The expected segment
timelines (the paper's diagrams, read off the figures) are embedded so
tests and the runner can assert the reproduction is exact.
"""

from __future__ import annotations

from pathlib import Path

from ..sim.gantt import ascii_capacity, ascii_gantt, svg_gantt
from ..sim.trace import ExecutionTrace
from .scenarios import SCENARIOS, ScenarioOutcome, ScenarioSpec, run_scenario_execution

__all__ = [
    "EXPECTED_TIMELINES",
    "figure_text",
    "render_figure",
    "render_all_figures",
    "timeline_of",
]

#: expected [start, end) processor segments per entity, read off the
#: paper's Figures 2-4 (exec arm, zero overheads, horizon 18)
EXPECTED_TIMELINES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "scenario1": {
        "PS": [(0, 2), (6, 8)],
        "t1": [(2, 4), (8, 10), (12, 14)],
        "t2": [(4, 5), (10, 11), (14, 15)],
    },
    "scenario2": {
        "PS": [(6, 8), (12, 14)],
        "t1": [(0, 2), (8, 10), (14, 16)],
        "t2": [(2, 3), (10, 11), (16, 17)],
    },
    "scenario3": {
        # h1 runs 6-8; h2 starts at 8 (declared cost 1 fits the remaining
        # capacity) and is interrupted at 9 (two segments: one per handler)
        "PS": [(6, 8), (8, 9)],
        "t1": [(0, 2), (9, 11), (12, 14)],
        "t2": [(2, 3), (11, 12), (14, 15)],
    },
}


def timeline_of(trace: ExecutionTrace, entity: str) -> list[tuple[float, float]]:
    """The [start, end) segments of one entity, merged and rounded to
    three decimals for comparison against the expected diagrams."""
    return [
        (round(s.start, 3), round(s.end, 3))
        for s in trace.segments_of(entity)
    ]


def figure_text(spec: ScenarioSpec, outcome: ScenarioOutcome) -> str:
    """One figure as text: title, ASCII diagram, handler fates."""
    lines = [
        f"Figure {spec.figure}. {spec.name}: e1 fired at {spec.e1_fire:g}, "
        f"e2 at {spec.e2_fire:g}"
        + (
            f" (h2 declared {spec.h2_declared:g}, runs {spec.h2_actual:g})"
            if spec.h2_declared != spec.h2_actual
            else ""
        ),
        ascii_gantt(
            outcome.trace, until=spec.horizon,
            entities=["PS", "t1", "t2"],
        ),
        ascii_capacity(
            outcome.capacity_history, until=spec.horizon, label="PS budget"
        ),
    ]
    for job in outcome.jobs:
        fate = (
            "interrupted" if job.interrupted
            else job.state.value
        )
        finish = f" at {job.finish_time:g}" if job.finish_time is not None else ""
        lines.append(f"  {job.name}: {fate}{finish}")
    return "\n".join(lines)


def render_figure(spec: ScenarioSpec,
                  svg_dir: Path | None = None) -> str:
    """Run one scenario and render it; optionally write an SVG file."""
    outcome = run_scenario_execution(spec)
    if svg_dir is not None:
        svg_dir.mkdir(parents=True, exist_ok=True)
        path = svg_dir / f"figure{spec.figure}_{spec.name}.svg"
        path.write_text(
            svg_gantt(outcome.trace, until=spec.horizon,
                      entities=["PS", "t1", "t2"])
        )
    return figure_text(spec, outcome)


def render_all_figures(svg_dir: Path | None = None) -> str:
    """Figures 2-4 back to back."""
    return "\n\n".join(render_figure(spec, svg_dir) for spec in SCENARIOS)
