"""Runtime verification: schedule sanitizer, oracles, chaos campaign.

Turns every simulation or emulated execution into a self-checking run:

* :mod:`~repro.verify.invariants` — streaming monitors over the trace
  feed (non-overlap, monotone clocks, FP/EDF/D-OVER ordering legality,
  server capacity conservation, release accounting, circuit-breaker
  state legality), attached through the kernels' opt-in ``monitors=``
  hook or replayed post-hoc with :func:`run_monitors`;
* :mod:`~repro.verify.oracle` — post-run comparison against the paper's
  closed forms (equations (1)-(5), the server-aware RTA, the ideal-PS
  admission test);
* :mod:`~repro.verify.differential` — the simulator arm vs the emulated
  RTSJ arm on the same system, divergence beyond calibrated tolerance;
* :mod:`~repro.verify.chaos` — a seeded campaign of random systems ×
  fault plans × overload bursts, monitors-on, with greedy shrinking of
  failures to a minimal reproducing witness;
* :mod:`~repro.verify.mutations` — deliberate scheduler bugs proving
  each monitor family non-vacuous (test infrastructure only).

Everything is opt-in: with no monitors attached, traces, metrics and
campaign outputs are byte-identical to the unverified code path.
"""

from __future__ import annotations

from ..sim.servers import (
    IdealDeferrableServer,
    IdealPollingServer,
    SporadicServer,
)
from ..workload.spec import GeneratedSystem, PeriodicTaskSpec
from .differential import (
    DifferentialTolerance,
    batch_differential_check,
    differential_check,
)
from .fabric import FabricProtocolMonitor
from .gateway import GatewayProtocolMonitor
from .invariants import (
    BreakerMonitor,
    DOverLegalityMonitor,
    EDFOrderMonitor,
    FixedPriorityMonitor,
    MonitoredCompactTrace,
    MonitoredTrace,
    MonotoneClockMonitor,
    NonOverlapMonitor,
    ReleaseAccountingMonitor,
    ServerCapacityMonitor,
    TraceMonitor,
    run_monitors,
)
from .oracle import (
    admission_oracle,
    polling_response_oracle,
    predicted_polling_finishes,
    rta_oracle,
)
from .violations import VerificationError, VerificationReport, Violation

__all__ = [
    "Violation",
    "VerificationReport",
    "VerificationError",
    "TraceMonitor",
    "MonitoredCompactTrace",
    "MonitoredTrace",
    "run_monitors",
    "NonOverlapMonitor",
    "MonotoneClockMonitor",
    "FixedPriorityMonitor",
    "EDFOrderMonitor",
    "DOverLegalityMonitor",
    "ServerCapacityMonitor",
    "ReleaseAccountingMonitor",
    "BreakerMonitor",
    "polling_response_oracle",
    "admission_oracle",
    "rta_oracle",
    "predicted_polling_finishes",
    "DifferentialTolerance",
    "FabricProtocolMonitor",
    "GatewayProtocolMonitor",
    "batch_differential_check",
    "differential_check",
    "monitors_for_system",
    "server_family",
    "periodic_job_costs",
]


def server_family(server: object) -> str | None:
    """The capacity-accounting family of a sim server instance, or
    ``None`` for families without a budgeted account (background,
    slack-stealing, TBS) or with ledger accounting (priority exchange).
    """
    if isinstance(server, IdealPollingServer):
        return "polling"
    if isinstance(server, IdealDeferrableServer):
        return "deferrable"
    if isinstance(server, SporadicServer):
        return "sporadic"
    return None


def periodic_job_costs(tasks: tuple[PeriodicTaskSpec, ...] | list,
                       horizon: float) -> dict[str, float]:
    """Per-instance execution demand (``"name#k"`` keys) up to the
    horizon, using the *actual* cost when a fault inflated it."""
    costs: dict[str, float] = {}
    for spec in tasks:
        demand = getattr(spec, "execution_cost", spec.cost)
        instance = 0
        while spec.offset + instance * spec.period < horizon - 1e-9:
            costs[f"{spec.name}#{instance}"] = demand
            instance += 1
    return costs


def monitors_for_system(
    system: GeneratedSystem,
    servers: tuple = (),
    policy: str = "fp",
    core_of: dict[str, int] | None = None,
    check_demand: bool = True,
    check_boundary: bool = True,
    strict_serve: bool = False,
) -> list[TraceMonitor]:
    """The standard monitor battery for one generated system.

    ``servers`` holds the live sim-server instances (so the monitors see
    the *effective* specs — e.g. the pooled capacity of a global
    multicore server); ``policy`` picks the ordering monitor (``"fp"``
    or ``"edf"`` over the periodic tasks); ``core_of`` scopes ordering
    checks per core for partitioned placements.  ``check_demand`` should
    be off when enforcement legitimately cuts execution, and
    ``check_boundary`` off for drifting-clock (exec) arms.
    """
    costs = {f"h{e.event_id}": e.cost for e in system.events}
    costs.update(periodic_job_costs(system.periodic_tasks, system.horizon))
    monitors: list[TraceMonitor] = [
        NonOverlapMonitor(),
        MonotoneClockMonitor(),
        BreakerMonitor(),
        ReleaseAccountingMonitor(
            costs=costs, check_demand=check_demand,
            strict_serve=strict_serve,
        ),
    ]
    if system.periodic_tasks:
        if policy == "fp":
            monitors.append(FixedPriorityMonitor(
                {t.name: t.priority for t in system.periodic_tasks},
                core_of=core_of,
            ))
        elif policy == "edf":
            monitors.append(EDFOrderMonitor(
                {t.name: t.effective_deadline
                 for t in system.periodic_tasks},
                core_of=core_of,
            ))
        else:
            raise ValueError(
                f"policy must be 'fp' or 'edf', got {policy!r}"
            )
    for server in servers:
        family = server_family(server)
        if family is not None:
            monitors.append(ServerCapacityMonitor(
                server.name, server.spec.capacity, server.spec.period,
                family=family, check_boundary=check_boundary,
            ))
    return monitors
