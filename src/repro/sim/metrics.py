"""Evaluation metrics (paper Section 6.1).

For one run the paper measures, over the aperiodic events of the system:

* the **average response time** of *served* aperiodics,
* the **interrupted-aperiodics ratio** (events whose handler was cut by
  the capacity-enforcement mechanism; always 0 in the ideal simulator),
* the **served-aperiodics ratio** (events completed within the
  observation horizon).

Per set of systems it then averages each measure, yielding AART, AIR and
ASR — the rows of Tables 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass

from .task import AperiodicJob, JobState

__all__ = ["RunMetrics", "SetMetrics", "measure_run", "aggregate"]


@dataclass(frozen=True)
class RunMetrics:
    """Metrics of one system's run (one simulation or one execution)."""

    released: int
    served: int
    interrupted: int
    average_response_time: float
    response_times: tuple[float, ...]

    @property
    def served_ratio(self) -> float:
        """SR: served / released (1.0 for an empty system)."""
        return self.served / self.released if self.released else 1.0

    @property
    def interrupted_ratio(self) -> float:
        """IR: interrupted / released (0.0 for an empty system)."""
        return self.interrupted / self.released if self.released else 0.0


@dataclass(frozen=True)
class SetMetrics:
    """Averages over the runs of one generated set (a Tables 2-5 column)."""

    aart: float
    air: float
    asr: float
    runs: tuple[RunMetrics, ...]

    def as_row(self) -> dict[str, float]:
        """The three table cells, keyed like the paper's row labels."""
        return {"AART": self.aart, "AIR": self.air, "ASR": self.asr}

    # -- dispersion (not in the paper's tables, but a downstream user's
    #    first question about ten-system averages) --------------------------

    def _std(self, values: list[float], mean: float) -> float:
        n = len(values)
        if n < 2:
            return 0.0
        return (sum((v - mean) ** 2 for v in values) / (n - 1)) ** 0.5

    @property
    def aart_std(self) -> float:
        """Sample standard deviation of the per-run average response times."""
        return self._std(
            [r.average_response_time for r in self.runs], self.aart
        )

    @property
    def asr_std(self) -> float:
        """Sample standard deviation of the per-run served ratios."""
        return self._std([r.served_ratio for r in self.runs], self.asr)

    @property
    def air_std(self) -> float:
        """Sample standard deviation of the per-run interrupted ratios."""
        return self._std([r.interrupted_ratio for r in self.runs], self.air)

    def aart_confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the (normal-approximation) confidence interval
        on the AART, at ``z`` standard errors (default ~95%)."""
        n = len(self.runs)
        if n < 2:
            return 0.0
        return z * self.aart_std / n ** 0.5


def measure_run(jobs: list[AperiodicJob]) -> RunMetrics:
    """Compute one run's metrics from its aperiodic job records.

    ``jobs`` must be every aperiodic job released during the run, in any
    order.  Interrupted jobs are those flagged by the execution arm's
    ``Timed`` budget enforcement; they count as released but not served.
    """
    released = len(jobs)
    served_jobs = [j for j in jobs if j.state is JobState.COMPLETED]
    interrupted = sum(1 for j in jobs if j.interrupted)
    rts = []
    for job in served_jobs:
        rt = job.response_time
        assert rt is not None, f"completed job {job.name} lacks finish time"
        rts.append(rt)
    avg = sum(rts) / len(rts) if rts else 0.0
    return RunMetrics(
        released=released,
        served=len(served_jobs),
        interrupted=interrupted,
        average_response_time=avg,
        response_times=tuple(rts),
    )


def aggregate(runs: list[RunMetrics]) -> SetMetrics:
    """Average per-run measures into AART / AIR / ASR.

    Runs that served no event contribute 0 to the AART average, matching
    the straightforward "average of the average-response-times" the paper
    describes (a served-weighted mean is deliberately not used).
    """
    if not runs:
        raise ValueError("cannot aggregate an empty list of runs")
    n = len(runs)
    return SetMetrics(
        aart=sum(r.average_response_time for r in runs) / n,
        air=sum(r.interrupted_ratio for r in runs) / n,
        asr=sum(r.served_ratio for r in runs) / n,
        runs=tuple(runs),
    )
