"""Unit tests for the ideal Deferrable Server (literature semantics)."""

from __future__ import annotations

import pytest

from repro.sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealDeferrableServer,
    Simulation,
)
from repro.workload.spec import PeriodicTaskSpec, ServerSpec
from conftest import segments_of


def build(capacity=3.0, period=6.0, horizon=30.0, tasks=True):
    sim = Simulation(FixedPriorityPolicy())
    server = IdealDeferrableServer(
        ServerSpec(capacity=capacity, period=period, priority=10), name="DS"
    )
    server.attach(sim, horizon=horizon)
    if tasks:
        sim.add_periodic_task(PeriodicTaskSpec("t1", cost=2, period=6, priority=5))
    return sim, server


def submit(sim, server, fires):
    jobs = []
    for i, (t, c) in enumerate(fires):
        job = AperiodicJob(f"h{i + 1}", release=t, cost=c)
        jobs.append(job)
        sim.submit_aperiodic(job, server.submit)
    return jobs


class TestDeferredCapacity:
    def test_immediate_service_mid_period(self):
        # the defining DS property: capacity is preserved while idle
        sim, server = build()
        jobs = submit(sim, server, [(2.5, 2)])
        trace = sim.run(until=12)
        assert jobs[0].start_time == 2.5
        assert jobs[0].finish_time == 4.5
        assert segments_of(trace, "DS") == [(2.5, 4.5)]

    def test_preempts_periodic_task(self):
        sim, server = build()
        jobs = submit(sim, server, [(1, 1)])
        trace = sim.run(until=6)
        # t1 starts at 0, DS preempts at 1, t1 resumes at 2
        assert segments_of(trace, "t1") == [(0, 1), (2, 3)]
        assert jobs[0].finish_time == 2.0

    def test_capacity_exhaustion_waits_for_replenish(self):
        sim, server = build(tasks=False)
        jobs = submit(sim, server, [(0, 3), (1, 2)])
        sim.run(until=12)
        assert jobs[0].finish_time == 3.0        # burns the full budget
        assert jobs[1].start_time == 6.0          # waits for replenishment
        assert jobs[1].finish_time == 8.0

    def test_full_replenishment_not_cumulative(self):
        sim, server = build(tasks=False)
        submit(sim, server, [(0, 1)])
        sim.run(until=13)
        # after idling two periods the capacity is Cs, not 2*Cs - used
        assert server.capacity == pytest.approx(3.0)

    def test_job_spanning_replenishment(self):
        sim, server = build(tasks=False, capacity=2.0, period=5.0)
        jobs = submit(sim, server, [(4, 4)])
        trace = sim.run(until=20)
        # capacity 1 left in [4,5), full refill at 5 buys [5,7); the last
        # unit waits for the t=10 refill (full replenishment semantics)
        assert segments_of(trace, "DS") == [(4, 7), (10, 11)]
        assert jobs[0].finish_time == 11.0

    def test_double_hit_shape(self):
        # back-to-back capacity around a period boundary: the worst case
        # that motivates the modified feasibility analysis — 6 continuous
        # units of service across the t=6 boundary
        sim, server = build(tasks=False)
        jobs = submit(sim, server, [(3, 3), (6, 3)])
        trace = sim.run(until=12)
        assert segments_of(trace, "DS") == [(3, 6), (6, 9)]
        assert jobs[0].finish_time == 6.0
        assert jobs[1].finish_time == 9.0

    def test_better_response_than_polling_on_average(self):
        # DS serves at arrival, PS at the next activation
        from repro.sim import IdealPollingServer

        fires = [(1.0, 2), (8.5, 2), (14.2, 2)]
        finishes = {}
        for cls in (IdealDeferrableServer, IdealPollingServer):
            sim = Simulation(FixedPriorityPolicy())
            server = cls(ServerSpec(3.0, 6.0, priority=10), name="S")
            server.attach(sim, horizon=30.0)
            jobs = submit(sim, server, fires)
            sim.run(until=30)
            finishes[cls.__name__] = [j.response_time for j in jobs]
        ds = finishes["IdealDeferrableServer"]
        ps = finishes["IdealPollingServer"]
        assert sum(ds) < sum(ps)
        assert all(d <= p for d, p in zip(ds, ps))
