"""Incremental scheduler: O(1) admission, in-place schedule repair.

The planner owns the service's *predicted* schedule.  Admission rides
the Section 7 bucket arithmetic (:class:`~repro.core.admission.
BucketLedger`): one O(1) peek decides admit/reject, one O(1) place
commits.  Nothing is ever re-simulated from t=0 — when the digital twin
reports divergence, the planner *repairs* the live schedule in place:

* **local repair** re-buckets the surviving backlog in EDF order from
  the current instant (O(backlog)); events whose repaired finish no
  longer meets their deadline are shed explicitly — the paper's
  "execution possibly cancelled", applied online;
* **budget re-negotiation** folds the twin's observed cost inflation
  into every future placement (a server that *actually* delivers less
  than its declared budget is re-planned against what it really
  delivers), then repairs locally;
* **degraded mode** scales the effective server capacity down (the PR 3
  ``ServiceScaleAction`` shape) for the duration of the overload, again
  followed by a local repair.

All three escalation levels mutate the same ledger/backlog state — the
re-plan cost is proportional to what is currently admitted, never to
elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.admission import BucketLedger, BucketSlot
from .requests import EventRequest

__all__ = ["PlannedJob", "RepairResult", "IncrementalPlanner"]


@dataclass
class PlannedJob:
    """One admitted event's live schedule entry."""

    request: EventRequest
    admitted_at: float
    deadline: float          # absolute
    slot: BucketSlot
    effective_cost: float    # declared cost x inflation at placement

    @property
    def predicted_finish(self) -> float:
        return self.slot.finish

    def to_dict(self) -> dict:
        return {
            "request": self.request.to_dict(),
            "admitted_at": self.admitted_at,
            "deadline": self.deadline,
            "slot": {
                "instance": self.slot.instance,
                "before": self.slot.before,
                "cost": self.slot.cost,
                "finish": self.slot.finish,
            },
            "effective_cost": self.effective_cost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlannedJob":
        return cls(
            request=EventRequest.from_dict(data["request"]),
            admitted_at=data["admitted_at"],
            deadline=data["deadline"],
            slot=BucketSlot(**data["slot"]),
            effective_cost=data["effective_cost"],
        )


@dataclass
class RepairResult:
    """Outcome of one re-plan: what moved, what had to go."""

    level: str                       # "local" | "renegotiate" | "degrade"
    at: float
    kept: dict[str, float] = field(default_factory=dict)   # id -> new finish
    shed: list[str] = field(default_factory=list)
    #: wall-clock seconds the repair took (benchmark signal)
    latency_s: float = 0.0

    @property
    def moved(self) -> int:
        return len(self.kept)


class IncrementalPlanner:
    """The admission service's schedule state machine."""

    def __init__(self, capacity: float, period: float,
                 start: float = 0.0) -> None:
        self.base_capacity = capacity
        self.period = period
        self.start = start
        #: observed cost inflation folded in by budget re-negotiation
        self.inflation = 1.0
        #: degraded-mode capacity scale (1.0 = normal service)
        self.scale = 1.0
        self.ledger = BucketLedger(capacity, period, start)
        self.jobs: dict[str, PlannedJob] = {}
        self.repairs = 0

    # -- derived knobs -----------------------------------------------------

    @property
    def effective_capacity(self) -> float:
        return self.base_capacity * self.scale

    @property
    def backlog(self) -> int:
        return len(self.jobs)

    @property
    def demand(self) -> float:
        """Total effective cost currently admitted and unfinished."""
        return sum(job.effective_cost for job in self.jobs.values())

    # -- O(1) admission ----------------------------------------------------

    def admit(self, now: float,
              request: EventRequest) -> tuple[PlannedJob | None, float]:
        """Admission test for ``request`` fired at ``now``; O(1).

        Returns ``(job, predicted_finish)`` — ``job`` is ``None`` when
        the event cannot meet its deadline (or can never fit), in which
        case ``predicted_finish`` still carries the prediction that
        sank it (``inf`` for does-not-fit).
        """
        if request.request_id in self.jobs:
            raise KeyError(f"{request.request_id!r} is already admitted")
        effective = request.cost * self.inflation
        if effective > self.effective_capacity:
            return None, float("inf")
        slot = self.ledger.peek(now, effective)
        deadline = now + request.relative_deadline
        if slot.finish > deadline + 1e-12:
            return None, slot.finish
        self.ledger.place(slot)
        job = PlannedJob(
            request=request, admitted_at=now, deadline=deadline,
            slot=slot, effective_cost=effective,
        )
        self.jobs[request.request_id] = job
        return job, slot.finish

    # -- O(1) retirement ---------------------------------------------------

    def retire(self, request_id: str) -> PlannedJob:
        """An admitted event left the schedule (served or shed); O(1)."""
        job = self.jobs.pop(request_id)
        self.ledger.release(job.effective_cost)
        return job

    # -- in-place repair ---------------------------------------------------

    def repair(self, now: float, level: str = "local") -> RepairResult:
        """Re-bucket the surviving backlog in EDF order from ``now``.

        The ledger tail is rebuilt with the *current* effective capacity
        and inflation; jobs whose repaired finish misses their deadline
        (or whose effective cost no longer fits an instance) are removed
        and reported shed — the caller records the explicit SHED events.
        O(backlog log backlog) for the EDF sort; independent of elapsed
        or remaining horizon.
        """
        result = RepairResult(level=level, at=now)
        self.ledger = BucketLedger(
            self.effective_capacity, self.period, self.start
        )
        ordered = sorted(
            self.jobs.values(),
            key=lambda job: (job.deadline, job.request.request_id),
        )
        survivors: dict[str, PlannedJob] = {}
        for job in ordered:
            effective = job.request.cost * self.inflation
            if effective > self.effective_capacity:
                result.shed.append(job.request.request_id)
                continue
            slot = self.ledger.peek(now, effective)
            if slot.finish > job.deadline + 1e-12:
                result.shed.append(job.request.request_id)
                continue
            self.ledger.place(slot)
            job.slot = slot
            job.effective_cost = effective
            survivors[job.request.request_id] = job
            result.kept[job.request.request_id] = slot.finish
        self.jobs = survivors
        self.repairs += 1
        return result

    def renegotiate(self, now: float, inflation: float) -> RepairResult:
        """Fold the observed cost inflation into the budget model and
        repair.  ``inflation`` below 1 (the twin observed *faster*
        service than declared) is clamped: the planner never plans
        against optimism."""
        if inflation <= 0:
            raise ValueError(f"inflation must be > 0, got {inflation}")
        self.inflation = max(1.0, inflation)
        return self.repair(now, level="renegotiate")

    def degrade(self, now: float, scale: float) -> RepairResult:
        """Enter degraded mode: scale effective capacity, repair."""
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.scale = scale
        return self.repair(now, level="degrade")

    def restore(self, now: float) -> RepairResult:
        """Leave degraded mode: full capacity again, repair (a repair
        after *raising* capacity can only keep or improve finishes —
        nothing is shed by recovery)."""
        self.scale = 1.0
        return self.repair(now, level="restore")

    # -- checkpoint/hash input ---------------------------------------------

    def state(self) -> dict:
        """Canonical JSON-ready snapshot of the full planner state."""
        return {
            "capacity": self.base_capacity,
            "period": self.period,
            "start": self.start,
            "inflation": round(self.inflation, 9),
            "scale": round(self.scale, 9),
            "ledger": self.ledger.state(),
            "repairs": self.repairs,
            "jobs": {
                rid: job.to_dict()
                for rid, job in sorted(self.jobs.items())
            },
        }
