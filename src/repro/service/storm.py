"""Seeded Poisson-storm harness for the admission service.

Drives an :class:`~repro.service.service.AdmissionService` on a
:class:`~repro.service.clock.VirtualClock` with a Poisson arrival
stream of aperiodic event requests — optionally under injected
execution skew (timer drift + WCET overruns) — and returns a
:class:`StormReport` with the robustness evidence the acceptance
criteria ask for:

* zero invariant-monitor violations (hard deadlines met or explicitly
  SHED, nothing silently dropped, no un-caused re-planning);
* divergence and re-plan tallies, re-plan latency (wall seconds) and
  admission throughput (decisions per wall second);
* overload recovery: time spent degraded and the mode at the horizon.

``kill_at`` aborts the run mid-storm (crash simulation) and reports the
twin state hash, so the restart test can resume from the checkpoint and
compare hashes.  Everything is deterministic under ``seed``.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass, field

from ..faults.injectors import ExecutionSkew
from ..sim.trace import TraceEventKind
from ..workload.rng import PortableRandom
from .clock import VirtualClock
from .requests import EventRequest
from .service import AdmissionService, ServiceClient, ServiceConfig

__all__ = ["StormConfig", "StormReport", "default_storm_service_config",
           "run_service_storm", "storm_requests"]


def default_storm_service_config() -> ServiceConfig:
    """The storm harnesses' shared service tuning (one shard's worth).

    capacity/period = 1 tu/tu; the watermarks sit just below it so
    overload is an excursion the detector rides out, not the steady
    state (the library DetectorConfig defaults target the much
    lower-utilization simulator campaigns).  The fabric storm reuses
    this verbatim so a single-shard fabric is byte-identical to the
    plain service on the same seed.
    """
    from ..overload.config import DetectorConfig
    return ServiceConfig(
        capacity=2.0, period=2.0,
        detector=DetectorConfig(
            high_watermark=0.9, low_watermark=0.7,
            shed_threshold=4, quiescence=15.0,
            # gentle degradation: still admits the typical request — a
            # scale that rejects the median cost makes every rejected
            # client's retries re-feed the demand estimator and wedges
            # the detector above its low watermark
            service_scale=0.75,
        ),
    )


@dataclass(frozen=True)
class StormConfig:
    """One seeded storm: arrival process, request mix, injected skew."""

    rate: float = 0.5              # arrivals per tu (Poisson)
    horizon: float = 200.0         # last arrival instant
    seed: int = 0
    #: (start, end, rate multiplier) — a deterministic overload burst
    #: that pushes demand over the watermark mid-storm
    burst: tuple[float, float, float] | None = (60.0, 85.0, 4.0)
    cost_range: tuple[float, float] = (0.3, 1.5)
    deadline_factor: float = 8.0   # relative deadline ~ factor x cost
    hard_fraction: float = 0.7
    optional_fraction: float = 0.3  # of the soft requests
    sources: int = 3
    drift_ppm: float = 0.0
    overrun_factor: float = 1.0
    overrun_probability: float = 0.0
    kill_at: float | None = None
    settle: float = 60.0           # quiet tail before drain (recovery)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if self.sources < 1:
            raise ValueError(f"sources must be >= 1, got {self.sources}")

    @property
    def skew(self) -> ExecutionSkew:
        return ExecutionSkew(
            drift_ppm=self.drift_ppm,
            overrun_factor=self.overrun_factor,
            overrun_probability=self.overrun_probability,
        )


@dataclass
class StormReport:
    """What one storm run produced."""

    config: StormConfig
    horizon: float
    submitted: int = 0
    decisions: dict = field(default_factory=dict)
    completed: int = 0
    shed: int = 0
    deadline_cuts: int = 0
    soft_misses: int = 0
    divergences: dict = field(default_factory=dict)
    replans: dict = field(default_factory=dict)
    replans_suppressed: int = 0
    replan_latency_s: dict = field(default_factory=dict)
    client_retries: int = 0
    admissions_per_sec: float = 0.0
    wall_seconds: float = 0.0
    time_in_degraded: float = 0.0
    mode_at_end: str = "normal"
    violations: list = field(default_factory=list)
    twin_hash: str = ""
    killed: bool = False
    resumed_from_hash: str = ""
    hard_misses: int = 0
    drained_completed: int = 0
    drained_shed: int = 0
    #: the service's execution trace (diagnostics; excluded from
    #: ``to_dict`` so reports stay JSON-serialisable and comparable)
    trace: object = field(default=None, repr=False, compare=False)

    @property
    def clean(self) -> bool:
        """Zero invariant violations — the storm's pass criterion."""
        return not self.violations

    @property
    def admitted(self) -> int:
        return self.decisions.get("admit", 0)

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "submitted": self.submitted,
            "decisions": dict(self.decisions),
            "completed": self.completed,
            "shed": self.shed,
            "deadline_cuts": self.deadline_cuts,
            "soft_misses": self.soft_misses,
            "divergences": dict(self.divergences),
            "replans": dict(self.replans),
            "replans_suppressed": self.replans_suppressed,
            "replan_latency_s": dict(self.replan_latency_s),
            "client_retries": self.client_retries,
            "admissions_per_sec": round(self.admissions_per_sec, 1),
            "wall_seconds": round(self.wall_seconds, 3),
            "time_in_degraded": round(self.time_in_degraded, 3),
            "mode_at_end": self.mode_at_end,
            "violations": list(self.violations),
            "twin_hash": self.twin_hash,
            "killed": self.killed,
            "resumed_from_hash": self.resumed_from_hash,
            "hard_misses": self.hard_misses,
        }


def storm_requests(config: StormConfig) -> list[tuple[float, EventRequest]]:
    """The storm's deterministic arrival list: (time, request) pairs."""
    rng = PortableRandom(config.seed)
    lo, hi = config.cost_range
    out: list[tuple[float, EventRequest]] = []
    t = 0.0
    index = 0
    while True:
        rate = config.rate
        if config.burst is not None:
            start, end, mult = config.burst
            if start <= t < end:
                rate = config.rate * mult
        t += rng.exponential(1.0 / rate)
        if t > config.horizon:
            break
        cost = rng.uniform(lo, hi)
        deadline = cost * config.deadline_factor * rng.uniform(0.8, 1.2)
        hard = rng.random() < config.hard_fraction
        optional = (not hard) and rng.random() < config.optional_fraction
        source = f"src-{index % config.sources}"
        out.append((t, EventRequest(
            request_id=f"req-{index:05d}", cost=cost,
            relative_deadline=deadline, hard=hard, optional=optional,
            source=source,
        )))
        index += 1
    return out


async def _drive(service: AdmissionService, config: StormConfig,
                 report: StormReport) -> None:
    clock = service.clock
    assert isinstance(clock, VirtualClock)
    resumed_at = clock.now()   # > 0 when resuming from a checkpoint
    clients = {
        f"src-{i}": ServiceClient(
            service, seed=config.seed * 1009 + i, max_attempts=4
        )
        for i in range(config.sources)
    }
    pending: list[asyncio.Task] = []
    killed = False
    for when, request in storm_requests(config):
        if when <= resumed_at:
            continue   # the pre-crash run already decided this arrival
        if config.kill_at is not None and when >= config.kill_at:
            await clock.advance(config.kill_at)
            killed = True
            break
        await clock.advance(when)
        client = clients[request.source]
        pending.append(asyncio.create_task(client.submit(request)))
        await asyncio.sleep(0)  # let the submission decide at `when`
    if killed:
        report.killed = True
        report.twin_hash = service.twin.state_hash()
        service.kill()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        report.horizon = clock.now()
        return
    # quiet tail: let in-flight work settle and overload recovery land
    await clock.advance(config.horizon + config.settle)
    drained = await service.drain()
    report.drained_completed = drained.completed
    report.drained_shed = drained.shed
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    report.horizon = clock.now()
    report.twin_hash = service.twin.state_hash()
    report.client_retries = sum(c.retries for c in clients.values())


def run_service_storm(
    config: StormConfig,
    service_config: ServiceConfig | None = None,
    checkpoint_path=None,
    resume: bool = False,
) -> StormReport:
    """Run one seeded storm to completion (or to ``kill_at``).

    With ``resume=True``, ``checkpoint_path`` must name the JSONL log a
    killed run left behind: the service is rebuilt from it (the report's
    ``resumed_from_hash`` is the twin hash at that instant, for
    comparison against the killed run's ``twin_hash``) and the storm
    continues with the arrivals the crash never saw.
    """
    if service_config is None:
        service_config = default_storm_service_config()
    skew = config.skew if config.skew.active else None
    report = StormReport(config=config, horizon=config.horizon)
    wall_start = _time.perf_counter()

    async def _main() -> AdmissionService:
        if resume:
            restored = await AdmissionService.restore(
                checkpoint_path, config=service_config, skew=skew,
            )
            report.resumed_from_hash = restored.twin.state_hash()
            await _drive(restored, config, report)
            return restored
        fresh = AdmissionService(
            service_config,
            clock=VirtualClock(service_config.start),
            skew=skew,
            seed=config.seed,
            checkpoint_path=checkpoint_path,
        )
        await fresh.start()
        await _drive(fresh, config, report)
        return fresh

    service = asyncio.run(_main())
    report.wall_seconds = _time.perf_counter() - wall_start
    metrics = service.metrics()
    report.submitted = metrics["submitted"]
    report.decisions = metrics["decisions"]
    report.completed = metrics["completed"]
    report.shed = metrics["shed"]
    report.deadline_cuts = metrics["deadline_cuts"]
    report.soft_misses = metrics["soft_misses"]
    report.divergences = metrics["divergences"]
    report.replans = metrics["replans"]
    report.replans_suppressed = metrics["replans_suppressed"]
    report.replan_latency_s = metrics["replan_latency_s"]
    report.trace = service.trace
    # a hard-deadline DEADLINE_MISS would also be a monitor violation;
    # counted here so the acceptance check does not depend on monitors
    report.hard_misses = sum(
        1 for e in service.trace.events
        if e.kind is TraceEventKind.DEADLINE_MISS
        and "soft" not in e.detail
    )
    if report.wall_seconds > 0:
        report.admissions_per_sec = (
            report.submitted / report.wall_seconds
        )
    if service.detector is not None:
        report.time_in_degraded = service.detector.time_in_degraded
        report.mode_at_end = service.detector.mode
    if not report.killed:
        verification = service.finish(report.horizon)
        if verification is not None:
            report.violations = [str(v) for v in verification.violations]
    return report
