"""Parameter sweeps over the campaign's generative model.

Utilities for studying how the evaluation's conclusions move with the
server configuration — used by the granularity ablation
(``benchmarks/bench_ablation_server_granularity.py``) and available to
downstream users exploring their own design space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..rtsj.overhead import OverheadModel
from ..sim.metrics import SetMetrics, aggregate
from ..workload.generator import RandomSystemGenerator
from ..workload.spec import GenerationParameters
from .campaign import execute_system, simulate_system

__all__ = ["SweepPoint", "sweep_server_configuration"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome under both arms."""

    capacity: float
    period: float
    sim: SetMetrics
    exec_: SetMetrics

    @property
    def utilization(self) -> float:
        return self.capacity / self.period


def sweep_server_configuration(
    base: GenerationParameters,
    configurations: list[tuple[float, float]],
    policy: str = "polling",
    overhead: OverheadModel | None = None,
) -> list[SweepPoint]:
    """Run the base workload model under several (capacity, period)
    server configurations, through both evaluation arms.

    Note that changing the server period also changes the arrival
    process (the density is *per server period*); to sweep the server
    against a fixed arrival process, pre-scale ``task_density`` so that
    ``density / period`` is constant — this function does exactly that,
    holding the base configuration's arrival *rate* fixed.
    """
    if not configurations:
        raise ValueError("need at least one (capacity, period) configuration")
    base_rate = base.task_density / base.server_period
    base_horizon = base.horizon
    points = []
    for capacity, period in configurations:
        # hold the arrival rate and the observation window fixed while
        # the server's granularity changes
        horizon_periods = max(1, round(base_horizon / period))
        params = replace(
            base,
            server_capacity=capacity,
            server_period=period,
            task_density=base_rate * period,
            horizon_periods=horizon_periods,
        )
        systems = RandomSystemGenerator(params).generate()
        sim_runs = [
            simulate_system(system, policy).metrics for system in systems
        ]
        exec_runs = [
            execute_system(system, policy, overhead=overhead).metrics
            for system in systems
        ]
        points.append(
            SweepPoint(
                capacity=capacity,
                period=period,
                sim=aggregate(sim_runs),
                exec_=aggregate(exec_runs),
            )
        )
    return points
