"""Fault injection and overload resilience.

The paper's evaluation (Section 6) assumes well-behaved workloads: every
aperiodic job honours its declared cost and the RTSJ arm relies on
``Timed`` to clip capacity overruns.  This package models the *other*
operating region — tasks overrunning their WCET, event bursts, lost or
jittered activations, drifting timers — and the machinery a system needs
to stay correct there:

``repro.faults.injectors``
    Composable, seeded fault models applied to generated workloads
    (:class:`FaultPlan`) or to the ``ServableAsyncEvent`` fire path
    (:class:`FireFaultInjector`).  With no injectors, or when disabled,
    workloads and traces are byte-identical to the golden path.
``repro.faults.enforcement``
    Cost-overrun enforcement policies shared by the ideal simulator
    servers, the RTSS periodic entities and the RTSJ task servers:
    ``abort-job``, ``skip-next-release``, ``clip-to-budget`` and
    ``log-and-continue``.
``repro.faults.watchdog``
    A deadline-miss / overrun watchdog attachable to a
    :class:`~repro.sim.engine.Simulation` or an emulated RTSJ VM.
"""

from .enforcement import (
    OVERRUN_POLICIES,
    EnforcementConfig,
    FaultSummary,
    summarize_faults,
)
from .injectors import (
    DroppedActivation,
    EventBurst,
    ExecutionSkew,
    FaultInjector,
    FaultPlan,
    FireFaultInjector,
    ReleaseJitter,
    TimerDrift,
    WcetOverrun,
)
from .watchdog import DeadlineMissWatchdog

__all__ = [
    "OVERRUN_POLICIES",
    "EnforcementConfig",
    "FaultSummary",
    "summarize_faults",
    "DroppedActivation",
    "EventBurst",
    "ExecutionSkew",
    "FaultInjector",
    "FaultPlan",
    "FireFaultInjector",
    "ReleaseJitter",
    "TimerDrift",
    "WcetOverrun",
    "DeadlineMissWatchdog",
]
