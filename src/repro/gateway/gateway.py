"""The wall-clock admission gateway: real network ingestion.

:class:`AdmissionGateway` is an asyncio TCP/Unix-socket front end that
runs an :class:`~repro.service.AdmissionService` (or a PR 8
:class:`~repro.fabric.AdmissionFabric` behind its router) on a hardened
:class:`~repro.service.WallClock`.  Robustness layers:

* **ingress hardening** — every connection is bounded: frame size,
  idle/read timeouts (slowloris), a connection cap, and a bounded
  in-flight pipeline whose overflow surfaces as a retryable
  ``REJECT_BUSY`` instead of unbounded queueing.  SIGTERM drains
  gracefully (finish what was accepted, explicit drain-cutoff fates); a
  second signal forces an immediate checkpoint-and-exit.
* **clock robustness** — the wall clock is anchored once, monotonic by
  construction, and watched: a stalled loop or suspended process
  registers as a :class:`~repro.service.ClockPause` which the gateway
  feeds into the digital twin as a heartbeat-miss divergence.
* **crash safety** — an at-least-once ingestion journal (same CRC'd
  JSONL discipline as the service checkpoint) records every frame's
  (stamp, request) before submission and the decision after it.  A
  killed gateway restores by replaying the journal against the restored
  service: decided entries re-seed the idempotency cache, undecided
  ones are re-submitted *at their original stamps* — never a double
  admission.
* **determinism under jitter** — all decisions flow through one
  dispatcher, each frame is stamped exactly once, and a settle
  discipline (completions due before the stamp commit first) mirrors
  ``VirtualClock.advance``'s wake-then-settle ordering.  A control run
  replaying the journal's (stamp, request) pairs on a ``VirtualClock``
  therefore reproduces every admission decision bit-for-bit — the
  property ``run_gateway_soak`` cross-checks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from pathlib import Path

from repro.service import (
    AdmissionService,
    AdmissionTicket,
    CheckpointLog,
    Decision,
    DrainReport,
    EventRequest,
    IdempotencyCache,
    ServiceConfig,
    WallClock,
)
from repro.service.clock import ClockPause
from repro.sim.trace import ExecutionTrace, TraceEvent, TraceEventKind

from .protocol import (
    FrameError,
    FrameTimeout,
    FrameTooLarge,
    TornFrame,
    error_payload,
    parse_request,
    read_frame,
    ticket_payload,
    write_frame,
)

__all__ = ["GatewayConfig", "AdmissionGateway", "load_journal",
           "undecided_entries"]

_EPS = 1e-9
#: how far past the last journal/checkpoint stamp a restored gateway's
#: logical timeline resumes
_RESUME_SLACK = 1e-6


@dataclass(frozen=True)
class GatewayConfig:
    """Ingress limits and lifecycle knobs of one gateway instance.

    TCP by default (``host``/``port``, port 0 = ephemeral); set
    ``unix_path`` to listen on a Unix socket instead.  All ``*_s``
    knobs are wall seconds; ``watchdog_interval``/``pause_threshold``
    and ``drain_max_wait`` are logical tu.
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: str | None = None
    max_frame_bytes: int = 64 * 1024
    #: wall seconds of silence between frames before the peer is dropped
    idle_timeout_s: float = 30.0
    #: wall seconds to deliver a started frame (slowloris bound)
    read_timeout_s: float = 5.0
    max_connections: int = 64
    #: bounded dispatcher pipeline; overflow answers REJECT_BUSY
    max_in_flight: int = 128
    #: ready-queue yields granted for due completions to commit before
    #: a new arrival is stamped (the wall-clock settle discipline)
    settle_rounds: int = 256
    #: clock watchdog sampling interval (tu); gaps beyond
    #: ``pause_threshold`` (default 3x interval) record a ClockPause.
    #: At the 1 tu = 1 ms default scale, 100 tu sampling puts the
    #: detection bound at 300 ms — far above ordinary scheduler jitter,
    #: well below a suspended process
    watchdog_interval: float = 100.0
    pause_threshold: float | None = None
    #: drain cutoff (tu): in-flight work settling later is shed with an
    #: explicit drain-cutoff fate; None settles everything
    drain_max_wait: float | None = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )


def load_journal(path: Path | str) -> list[dict]:
    """All intact journal ops (CRC-checked, torn tail tolerated)."""
    return CheckpointLog(path).load()


def undecided_entries(ops: list[dict]) -> list[dict]:
    """Ingest ops with no matching decision — the crash's replay debt.

    The dispatcher is serial, so the journal strictly alternates
    ingest/decided per occurrence; pairing is positional per id.
    """
    pending: list[dict] = []
    for op in ops:
        if op.get("op") == "ingest":
            pending.append(op)
        elif op.get("op") == "decided":
            for i, entry in enumerate(pending):
                if entry["request"]["request_id"] == op["id"]:
                    pending.pop(i)
                    break
    return pending


class AdmissionGateway:
    """One listening socket in front of one admission backend."""

    def __init__(
        self,
        config: GatewayConfig,
        service_config: ServiceConfig,
        *,
        clock: WallClock | None = None,
        skew=None,
        seed: int = 0,
        journal_path: Path | str | None = None,
        checkpoint_path: Path | str | None = None,
        fabric=None,
        _service: AdmissionService | None = None,
    ) -> None:
        self.config = config
        # the backend runs unmonitored: the gateway verifies the merged
        # feed post-hoc, exactly like the fabric does with its shards
        self.service_config = replace(service_config, monitored=False)
        self.clock = clock if clock is not None else WallClock()
        self.seed = seed
        self.fabric = fabric
        if fabric is not None:
            if fabric.clock is not self.clock:
                raise ValueError(
                    "a fabric behind the gateway must share its clock"
                )
            self.service = None
        elif _service is not None:
            self.service = _service
        else:
            self.service = AdmissionService(
                self.service_config, clock=self.clock, skew=skew,
                seed=seed, checkpoint_path=checkpoint_path,
            )
        self.journal: CheckpointLog | None = (
            CheckpointLog(journal_path) if journal_path is not None else None
        )
        self.checkpoint_path = checkpoint_path
        self.trace = ExecutionTrace()       # gateway plane
        self.cache = IdempotencyCache(
            max_entries=self.service_config.idempotency_entries
        )
        #: dead predecessor incarnations (in-process restore drills keep
        #: them so merged_trace spans the crash)
        self.archived_services: list[AdmissionService] = []
        self.archived_traces: list[ExecutionTrace] = []
        self._replay_debt: list[dict] = []
        self.server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | str | None = None
        self._pipeline: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_seq = 0
        self.terminated: asyncio.Event | None = None
        self.draining = False
        self.killed = False
        self.shutdown_signals = 0
        # counters
        self.ingested = 0
        self.responded = 0
        self.replayed = 0
        self.busy_rejections = 0
        self.draining_rejections = 0
        self.torn_frames = 0
        self.oversized_frames = 0
        self.timeouts = 0
        self.protocol_errors = 0
        self.connections_total = 0
        self.connections_rejected = 0
        self.settle_overruns = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AdmissionGateway":
        """Anchor the clock, replay any journal debt, open the socket."""
        self.clock.anchor()
        self.terminated = asyncio.Event()
        self._pipeline = asyncio.Queue(maxsize=self.config.max_in_flight)
        if self.service is not None and self._needs_service_start():
            await self.service.start()
        if self.journal is not None and not self.journal.exists():
            self.journal.append({
                "op": "gateway_init", "t": self.clock.now(),
                "scale": self.clock.scale, "seed": self.seed,
            })
        if self._replay_debt:
            await self._replay_journal_debt()
        self.clock.on_pause(self._on_clock_pause)
        self.clock.start_watchdog(
            self.config.watchdog_interval, self.config.pause_threshold
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="gateway-dispatcher"
        )
        if self.config.unix_path is not None:
            path = Path(self.config.unix_path)
            path.unlink(missing_ok=True)
            self.server = await asyncio.start_unix_server(
                self._handle_connection, path=str(path)
            )
            self.address = str(path)
        else:
            self.server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
            sock = self.server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])
        return self

    def _needs_service_start(self) -> bool:
        return self.service is not None and self.service._housekeeper is None

    @classmethod
    async def restore(
        cls,
        config: GatewayConfig,
        service_config: ServiceConfig,
        *,
        journal_path: Path | str,
        checkpoint_path: Path | str,
        scale: float = 1e-3,
        skew=None,
        seed: int = 0,
        predecessor: "AdmissionGateway | None" = None,
    ) -> "AdmissionGateway":
        """Rebuild a killed gateway from its journal + checkpoint.

        The logical timeline resumes just past the last stamp either
        log recorded — the crash blackout does not consume logical time
        (it is recorded as a :class:`ClockPause` instead of warping
        in-flight deadlines).  Decided journal entries re-seed the
        idempotency cache; undecided ones are re-submitted at their
        original stamps before the listener reopens, so the restored
        planner state matches a control replay of the same journal.
        """
        ops = load_journal(journal_path)
        last_stamp = max(
            (op.get("t", 0.0) for op in ops), default=service_config.start
        )
        checkpoint_ops = CheckpointLog(checkpoint_path).load()
        last_checkpoint = max(
            (op.get("t", 0.0) for op in checkpoint_ops),
            default=service_config.start,
        )
        resume_at = max(last_stamp, last_checkpoint) + _RESUME_SLACK
        clock = WallClock(scale=scale, start=resume_at).anchor()
        service = await AdmissionService.restore(
            checkpoint_path, config=replace(service_config, monitored=False),
            clock=clock, skew=skew,
        )
        gateway = cls(
            config, service_config, clock=clock, seed=seed,
            journal_path=journal_path, checkpoint_path=checkpoint_path,
            _service=service,
        )
        for op in ops:
            if op.get("op") == "decided":
                ticket = AdmissionTicket.from_dict(op["ticket"])
                gateway.cache.put(replace(ticket, duplicate=False))
        gateway._replay_debt = undecided_entries(ops)
        if predecessor is not None:
            gateway.archived_services = [
                *predecessor.archived_services,
                *([] if predecessor.service is None
                  else [predecessor.service]),
            ]
            gateway.archived_traces = [
                *predecessor.archived_traces, predecessor.trace,
            ]
        return await gateway.start()

    async def _replay_journal_debt(self) -> None:
        debt, self._replay_debt = self._replay_debt, []
        for op in debt:
            request = EventRequest.from_dict(op["request"])
            stamp = op["t"]
            await self._settle_before(stamp)
            ticket = await self._decide_settled(request, stamp,
                                                replayed=True)
            self.replayed += 1
            del ticket  # the original client re-learns the fate by retrying
        now = self.clock.now()
        if self.journal is not None:
            self.journal.append({
                "op": "restored", "t": now, "replayed": self.replayed,
            })
        self.trace.add_event(
            now, TraceEventKind.GATEWAY_RESTORED, "gateway",
            detail=f"journal replayed {self.replayed} undecided entr"
                   f"{'y' if self.replayed == 1 else 'ies'}",
        )

    # -- the decision pipeline ---------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._pipeline is not None
        while True:
            request, waiter = await self._pipeline.get()
            try:
                ticket = await self._decide(request)
                if not waiter.done():
                    waiter.set_result(ticket)
            except asyncio.CancelledError:
                if not waiter.done():
                    waiter.cancel()
                raise
            except Exception as exc:
                if not waiter.done():
                    waiter.set_exception(exc)
            finally:
                self._pipeline.task_done()

    async def _settle_before(self, stamp: float) -> None:
        """Yield until no in-flight completion is due at or before
        ``stamp`` — the wall-clock mirror of ``VirtualClock.advance``'s
        wake-then-settle ordering, so retire-before-admit interleavings
        match the control replay."""
        for spin in range(self.config.settle_rounds):
            if not self._pending_due(stamp):
                return
            if spin and spin % 16 == 0:
                # a due executor may still be on a timer a few hundred
                # microseconds out — grant real time, not just cycles
                await asyncio.sleep(self.clock.scale * 0.05)
            else:
                await asyncio.sleep(0)
        self.settle_overruns += 1

    def _pending_due(self, stamp: float) -> list[str]:
        if self.service is not None:
            return self.service.pending_due(stamp)
        due: list[str] = []
        for shard in self.fabric.shards:
            if shard.alive:
                due.extend(shard.service.pending_due(stamp))
        return due

    async def _decide(self, request: EventRequest) -> AdmissionTicket:
        stamp = self.clock.now()
        await self._settle_before(stamp)
        stamp = max(stamp, self.clock.now())
        await self._settle_before(stamp)
        return await self._decide_settled(request, stamp)

    async def _decide_settled(
        self, request: EventRequest, stamp: float, *, replayed: bool = False,
    ) -> AdmissionTicket:
        rid = request.request_id
        self.ingested += 1
        if self.journal is not None and not replayed:
            self.journal.append(
                {"op": "ingest", "t": stamp, "request": request.to_dict()}
            )
        self.trace.add_event(
            stamp, TraceEventKind.INGEST, rid, detail=f"stamp={stamp:g}"
        )
        cached = self.cache.get(rid)
        if cached is not None:
            ticket = replace(cached, duplicate=True)
        else:
            ticket = await self._submit(request, stamp)
            self.cache.put(ticket)
        if self.journal is not None:
            self.journal.append({
                "op": "decided", "t": stamp, "id": rid,
                "ticket": ticket.to_dict(),
            })
        self.trace.add_event(
            stamp, TraceEventKind.RESPONSE, rid,
            detail=ticket.decision.value
                   + (" duplicate" if ticket.duplicate else "")
                   + (" replayed" if replayed else ""),
        )
        self.responded += 1
        return ticket

    async def _submit(
        self, request: EventRequest, stamp: float
    ) -> AdmissionTicket:
        if self.service is not None:
            return await self.service.submit(request, at=stamp)
        return await self.fabric.router.submit(request, at=stamp)

    # -- the socket edge ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        if self.killed or len(self._writers) >= self.config.max_connections:
            self.connections_rejected += 1
            writer.close()
            return
        self.connections_total += 1
        self._conn_seq += 1
        self._writers.add(writer)
        try:
            await self._serve_frames(reader, writer)
        except FrameTooLarge as exc:
            self.oversized_frames += 1
            await self._best_effort_error(writer, str(exc))
        except FrameTimeout:
            self.timeouts += 1
        except TornFrame:
            self.torn_frames += 1
        except FrameError as exc:
            self.protocol_errors += 1
            await self._best_effort_error(writer, str(exc))
        except (ConnectionError, OSError):
            pass  # peer reset mid-write
        except asyncio.CancelledError:
            # kill() cancelled us; the task is loop-owned, so finishing
            # quietly here keeps asyncio's stream callback from logging
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _serve_frames(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cid = self._conn_seq
        while not self.killed:
            payload = await read_frame(
                reader,
                max_frame=self.config.max_frame_bytes,
                idle_timeout=self.config.idle_timeout_s,
                read_timeout=self.config.read_timeout_s,
            )
            if payload is None:
                return
            kind = payload.get("kind")
            if kind == "ping":
                await write_frame(
                    writer, {"kind": "pong", "now": self.clock.now()}
                )
                continue
            if kind != "submit":
                self.protocol_errors += 1
                await write_frame(
                    writer, error_payload(f"unknown frame kind {kind!r}")
                )
                continue
            try:
                request = parse_request(payload)
            except FrameError as exc:
                self.protocol_errors += 1
                await write_frame(writer, error_payload(str(exc)))
                continue
            ticket = await self._admit_or_reject_at_edge(request, cid)
            await write_frame(writer, ticket_payload(ticket))

    async def _admit_or_reject_at_edge(
        self, request: EventRequest, cid: int
    ) -> AdmissionTicket:
        """Enqueue into the bounded pipeline, or reject at the edge.

        Edge rejections (draining, pipeline full) never reach the
        journal or the backend — a control replay must not see them.
        """
        assert self._pipeline is not None
        now = self.clock.now()
        if self.draining:
            self.draining_rejections += 1
            ticket = AdmissionTicket(
                request.request_id, Decision.REJECT_DRAINING, now,
                detail="gateway draining",
            )
            self.trace.add_event(
                now, TraceEventKind.RESPONSE, request.request_id,
                detail=f"{ticket.decision.value} edge",
            )
            return ticket
        waiter: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        try:
            self._pipeline.put_nowait((request, waiter))
        except asyncio.QueueFull:
            self.busy_rejections += 1
            bound = self.config.max_in_flight
            ticket = AdmissionTicket(
                request.request_id, Decision.REJECT_BUSY, now,
                detail=f"pipeline full (depth={bound}/{bound}) — "
                       "back off and retry",
            )
            self.trace.add_event(
                now, TraceEventKind.RESPONSE, request.request_id,
                detail=f"{ticket.decision.value} depth={bound}/{bound} edge",
            )
            return ticket
        return await waiter

    async def _best_effort_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        try:
            await write_frame(writer, error_payload(message))
        except (ConnectionError, OSError):
            pass

    # -- clock robustness --------------------------------------------------

    def _on_clock_pause(self, pause: ClockPause) -> None:
        """A stalled loop / suspended process is a real divergence."""
        detail = (
            f"loop stalled {pause.observed:g}tu where {pause.expected:g}tu "
            "was expected"
        )
        self.trace.add_event(
            pause.at, TraceEventKind.CLOCK_PAUSE, "clock", detail=detail
        )
        if self.journal is not None:
            self.journal.append({
                "op": "clock_pause", "t": pause.at,
                "expected": pause.expected, "observed": pause.observed,
            })
        if self.service is not None:
            self.service.note_clock_pause(pause.at, detail)
        else:
            for shard in self.fabric.shards:
                if shard.alive:
                    shard.service.note_clock_pause(pause.at, detail)

    # -- shutdown ----------------------------------------------------------

    def request_shutdown(self) -> None:
        """SIGTERM semantics, idempotent across repeats.

        First call: graceful drain — stop accepting, answer
        ``REJECT_DRAINING`` at the edge, decide everything already in
        the pipeline, then drain the backend (explicit drain-cutoff
        fates).  Second call while draining: force an immediate
        checkpoint-and-exit.  Further calls: no-ops.
        """
        self.shutdown_signals += 1
        if self.killed or (
            self.terminated is not None and self.terminated.is_set()
        ):
            return
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain())
        else:
            self.force_exit()

    async def _drain(self) -> DrainReport | None:
        self.draining = True
        now = self.clock.now()
        if self.journal is not None:
            self.journal.append({"op": "drain", "t": now})
        self.trace.add_event(
            now, TraceEventKind.MODE_CHANGE, "gateway", detail="draining"
        )
        await self._close_listener()
        assert self._pipeline is not None
        await self._pipeline.join()   # decide everything already accepted
        report: DrainReport | None = None
        if self.service is not None:
            report = await self.service.drain(
                max_wait=self.config.drain_max_wait
            )
        else:
            await self.fabric.drain()
        if self.journal is not None:
            self.journal.append(
                {"op": "drained", "t": self.clock.now()}
            )
        self._teardown()
        if self.terminated is not None:
            self.terminated.set()
        return report

    def force_exit(self) -> None:
        """Immediate checkpoint-and-exit: the journal and write-ahead
        checkpoint are already durable, so there is nothing to flush —
        just stop, hard, and mark termination."""
        if self.killed:
            return
        if self.journal is not None:
            self.journal.append(
                {"op": "forced_exit", "t": self.clock.now()}
            )
        if self._drain_task is not None and not self._drain_task.done():
            self._drain_task.cancel()
        self.kill(_journal_crash=False)
        if self.terminated is not None:
            self.terminated.set()

    def kill(self, *, _journal_crash: bool = True) -> None:
        """Crash simulation: stop everything abruptly, mid-flight.

        Nothing is written — the journal and checkpoint are the only
        survivors, exactly as in a real power loss.
        """
        if self.killed:
            return
        self.killed = True
        self.clock.stop_watchdog()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        for task in list(self._handlers):
            task.cancel()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()
        if self.server is not None:
            self.server.close()
            self.server = None
        if self.service is not None:
            self.service.kill(cancel_clock=False)
        else:
            for shard in self.fabric.shards:
                if shard.alive:
                    self.fabric.kill_shard(shard.index)

    async def _close_listener(self) -> None:
        if self.server is not None:
            self.server.close()
            try:
                await self.server.wait_closed()
            except Exception:
                pass
            self.server = None

    def _teardown(self) -> None:
        self.clock.stop_watchdog()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            self._dispatcher = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    # -- verification ------------------------------------------------------

    def merged_trace(self) -> ExecutionTrace:
        """Every service incarnation + the gateway plane, one timeline.

        Ordering is (time, plane, incarnation, append order) with the
        gateway plane last at equal instants — the same deterministic
        merge discipline as the fabric's.
        """
        feed: list[tuple[float, int, int, int, TraceEvent]] = []
        services: list[ExecutionTrace] = []
        if self.fabric is not None:
            services.append(self.fabric.merged_trace())
        else:
            services.extend(
                s.trace for s in
                (*self.archived_services, self.service)
            )
        for incarnation, trace in enumerate(services):
            for seq, event in enumerate(trace.events):
                feed.append((event.time, 0, incarnation, seq, event))
        gateway_planes = [*self.archived_traces, self.trace]
        for incarnation, trace in enumerate(gateway_planes):
            for seq, event in enumerate(trace.events):
                feed.append((event.time, 1, incarnation, seq, event))
        merged = ExecutionTrace()
        merged.events = [
            event for _t, _p, _i, _q, event in sorted(
                feed, key=lambda entry: entry[:4]
            )
        ]
        return merged

    def finish(self, horizon: float | None = None):
        """Post-hoc verification sweep over the merged timeline.

        Returns ``(report, merged_trace)``; the report carries every
        protocol-monitor violation (empty = clean).
        """
        from repro.verify.fabric import FabricProtocolMonitor
        from repro.verify.gateway import GatewayProtocolMonitor
        from repro.verify.invariants import run_monitors

        at = horizon if horizon is not None else self.clock.now()
        merged = self.merged_trace()
        # the fabric monitor (not the per-service one) understands
        # resumed RELEASEs across incarnations — a restore drill's
        # re-announcements are legal, not duplicate admissions
        monitors = [
            GatewayProtocolMonitor(),
            FabricProtocolMonitor(
                replan_window=self.service_config.replan_window
            ),
        ]
        report = run_monitors(merged, monitors, horizon=at)
        return report, merged

    # -- reporting ---------------------------------------------------------

    def metrics(self) -> dict:
        backend = (
            self.fabric.metrics() if self.fabric is not None
            else self.service.metrics()
        )
        return {
            "ingested": self.ingested,
            "responded": self.responded,
            "replayed": self.replayed,
            "busy_rejections": self.busy_rejections,
            "draining_rejections": self.draining_rejections,
            "torn_frames": self.torn_frames,
            "oversized_frames": self.oversized_frames,
            "timeouts": self.timeouts,
            "protocol_errors": self.protocol_errors,
            "connections_total": self.connections_total,
            "connections_rejected": self.connections_rejected,
            "settle_overruns": self.settle_overruns,
            "shutdown_signals": self.shutdown_signals,
            "clock": {
                "scale": self.clock.scale,
                "pauses": len(self.clock.pauses),
                "late_wakeups": self.clock.late_wakeups,
                "max_lateness": self.clock.max_lateness,
            },
            "backend": backend,
        }
