"""Regenerates Table 3: Polling Server *executions* (framework on the
emulated RTSJ VM with the calibrated overhead model).

The paper's signature effects are asserted: homogeneous sets barely
interrupt (the 1 tu capacity slack absorbs overheads), heterogeneous
sets show a clear interrupted ratio, and served ratios fall below the
Table 2 simulations because handlers are not resumable.
"""

from __future__ import annotations

from conftest import run_table_benchmark, run_arm


def bench_table3_polling_executions(benchmark):
    measured = run_table_benchmark(benchmark, 3)
    homog = [(1, 0.0), (2, 0.0), (3, 0.0)]
    hetero = [(1, 2.0), (2, 2.0), (3, 2.0)]
    assert all(measured[k].air <= 0.06 for k in homog)
    assert all(measured[k].air > 0.0 for k in hetero)
    # the non-resumability penalty: below the ideal-simulation ASR
    sim = run_arm("ps_sim")
    assert all(measured[k].asr < sim[k].asr for k in homog)
