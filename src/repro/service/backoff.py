"""Exponential backoff with jitter, deterministic under a seed.

One policy object serves every retry loop in the repo:

* the admission-service *client* sleeps ``delay(attempt, rng)`` logical
  time units between retries of a retryable rejection (breaker open,
  queue full), so synchronized clients de-correlate instead of
  re-storming the service in lockstep;
* the campaign's hardened retry path derives its regeneration seed from
  ``seed_bump(seed, attempt)`` — exponentially widening, jittered seed
  offsets replace the old bare ``seed + attempt * bump`` arithmetic, so
  consecutive retries explore genuinely different random streams while
  staying bit-reproducible from the master seed.

Everything is driven by :class:`~repro.workload.rng.PortableRandom`, so
two processes with the same seed compute the same schedule on any
platform — a retry storm can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.rng import PortableRandom

__all__ = ["BackoffPolicy", "DEFAULT_BACKOFF"]

_JITTER_MODES = ("full", "equal", "none")

#: splitmix-style odd multiplier for per-(seed, attempt) stream keys
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 63) - 1


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base * factor**(attempt-1)``, capped and
    jittered.

    ``jitter`` selects the AWS-style variants: ``"full"`` draws uniformly
    from ``[0, raw]``, ``"equal"`` from ``[raw/2, raw]``, ``"none"``
    returns ``raw`` unchanged.  ``attempt`` is 1-based.
    """

    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: str = "full"

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base must be > 0, got {self.base}")
        if self.factor < 1:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.base:
            raise ValueError(
                f"max_delay must be >= base, got {self.max_delay}"
            )
        if self.jitter not in _JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {_JITTER_MODES}, got {self.jitter!r}"
            )

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered exponential delay for 1-based ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.base * self.factor ** (attempt - 1), self.max_delay)

    def delay(self, attempt: int, rng: PortableRandom) -> float:
        """One jittered delay, consuming ``rng``."""
        raw = self.raw_delay(attempt)
        if self.jitter == "none":
            return raw
        if self.jitter == "equal":
            return raw / 2.0 + rng.uniform(0.0, raw / 2.0)
        return rng.uniform(0.0, raw)

    def schedule(self, seed: int, attempts: int) -> tuple[float, ...]:
        """The full delay sequence a client with ``seed`` would sleep.

        Deterministic: same (policy, seed, attempts) — same tuple,
        every platform.
        """
        rng = PortableRandom(seed)
        return tuple(
            self.delay(attempt, rng) for attempt in range(1, attempts + 1)
        )

    def seed_bump(self, seed: int, attempt: int, scale: int = 1) -> int:
        """A deterministic, jittered seed offset for retry ``attempt``.

        Bumps grow exponentially and are drawn from disjoint ranges
        (``scale * [factor**(a-1), factor**a)`` for integer factors), so
        no two attempts of one run ever regenerate from the same seed and
        the whole sequence is reproducible from ``(seed, attempt)`` alone
        — no RNG state threads through the retry loop.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        growth = int(round(self.factor ** (attempt - 1)))
        growth = max(growth, 1)
        if self.jitter == "none":
            return scale * growth
        span = max(int(round(self.factor ** attempt)) - growth, 1)
        rng = PortableRandom(((seed * _MIX) ^ attempt) & _MASK)
        return scale * (growth + rng.randint(0, span - 1))


#: the repo-wide default: full jitter, half-second base, 30 s cap
DEFAULT_BACKOFF = BackoffPolicy()
