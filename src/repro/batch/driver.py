"""Sharded driver for population-scale batched campaigns.

``run_batched_campaign`` turns the batched kernel into a 10^4–10^5-system
sweep machine:

* systems are generated *per shard* inside the worker
  (:meth:`RandomSystemGenerator.generate_slice` replays the master-seed
  fan-out bit-identically), so neither the parent nor any worker ever
  materialises the whole population;
* shards fan out over the existing campaign multiprocessing executor
  (:func:`repro.experiments.campaign._parallel_map`) and fold back in
  deterministic shard order, so tables are bit-identical to a
  one-worker sweep;
* the parent appends one JSONL record per finished shard (flushed +
  fsynced); an interrupted sweep resumes from the checkpoint, skipping
  completed shards — a truncated final line (a mid-write kill) is
  skipped and that shard simply re-runs;
* every shard cross-validates a seeded sample of its systems (at least
  ``verify_fraction`` of the shard, default 5%) against the per-system
  reference kernel via
  :func:`repro.verify.batch_differential_check` — *exact* equality, the
  reference stays the oracle;
* systems outside the batch envelope fall back to the reference path
  per system, counted and logged, never silently (``mode="force"``
  raises instead).
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..sim.metrics import RunMetrics, SetMetrics, aggregate
from ..workload.generator import PAPER_SETS, RandomSystemGenerator
from ..workload.rng import PortableRandom
from ..workload.spec import GenerationParameters
from .kernel import simulate_batch
from .soa import BatchTables, BatchUnsupported, ensure_batchable

__all__ = [
    "BATCH_ARMS",
    "BatchCampaignResult",
    "BatchShardRecord",
    "BatchVerificationError",
    "run_batched_campaign",
]

logger = logging.getLogger("repro.batch")

#: the arms the batched kernel can serve (the campaign's sim arms)
BATCH_ARMS = ("ps_sim", "ds_sim")
_ARM_POLICY = {"ps_sim": "polling", "ds_sim": "deferrable"}


class BatchVerificationError(RuntimeError):
    """The seeded differential sample found batch/reference mismatches.

    This is a *stop-the-line* error: the batched kernel promises
    bit-identical metrics, so any mismatch means the batch (or the
    reference) kernel is wrong and every result of the sweep is suspect.
    """


def _metrics_to_dict(m: RunMetrics) -> dict:
    return {
        "released": m.released,
        "served": m.served,
        "interrupted": m.interrupted,
        "average_response_time": m.average_response_time,
        "response_times": list(m.response_times),
    }


def _metrics_from_dict(d: dict) -> RunMetrics:
    return RunMetrics(
        released=d["released"],
        served=d["served"],
        interrupted=d["interrupted"],
        average_response_time=d["average_response_time"],
        response_times=tuple(d["response_times"]),
    )


@dataclass
class BatchShardRecord:
    """Outcome of one shard: per-system metrics plus audit counters."""

    set_key: tuple[float, float]
    shard: int
    start: int
    count: int
    status: str  # "ok" (computed this run) | "resumed" (from checkpoint)
    fallbacks: int = 0
    verified: int = 0
    mismatches: list[str] = field(default_factory=list)
    #: arm -> per-system metrics, in system order (may be dropped after
    #: aggregation when ``keep_runs=False``)
    metrics: dict[str, list[RunMetrics]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "set_key": list(self.set_key),
            "shard": self.shard,
            "start": self.start,
            "count": self.count,
            "status": self.status,
            "fallbacks": self.fallbacks,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "metrics": {
                arm: [_metrics_to_dict(m) for m in runs]
                for arm, runs in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchShardRecord":
        return cls(
            set_key=tuple(data["set_key"]),
            shard=data["shard"],
            start=data["start"],
            count=data["count"],
            status=data["status"],
            fallbacks=data.get("fallbacks", 0),
            verified=data.get("verified", 0),
            mismatches=list(data.get("mismatches", ())),
            metrics={
                arm: [_metrics_from_dict(m) for m in runs]
                for arm, runs in data.get("metrics", {}).items()
            },
        )


@dataclass
class BatchCampaignResult:
    """Aggregated sweep: per-arm tables + shard audit trail.

    ``tables`` has the same shape as
    :class:`repro.experiments.campaign.CampaignResult.tables` —
    ``tables[arm][(density, std)] -> SetMetrics`` — and is bit-identical
    to running :func:`run_campaign` over the same sets' sim arms.  With
    ``keep_runs=False`` the per-run tuples are dropped (``runs=()``)
    and the AART/AIR/ASR means are accumulated streaming, in the same
    left-to-right order Python's ``sum`` folds them, so the three table
    cells stay bit-identical while memory stays bounded.
    """

    tables: dict[str, dict[tuple[float, float], SetMetrics]] = field(
        default_factory=dict
    )
    shards: list[BatchShardRecord] = field(default_factory=list)
    systems: int = 0
    fallbacks: int = 0
    verified: int = 0
    resumed: int = 0
    elapsed_s: float = 0.0

    @property
    def runs_per_sec(self) -> float:
        """(arm, system) runs completed per wall-clock second."""
        runs = sum(len(table) and self.systems for table in self.tables.values())
        return runs / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def systems_per_sec(self) -> float:
        """Distinct systems swept per wall-clock second."""
        return self.systems / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def table(self, arm: str) -> dict[tuple[float, float], SetMetrics]:
        if arm not in self.tables:
            raise KeyError(f"unknown arm {arm!r}; have {sorted(self.tables)}")
        return self.tables[arm]


def _batch_shard_worker(task: tuple) -> dict:
    """Pool entry point: simulate one shard, verify its seeded sample."""
    (params, arms, shard, start, count, verify_fraction, sample_seed,
     mode) = task
    from ..experiments.campaign import simulate_system
    from ..verify.differential import batch_differential_check

    generator = RandomSystemGenerator(params)
    systems = generator.generate_slice(start, count)
    key = (params.task_density, params.std_deviation)

    supported: list[int] = []
    fallback: list[int] = []
    for i, system in enumerate(systems):
        try:
            ensure_batchable(system, _ARM_POLICY[arms[0]])
            supported.append(i)
        except BatchUnsupported:
            if mode == "force":
                raise
            fallback.append(i)

    metrics: dict[str, list[RunMetrics | None]] = {
        arm: [None] * count for arm in arms
    }
    if supported:
        tables = BatchTables.from_systems([systems[i] for i in supported])
        for arm in arms:
            batch = simulate_batch(tables, _ARM_POLICY[arm])
            for slot, i in enumerate(supported):
                metrics[arm][i] = batch.run_metrics(slot)
    for i in fallback:
        for arm in arms:
            metrics[arm][i] = simulate_system(
                systems[i], policy=_ARM_POLICY[arm]
            ).metrics

    # seeded differential sample: >= verify_fraction of the shard's
    # batch-served systems, re-run on the reference kernel and compared
    # exactly (the fallback systems already took the reference path)
    mismatches: list[str] = []
    verified = 0
    if verify_fraction > 0 and supported:
        k = min(
            len(supported),
            max(1, math.ceil(verify_fraction * count)),
        )
        rng = PortableRandom(sample_seed)
        pool = list(supported)
        for _ in range(k):
            i = pool.pop(rng.randint(0, len(pool) - 1))
            verified += 1
            for arm in arms:
                mismatches.extend(
                    batch_differential_check(
                        systems[i], _ARM_POLICY[arm], metrics[arm][i]
                    )
                )

    record = BatchShardRecord(
        set_key=key, shard=shard, start=start, count=count, status="ok",
        fallbacks=len(fallback), verified=verified, mismatches=mismatches,
        metrics={arm: list(runs) for arm, runs in metrics.items()},
    )
    return record.to_dict()


def _load_shard_checkpoint(path: Path) -> dict[tuple, BatchShardRecord]:
    """Completed shard records keyed ``(set_key, shard)``; skips the
    truncated final line a mid-write kill can leave behind."""
    done: dict[tuple, BatchShardRecord] = {}
    if not path.exists():
        return done
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = BatchShardRecord.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue
            done[(record.set_key, record.shard)] = record
    return done


def _append_shard_checkpoint(path: Path | None,
                             record: BatchShardRecord) -> None:
    """Durably append one shard record (parent process only)."""
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    prefix = ""
    if path.exists() and path.stat().st_size:
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                prefix = "\n"
    with path.open("a") as fh:
        fh.write(prefix + json.dumps(record.to_dict()) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def run_batched_campaign(
    sets: tuple[GenerationParameters, ...] = PAPER_SETS,
    arms: tuple[str, ...] = BATCH_ARMS,
    shard_size: int = 512,
    workers: int = 1,
    checkpoint_path: Path | str | None = None,
    verify_fraction: float = 0.05,
    verify_seed: int = 20260809,
    mode: str = "auto",
    keep_runs: bool = True,
    progress: Callable[[BatchShardRecord], None] | None = None,
    cycle: str = "off",
) -> BatchCampaignResult:
    """Sweep every set through the batched kernel, shard by shard.

    Shards of ``shard_size`` systems fan out over ``workers`` processes;
    the parent checkpoints each finished shard to ``checkpoint_path``
    (JSONL) and aggregates streaming, so peak memory is one shard per
    worker regardless of population size.  Any differential-sample
    mismatch raises :class:`BatchVerificationError` after the sweep
    finishes (all mismatches are reported at once).  ``mode="auto"``
    routes unsupported systems through the per-system reference kernel
    (counted in ``fallbacks`` and logged); ``mode="force"`` raises
    :class:`BatchUnsupported` instead.  ``keep_runs=False`` drops the
    per-run metric tuples after aggregation (``SetMetrics.runs == ()``)
    to keep 10^5-system sweeps bounded.

    ``cycle`` is accepted for driver parity with
    :func:`~repro.experiments.campaign.run_campaign` but always stands
    down: every batched system carries a Poisson aperiodic stream, which
    makes hyperperiod fast-forwarding inapplicable.  Any value other
    than ``"off"`` is counted in :data:`repro.cycle.STAND_DOWNS` and
    (for ``"fastforward"``) logged, then the sweep proceeds unchanged.
    """
    from ..sim.engine import CYCLE_MODES

    if cycle not in CYCLE_MODES:
        raise ValueError(
            f"cycle must be one of {CYCLE_MODES}, got {cycle!r}"
        )
    if cycle != "off":
        from ..cycle.tracker import _stand_down

        _stand_down("batched-aperiodic-stream", cycle)
    if mode not in ("auto", "force"):
        raise ValueError(f"mode must be 'auto' or 'force', got {mode!r}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if not 0.0 <= verify_fraction <= 1.0:
        raise ValueError(
            f"verify_fraction must be in [0, 1], got {verify_fraction}"
        )
    for arm in arms:
        if arm not in _ARM_POLICY:
            raise BatchUnsupported(
                f"arm {arm!r} cannot be batched (batchable: "
                f"{', '.join(BATCH_ARMS)}); use run_campaign for "
                "execution arms"
            )
    path = Path(checkpoint_path) if checkpoint_path is not None else None
    checkpointed = _load_shard_checkpoint(path) if path is not None else {}

    # deterministic shard plan: set-major, ascending start index
    plan: list[tuple] = []
    shard_index = 0
    for params in sets:
        nb = params.nb_generation
        for shard, lo in enumerate(range(0, nb, shard_size)):
            count = min(shard_size, nb - lo)
            sample_seed = verify_seed + 1_000_003 * shard_index
            plan.append(
                (params, arms, shard, lo, count, verify_fraction,
                 sample_seed, mode)
            )
            shard_index += 1

    from ..experiments.campaign import _parallel_map

    t0 = time.monotonic()
    pending = [
        task for task in plan
        if ((task[0].task_density, task[0].std_deviation), task[2])
        not in checkpointed
    ]
    fresh = iter(_parallel_map(_batch_shard_worker, pending, workers))

    result = BatchCampaignResult(tables={arm: {} for arm in arms})
    # streaming accumulators: (set_key, arm) -> [n, sum_aart, sum_air,
    # sum_asr, runs-or-None] — sums fold left-to-right in system order,
    # the same order aggregate()'s Python sum() uses
    acc: dict[tuple, list] = {}
    set_order: list[tuple[float, float]] = []
    for task in plan:
        params, _, shard = task[0], task[1], task[2]
        key = (params.task_density, params.std_deviation)
        if key not in set_order:
            set_order.append(key)
        cached = checkpointed.get((key, shard))
        if cached is not None:
            record = cached
            record.status = "resumed"
            result.resumed += 1
        else:
            record = BatchShardRecord.from_dict(next(fresh))
            _append_shard_checkpoint(path, record)
        result.systems += record.count
        result.fallbacks += record.fallbacks
        result.verified += record.verified
        for arm in arms:
            runs = record.metrics.get(arm, ())
            slot = acc.setdefault(
                (key, arm), [0, 0.0, 0.0, 0.0, [] if keep_runs else None]
            )
            for m in runs:
                slot[0] += 1
                slot[1] += m.average_response_time
                slot[2] += m.interrupted_ratio
                slot[3] += m.served_ratio
                if slot[4] is not None:
                    slot[4].append(m)
        if not keep_runs:
            record.metrics = {}
        result.shards.append(record)
        if progress is not None:
            progress(record)

    for key in set_order:
        for arm in arms:
            n, s_aart, s_air, s_asr, runs = acc.get(
                (key, arm), (0, 0.0, 0.0, 0.0, None)
            )
            if not n:
                continue
            if runs is not None:
                result.tables[arm][key] = aggregate(runs)
            else:
                result.tables[arm][key] = SetMetrics(
                    aart=s_aart / n, air=s_air / n, asr=s_asr / n, runs=()
                )
    result.elapsed_s = time.monotonic() - t0

    if result.fallbacks:
        logger.warning(
            "batched campaign fell back to the reference kernel for "
            "%d system(s) outside the batch envelope", result.fallbacks,
        )
    mismatches = [m for rec in result.shards for m in rec.mismatches]
    if mismatches:
        raise BatchVerificationError(
            f"{len(mismatches)} differential mismatch(es) between the "
            "batched and reference kernels:\n" + "\n".join(mismatches)
        )
    return result
