"""Ablation: horizon censoring in the paper's served ratios.

The paper cuts every run at ten server periods, so late arrivals that
would eventually be served count as unserved ("the events which cannot
be scheduled during the first ten periods").  Sweeping the horizon
quantifies that censoring: the served ratio climbs as the window grows
for underloaded sets, while genuinely overloaded sets stay down —
separating censoring loss from capacity loss in Tables 2-5.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.campaign import simulate_system
from repro.sim.metrics import aggregate
from repro.workload import GenerationParameters, RandomSystemGenerator

HORIZONS = (10, 20, 40)

UNDERLOADED = GenerationParameters(
    task_density=1.0, average_cost=3.0, std_deviation=0.0,
    server_capacity=4.0, server_period=6.0, nb_generation=10, seed=1983,
)   # demand 0.5 tu/tu vs supply 0.67: everything clears eventually

OVERLOADED = replace(UNDERLOADED, task_density=3.0)
#   demand 1.5 tu/tu vs supply 0.67: backlog grows without bound


def sweep():
    rows = {}
    for label, base in (("underloaded", UNDERLOADED),
                        ("overloaded", OVERLOADED)):
        for horizon in HORIZONS:
            params = replace(base, horizon_periods=horizon)
            runs = [
                simulate_system(system, "polling").metrics
                for system in RandomSystemGenerator(params).generate()
            ]
            rows[(label, horizon)] = aggregate(runs)
    return rows


def bench_ablation_horizon_censoring(benchmark):
    rows = benchmark(sweep)
    print()
    print(f"{'set':>12} {'periods':>8} {'ASR':>6} {'AART':>8}")
    for (label, horizon), metrics in rows.items():
        print(f"{label:>12} {horizon:8d} {metrics.asr:6.2f} "
              f"{metrics.aart:8.2f}")
    # censoring: the underloaded set's ASR climbs with the window
    asr_under = [rows[("underloaded", h)].asr for h in HORIZONS]
    assert asr_under[0] < asr_under[-1]
    assert asr_under[-1] > 0.9
    # capacity: the overloaded set cannot recover by waiting
    asr_over = [rows[("overloaded", h)].asr for h in HORIZONS]
    assert asr_over[-1] < 0.6
