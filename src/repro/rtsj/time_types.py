"""RTSJ high-resolution time types.

Faithful functional subset of ``javax.realtime.HighResolutionTime`` and
its concrete subclasses :class:`AbsoluteTime` and :class:`RelativeTime`.
A time value is a (milliseconds, nanoseconds) pair; following the RTSJ,
the canonical form keeps ``0 <= nanos < 1_000_000`` with the sign carried
by the whole value, and all arithmetic is exact integer arithmetic.

The emulated VM works in integer nanoseconds throughout; these classes
are thin, hashable value objects over that representation.
"""

from __future__ import annotations

from functools import total_ordering

__all__ = ["HighResolutionTime", "AbsoluteTime", "RelativeTime", "NANOS_PER_MILLI"]

NANOS_PER_MILLI = 1_000_000


@total_ordering
class HighResolutionTime:
    """Base time value: an exact count of nanoseconds."""

    __slots__ = ("_ns",)

    def __init__(self, millis: int = 0, nanos: int = 0) -> None:
        if not isinstance(millis, int) or not isinstance(nanos, int):
            raise TypeError("millis and nanos must be integers")
        self._ns = millis * NANOS_PER_MILLI + nanos

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_nanos(cls, total_nanos: int):
        """Build from a raw nanosecond count."""
        if not isinstance(total_nanos, int):
            raise TypeError(f"total_nanos must be int, got {type(total_nanos).__name__}")
        obj = cls.__new__(cls)
        obj._ns = total_nanos
        return obj

    @classmethod
    def from_units(cls, units: float):
        """Build from fractional *time units* (1 tu = 1 ms), rounding to
        the nearest nanosecond."""
        return cls.from_nanos(round(units * NANOS_PER_MILLI))

    # -- accessors ---------------------------------------------------------------

    @property
    def milliseconds(self) -> int:
        """The milliseconds component (truncated toward negative infinity)."""
        return self._ns // NANOS_PER_MILLI

    @property
    def nanoseconds(self) -> int:
        """The nanoseconds component, ``0 <= n < 1_000_000``."""
        return self._ns % NANOS_PER_MILLI

    @property
    def total_nanos(self) -> int:
        """The exact value as a nanosecond count."""
        return self._ns

    def to_units(self) -> float:
        """The value in fractional time units (1 tu = 1 ms)."""
        return self._ns / NANOS_PER_MILLI

    # -- comparison (same concrete type only, as in the RTSJ) ---------------------

    def _check_comparable(self, other: object) -> "HighResolutionTime":
        if type(other) is not type(self):
            raise TypeError(
                f"cannot compare {type(self).__name__} with "
                f"{type(other).__name__}"
            )
        assert isinstance(other, HighResolutionTime)
        return other

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        assert isinstance(other, HighResolutionTime)
        return self._ns == other._ns

    def __lt__(self, other: object) -> bool:
        return self._ns < self._check_comparable(other)._ns

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._ns))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.milliseconds}, {self.nanoseconds})"


class RelativeTime(HighResolutionTime):
    """A duration (may be negative)."""

    __slots__ = ()

    def add(self, other: "RelativeTime") -> "RelativeTime":
        """Duration + duration -> duration."""
        if not isinstance(other, RelativeTime):
            raise TypeError(f"cannot add {type(other).__name__} to RelativeTime")
        return RelativeTime.from_nanos(self._ns + other._ns)

    def subtract(self, other: "RelativeTime") -> "RelativeTime":
        """Duration - duration -> duration."""
        if not isinstance(other, RelativeTime):
            raise TypeError(
                f"cannot subtract {type(other).__name__} from RelativeTime"
            )
        return RelativeTime.from_nanos(self._ns - other._ns)

    def scale(self, factor: int) -> "RelativeTime":
        """Duration * integer -> duration."""
        if not isinstance(factor, int):
            raise TypeError("scale factor must be an integer")
        return RelativeTime.from_nanos(self._ns * factor)

    def is_negative(self) -> bool:
        """True for durations strictly below zero."""
        return self._ns < 0


class AbsoluteTime(HighResolutionTime):
    """A point on the (virtual) timeline."""

    __slots__ = ()

    def add(self, delta: RelativeTime) -> "AbsoluteTime":
        """Instant + duration -> instant."""
        if not isinstance(delta, RelativeTime):
            raise TypeError(f"cannot add {type(delta).__name__} to AbsoluteTime")
        return AbsoluteTime.from_nanos(self._ns + delta.total_nanos)

    def subtract(self, other):
        """Instant - instant -> duration; instant - duration -> instant."""
        if isinstance(other, AbsoluteTime):
            return RelativeTime.from_nanos(self._ns - other._ns)
        if isinstance(other, RelativeTime):
            return AbsoluteTime.from_nanos(self._ns - other.total_nanos)
        raise TypeError(f"cannot subtract {type(other).__name__} from AbsoluteTime")
