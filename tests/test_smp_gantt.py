"""Per-core Gantt rendering and single-core byte-identity guards."""

from __future__ import annotations

from repro.sim import (
    FixedPriorityPolicy,
    Simulation,
    TraceEventKind,
    svg_gantt,
    svg_gantt_cores,
)
from repro.smp import GlobalFixedPriorityPolicy, MulticoreSimulation
from repro.workload.spec import PeriodicTaskSpec

SPECS = [
    PeriodicTaskSpec("H", cost=2, period=20, priority=9),
    PeriodicTaskSpec("M", cost=3, period=20, priority=5, offset=1),
    PeriodicTaskSpec("L", cost=3, period=20, priority=1),
]


def _multicore_trace(n_cores: int = 2):
    sim = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=n_cores)
    for spec in SPECS:
        sim.add_periodic_task(spec)
    return sim.run(until=10)


class TestPerCoreRendering:
    def test_one_lane_per_core(self):
        svg = svg_gantt_cores(_multicore_trace(), n_cores=2)
        assert svg.count(">core 0</text>") == 1
        assert svg.count(">core 1</text>") == 1
        assert "core 2" not in svg

    def test_migration_glyph_on_destination_lane(self):
        trace = _multicore_trace()
        assert trace.events_of(TraceEventKind.MIGRATION)
        svg = svg_gantt_cores(trace, n_cores=2)
        assert "⇄" in svg
        assert "migration:" in svg

    def test_no_glyph_without_migration(self):
        sim = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=2)
        sim.add_periodic_task(PeriodicTaskSpec("a", cost=1, period=4,
                                               priority=2))
        sim.add_periodic_task(PeriodicTaskSpec("b", cost=1, period=4,
                                               priority=1))
        svg = svg_gantt_cores(sim.run(until=8), n_cores=2)
        assert "⇄" not in svg

    def test_markers_suppressible(self):
        svg = svg_gantt_cores(_multicore_trace(), n_cores=2,
                              show_markers=False)
        assert "⇄" not in svg

    def test_entity_colour_consistent_across_lanes(self):
        # the migrating entity L keeps one fill colour on both lanes
        trace = _multicore_trace()
        svg = svg_gantt_cores(trace, n_cores=2)
        colours = {
            part.split('fill="')[1].split('"')[0]
            for part in svg.split("<rect")
            if "<title>L" in part
        }
        assert len(colours) == 1

    def test_deterministic_output(self):
        assert (
            svg_gantt_cores(_multicore_trace(), n_cores=2)
            == svg_gantt_cores(_multicore_trace(), n_cores=2)
        )

    def test_core_count_inferred_from_trace(self):
        trace = _multicore_trace()
        assert (
            svg_gantt_cores(trace) == svg_gantt_cores(trace, n_cores=2)
        )


class TestSingleCoreByteIdentity:
    """The uniprocessor renderer must be untouched by the SMP work."""

    def test_svg_gantt_identical_for_uni_and_one_core_traces(self):
        uni = Simulation(FixedPriorityPolicy())
        smp = MulticoreSimulation(GlobalFixedPriorityPolicy(), n_cores=1)
        for spec in SPECS:
            uni.add_periodic_task(spec)
            smp.add_periodic_task(spec)
        trace_uni = uni.run(until=10)
        trace_smp = smp.run(until=10)
        # core labels (None vs 0) must not leak into the classic renderer
        assert svg_gantt(trace_uni) == svg_gantt(trace_smp)
