"""Unit tests for trace serialization and the RTSS CLI."""

from __future__ import annotations

import json

import pytest

from repro.sim import (
    ExecutionTrace,
    TraceEventKind,
    diff_traces,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.sim.cli import build_simulation, main as cli_main


def sample_trace() -> ExecutionTrace:
    trace = ExecutionTrace()
    trace.add_segment(0.0, 2.0, "PS", "h1")
    trace.add_segment(2.0, 4.0, "t1")
    trace.add_event(0.0, TraceEventKind.RELEASE, "h1")
    trace.add_event(2.0, TraceEventKind.COMPLETION, "h1", "detail text")
    return trace


class TestTraceIO:
    def test_roundtrip_dict(self):
        trace = sample_trace()
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert diff_traces(trace, rebuilt) == []
        assert rebuilt.events[1].detail == "detail text"

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(sample_trace(), path)
        rebuilt = load_trace(path)
        assert diff_traces(sample_trace(), rebuilt) == []

    def test_schema_version_checked(self):
        data = trace_to_dict(sample_trace())
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            trace_from_dict(data)

    def test_diff_reports_changes(self):
        a, b = sample_trace(), sample_trace()
        b.segments[0] = type(b.segments[0])(0.0, 2.5, "PS", "h1")
        problems = diff_traces(a, b)
        assert problems and "segment 0" in problems[0]

    def test_diff_reports_count_mismatch(self):
        a, b = sample_trace(), sample_trace()
        b.add_event(5.0, TraceEventKind.RELEASE, "x")
        assert any("event count" in p for p in diff_traces(a, b))

    def test_unknown_event_kinds_skipped_with_warning(self):
        """Forward compatibility: a trace written by a newer build may
        carry event kinds this build does not know."""
        data = trace_to_dict(sample_trace())
        data["events"].append(
            {"time": 3.0, "kind": "quantum-entangle", "subject": "h1",
             "detail": ""}
        )
        data["events"].append(
            {"time": 3.5, "kind": "quantum-entangle", "subject": "h2",
             "detail": ""}
        )
        with pytest.warns(UserWarning, match="quantum-entangle.*x2"):
            rebuilt = trace_from_dict(data)
        # the known events all survive, the unknown ones are dropped
        assert diff_traces(sample_trace(), rebuilt) == []

    def test_known_kinds_load_without_warning(self, recwarn):
        trace_from_dict(trace_to_dict(sample_trace()))
        assert len(recwarn) == 0


BASE_CONFIG = {
    "policy": "fp",
    "horizon": 18,
    "periodic_tasks": [
        {"name": "t1", "cost": 2, "period": 6, "priority": 5},
    ],
    "server": {"policy": "polling", "capacity": 3, "period": 6,
               "priority": 10, "name": "PS"},
    "aperiodic_jobs": [
        {"name": "h1", "release": 0, "cost": 2},
    ],
}


class TestBuildSimulation:
    def test_basic_build_and_run(self):
        sim, jobs, horizon = build_simulation(BASE_CONFIG)
        trace = sim.run(until=horizon)
        assert jobs[0].finish_time == 2.0
        assert trace.busy_time("t1") > 0

    def test_edf_with_tbs(self):
        config = {
            "policy": "edf",
            "horizon": 30,
            "periodic_tasks": [
                {"name": "t1", "cost": 2, "period": 6, "priority": 1},
            ],
            "server": {"policy": "tbs", "utilization": 0.3},
            "aperiodic_jobs": [{"name": "a", "release": 1, "cost": 1}],
        }
        sim, jobs, horizon = build_simulation(config)
        sim.run(until=horizon)
        assert jobs[0].finish_time is not None

    def test_tbs_requires_edf(self):
        config = dict(BASE_CONFIG, server={"policy": "tbs", "utilization": 0.3})
        with pytest.raises(ValueError, match="edf"):
            build_simulation(config)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            build_simulation(dict(BASE_CONFIG, policy="rm"))

    def test_unknown_server(self):
        config = dict(BASE_CONFIG, server={"policy": "magic", "capacity": 1,
                                           "period": 2})
        with pytest.raises(ValueError, match="unknown server"):
            build_simulation(config)

    def test_jobs_without_server_rejected(self):
        config = dict(BASE_CONFIG)
        config.pop("server")
        with pytest.raises(ValueError, match="no 'server'"):
            build_simulation(config)

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            build_simulation(dict(BASE_CONFIG, horizon=-1))


class TestCLI:
    def test_end_to_end(self, tmp_path, capsys):
        system = tmp_path / "system.json"
        system.write_text(json.dumps(BASE_CONFIG))
        svg = tmp_path / "out.svg"
        trace_path = tmp_path / "trace.json"
        rc = cli_main([str(system), "--svg", str(svg),
                       "--save-trace", str(trace_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PS" in out and "served" in out
        assert svg.read_text().startswith("<svg")
        reloaded = load_trace(trace_path)
        assert reloaded.busy_time() > 0

    def test_error_reporting(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert cli_main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "nope.json")]) == 2
