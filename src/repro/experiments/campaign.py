"""The paper's evaluation campaign (Section 6, Tables 2-5).

Six sets of ten randomly generated systems, each run four ways:

* ``ps_sim``  — ideal Polling Server on the RTSS simulator (Table 2);
* ``ps_exec`` — framework ``PollingTaskServer`` on the emulated RTSJ VM
  with runtime overheads (Table 3);
* ``ds_sim``  — ideal Deferrable Server on RTSS (Table 4);
* ``ds_exec`` — framework ``DeferrableTaskServer`` on the VM (Table 5).

Both arms consume byte-identical workloads from
:mod:`repro.workload.generator`, and both report the paper's metrics
(AART / AIR / ASR) through :mod:`repro.sim.metrics`.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import signal
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field, replace as _replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..core import (
    DeferrableTaskServer,
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServer,
    TaskServerParameters,
)
from ..rtsj import (
    AbsoluteTime,
    Compute,
    MAX_RT_PRIORITY,
    MIN_RT_PRIORITY,
    NS_PER_UNIT,
    OverheadModel,
    PeriodicParameters,
    PriorityParameters,
    RealtimeThread,
    RelativeTime,
    RTSJVirtualMachine,
    WaitForNextPeriod,
)
from ..sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealDeferrableServer,
    IdealPollingServer,
    RunMetrics,
    SetMetrics,
    Simulation,
    aggregate,
    measure_run,
)
from ..overload.metrics import OverloadReport, measure_overload
from ..service.backoff import DEFAULT_BACKOFF
from ..sim.servers.base import AperiodicServer
from ..sim.trace import CompactTrace, ExecutionTrace
from ..workload import GeneratedSystem, GenerationParameters, PAPER_SETS, RandomSystemGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.enforcement import EnforcementConfig
    from ..faults.injectors import EventBurst, FaultPlan
    from ..overload.config import OverloadConfig
    from ..verify.violations import VerificationReport

__all__ = [
    "ARMS",
    "SystemResult",
    "CampaignResult",
    "OverloadCampaignResult",
    "OverloadRun",
    "RunPolicy",
    "RunRecord",
    "RunTimeout",
    "RunExhausted",
    "simulate_system",
    "execute_system",
    "run_campaign",
    "run_overload_campaign",
]

ARMS = ("ps_sim", "ps_exec", "ds_sim", "ds_exec")

logger = logging.getLogger("repro.experiments.campaign")


class RunTimeout(Exception):
    """A single campaign run exceeded its wall-clock allowance."""


class RunExhausted(Exception):
    """Fail-fast: a run used up its retry budget without succeeding.

    Raised (instead of a failure record being folded into the results)
    when the active :class:`RunPolicy` has ``fail_fast=True``.  Carries
    the final :class:`RunRecord` as a dict in ``args[0]`` so it survives
    pickling across the worker-pool boundary.
    """

    @property
    def record(self) -> "RunRecord":
        return RunRecord.from_dict(self.args[0])

    def __str__(self) -> str:
        data = self.args[0]
        return (
            f"run {data['arm']} set={tuple(data['set_key'])} "
            f"system={data['system_id']} gave up after "
            f"{data['attempts']} attempt(s): {data['status']}"
        )


@dataclass(frozen=True)
class RunPolicy:
    """Resilience policy for campaign runs.

    * ``timeout_s`` — wall-clock limit per run (``None`` = unlimited;
      enforced with ``SIGALRM``, so it is a no-op off the main thread or
      on platforms without POSIX signals);
    * ``max_retries`` — how many times a crashed/hung run is retried,
      each retry regenerating the system from a bumped master seed so a
      pathological random stream cannot wedge the sweep.  Bumps come
      from the shared :class:`~repro.service.backoff.BackoffPolicy` —
      exponentially widening, jittered, deterministic under the master
      seed — with ``retry_seed_bump`` as the scale factor;
    * ``checkpoint_path`` — JSONL file of per-run records; an existing
      file is loaded on start and completed runs are skipped, so an
      interrupted campaign resumes instead of restarting;
    * ``fail_fast`` — raise :class:`RunExhausted` the moment any run
      exhausts its retry budget, instead of folding a failure record
      into the results (the CLI maps this to a non-zero exit).
    """

    timeout_s: float | None = None
    max_retries: int = 0
    retry_seed_bump: int = 1
    checkpoint_path: Path | None = None
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_seed_bump <= 0:
            raise ValueError(
                f"retry_seed_bump must be > 0, got {self.retry_seed_bump}"
            )


@dataclass
class RunRecord:
    """One (arm, set, system) run outcome — success or structured failure.

    ``payload`` carries arm-specific extra results as a JSON-serialisable
    dict (the multicore campaign stores its per-core metrics there); it
    round-trips through checkpoints untouched.
    """

    arm: str
    set_key: tuple[float, float]
    system_id: int
    status: str  # "ok" | "failed" | "timeout"
    attempts: int = 1
    error: str = ""
    metrics: RunMetrics | None = None
    payload: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "arm": self.arm,
            "set_key": list(self.set_key),
            "system_id": self.system_id,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.metrics is not None:
            out["metrics"] = {
                "released": self.metrics.released,
                "served": self.metrics.served,
                "interrupted": self.metrics.interrupted,
                "average_response_time":
                    self.metrics.average_response_time,
                "response_times": list(self.metrics.response_times),
            }
        if self.payload is not None:
            out["payload"] = self.payload
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        metrics = None
        if data.get("metrics") is not None:
            m = data["metrics"]
            metrics = RunMetrics(
                released=m["released"],
                served=m["served"],
                interrupted=m["interrupted"],
                average_response_time=m["average_response_time"],
                response_times=tuple(m["response_times"]),
            )
        return cls(
            arm=data["arm"],
            set_key=tuple(data["set_key"]),
            system_id=data["system_id"],
            status=data["status"],
            attempts=data.get("attempts", 1),
            error=data.get("error", ""),
            metrics=metrics,
            payload=data.get("payload"),
        )


@contextmanager
def _time_limit(seconds: float | None):
    """Raise :class:`RunTimeout` if the block outlives ``seconds``.

    Uses ``SIGALRM``; silently degrades to no limit off the main thread
    or where the signal is unavailable (the retry/record machinery still
    catches crashes there).
    """
    if (
        seconds is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _periodic_burn(cost_ns: int):
    """Thread logic for a generated periodic task: burn, wait, repeat."""

    def logic(thread: RealtimeThread):
        while True:
            yield Compute(cost_ns)
            yield WaitForNextPeriod()

    return logic

_SIM_SERVERS = {"polling": IdealPollingServer, "deferrable": IdealDeferrableServer}
_EXEC_SERVERS = {"polling": PollingTaskServer, "deferrable": DeferrableTaskServer}


@dataclass
class SystemResult:
    """One system's outcome under one arm."""

    metrics: RunMetrics
    trace: ExecutionTrace
    #: the run's aperiodic job records (overload reporting input)
    jobs: list[AperiodicJob] = field(default_factory=list)
    #: monitor verdicts when the run was verified (``verify=True``)
    report: "VerificationReport | None" = None
    #: cycle-detection outcome when ``cycle != "off"`` (repro.cycle)
    cycle: "object | None" = None


@dataclass
class CampaignResult:
    """Aggregated campaign: ``tables[arm][(density, std)] -> SetMetrics``.

    ``records`` holds one :class:`RunRecord` per (arm, set, system) run
    when a :class:`RunPolicy` was active; ``failures`` is the subset that
    did not produce metrics — crashed or timed-out runs are *recorded*
    here instead of aborting the sweep.
    """

    tables: dict[str, dict[tuple[float, float], SetMetrics]] = field(
        default_factory=dict
    )
    records: list[RunRecord] = field(default_factory=list)
    #: systems routed to the per-system reference kernel because they
    #: fell outside the batch envelope (``batch="auto"`` only; always 0
    #: with ``batch="off"``)
    batch_fallbacks: int = 0

    @property
    def failures(self) -> list[RunRecord]:
        return [r for r in self.records if r.status != "ok"]

    def table(self, arm: str) -> dict[tuple[float, float], SetMetrics]:
        if arm not in self.tables:
            raise KeyError(f"unknown arm {arm!r}; have {sorted(self.tables)}")
        return self.tables[arm]


def simulate_system(system: GeneratedSystem,
                    policy: str = "polling",
                    enforcement: "EnforcementConfig | None" = None,
                    overload: "OverloadConfig | None" = None,
                    verify: bool = False,
                    trace_mode: str | None = None,
                    kernel: str = "auto",
                    cycle: str = "off",
                    ) -> SystemResult:
    """Run one system on RTSS with the ideal version of ``policy``.

    The server is forced above every periodic task — the paper's standing
    requirement ("the server has to be the highest-priority task in the
    system"), regardless of the priority recorded in the spec.
    ``enforcement`` (optional) applies a cost-overrun policy to the
    server and the periodic entities (see :mod:`repro.faults`);
    ``overload`` (optional) bounds the server's pending queue, gates
    arrivals through a circuit breaker and drives degraded modes (see
    :mod:`repro.overload`); ``verify`` attaches the standard
    :mod:`repro.verify` monitor battery and fills ``SystemResult.report``
    (off = the byte-identical golden path).  ``trace_mode``/``kernel``
    select the columnar trace and the kernel fast path (see
    docs/performance.md); the defaults are byte-identical to the
    historical behaviour.  ``cycle`` arms hyperperiod cycle detection
    (:mod:`repro.cycle`) — note the paper's systems always carry an
    aperiodic stream through a server, so fast-forward stands down here
    by design (loudly, counted); the pure-periodic value lives in
    direct kernel use, ``run_multicore_system(server=None)`` and the
    long-horizon benches.
    """
    server_cls = _SIM_SERVERS[policy]
    top = max(
        (t.priority for t in system.periodic_tasks),
        default=system.server.priority,
    )
    spec = _replace(system.server, priority=max(system.server.priority, top + 1))
    server: AperiodicServer = server_cls(
        spec, name=policy.upper(), enforcement=enforcement
    )
    monitors = None
    if verify:
        from ..verify import monitors_for_system

        monitors = monitors_for_system(
            system, servers=(server,), policy="fp",
            # enforcement cuts execution short and degraded modes rescale
            # service, so exact-demand accounting only holds without both
            check_demand=enforcement is None and overload is None,
        )
    sim = Simulation(
        FixedPriorityPolicy(), enforcement=enforcement, monitors=monitors,
        trace_mode=trace_mode, kernel=kernel, cycle=cycle,
    )
    server.attach(sim, horizon=system.horizon)
    detector = None
    if overload is not None and overload.active:
        from ..faults.watchdog import DeadlineMissWatchdog
        from ..overload import wire_sim_servers

        watchdog = sim.watchdog
        if watchdog is None and overload.detector is not None:
            watchdog = DeadlineMissWatchdog().attach_sim(sim)
        detector = wire_sim_servers(
            overload, sim.trace, [server], watchdog=watchdog
        )
    for spec in system.periodic_tasks:
        sim.add_periodic_task(spec)
    jobs: list[AperiodicJob] = []
    for event in system.events:
        job = AperiodicJob(
            name=f"h{event.event_id}",
            release=event.release,
            cost=event.cost,
            declared_cost=event.declared_cost,
        )
        jobs.append(job)
        sim.submit_aperiodic(job, server.submit)
    trace = sim.run(until=system.horizon)
    if detector is not None:
        detector.finish(system.horizon)
    report = (
        trace.finish_monitors(system.horizon) if monitors is not None
        else None
    )
    return SystemResult(
        metrics=measure_run(jobs), trace=trace, jobs=jobs, report=report,
        cycle=sim._cycle_report,
    )


def execute_system(
    system: GeneratedSystem,
    policy: str = "polling",
    overhead: OverheadModel | None = None,
    server_priority: int = MAX_RT_PRIORITY,
    queue: str = "fifo",
    safety_margin: RelativeTime | None = None,
    enforcement: "EnforcementConfig | None" = None,
    timer_drift_ppm: float = 0.0,
    overload: "OverloadConfig | None" = None,
    verify: bool = False,
    trace_mode: str | None = None,
    cycle: str = "off",
) -> SystemResult:
    """Run one system's framework implementation on the emulated VM.

    Each aperiodic event becomes a :class:`ServableAsyncEvent` fired by a
    timer at its release instant (timer firings cost ISR time under the
    overhead model, reproducing the paper's "timers charged to fire the
    asynchronous events").  ``enforcement`` bounds handlers to their
    declared costs; ``timer_drift_ppm`` makes the VM's release timers
    drift (see :mod:`repro.faults`); ``overload`` bounds the server's
    pending queue, installs one circuit breaker per event source and
    drives degraded modes (see :mod:`repro.overload`).  The emulated VM
    charges stateful runtime overheads, so it is never cycle-capable:
    any ``cycle != "off"`` request stands down loudly and the run
    proceeds in full.
    """
    if cycle != "off":
        from ..cycle.tracker import _stand_down

        _stand_down("execution-arm", cycle)
    monitored = None
    if verify:
        # the VM charges ISR/dispatch overheads and its servers are
        # non-resumable, so only the scheduling-agnostic monitors apply
        from ..verify.invariants import (
            BreakerMonitor,
            MonitoredCompactTrace,
            MonitoredTrace,
            MonotoneClockMonitor,
            NonOverlapMonitor,
            ReleaseAccountingMonitor,
        )

        monitored_cls = (
            MonitoredCompactTrace if trace_mode == "compact"
            else MonitoredTrace
        )
        monitored = monitored_cls([
            NonOverlapMonitor(),
            MonotoneClockMonitor(),
            BreakerMonitor(),
            ReleaseAccountingMonitor(check_demand=False),
        ])
    vm = RTSJVirtualMachine(
        overhead=overhead if overhead is not None else OverheadModel(),
        timer_drift_ppm=timer_drift_ppm,
        trace=(
            monitored if monitored is not None
            else CompactTrace() if trace_mode == "compact" else None
        ),
    )
    params = TaskServerParameters.from_spec(
        system.server, priority=server_priority
    )
    server_cls = _EXEC_SERVERS[policy]
    if policy == "polling":
        server: TaskServer = server_cls(
            params, queue=queue, safety_margin=safety_margin,
            enforcement=enforcement, overload=overload,
        )
    else:
        server = server_cls(
            params, safety_margin=safety_margin, enforcement=enforcement,
            overload=overload,
        )
    horizon_ns = round(system.horizon * NS_PER_UNIT)
    server.attach(vm, horizon_ns)
    detector = None
    if overload is not None and overload.active:
        from ..faults.watchdog import DeadlineMissWatchdog
        from ..overload import build_detector

        watchdog = vm.watchdog
        if watchdog is None and overload.detector is not None:
            watchdog = DeadlineMissWatchdog().attach_vm(vm)
        detector = build_detector(
            overload, vm.trace, [server], watchdog=watchdog
        )

    # periodic tasks run below the server: map their (arbitrary-scale)
    # spec priorities onto consecutive RTSJ priorities under the server's
    for rank, spec in enumerate(
        sorted(system.periodic_tasks, key=lambda t: t.priority, reverse=True)
    ):
        rtsj_priority = server_priority - 1 - rank
        if rtsj_priority < MIN_RT_PRIORITY:
            raise ValueError(
                "too many periodic tasks to fit below the server priority"
            )
        vm.add_thread(
            RealtimeThread(
                _periodic_burn(round(spec.execution_cost * NS_PER_UNIT)),
                PriorityParameters(rtsj_priority),
                PeriodicParameters(
                    AbsoluteTime.from_nanos(round(spec.offset * NS_PER_UNIT)),
                    RelativeTime.from_units(spec.period),
                ),
                name=spec.name,
            )
        )

    # The generated workload fires every ServableAsyncEvent exactly once,
    # so per-event breakers could never accumulate a failure window; the
    # campaign treats the whole generated stream as one logical source
    # and shares a single breaker across it.  (Applications with
    # recurring sources attach one breaker per event instead.)
    stream_breaker = None
    if overload is not None and overload.breaker is not None:
        from ..overload import build_breaker

        stream_breaker = build_breaker(
            overload, vm.trace, "events-breaker", detector
        )
    for event in system.events:
        handler = ServableAsyncEventHandler(
            cost=RelativeTime.from_units(event.declared_cost),
            server=server,
            actual_cost=RelativeTime.from_units(event.cost),
            name=f"h{event.event_id}",
        )
        sae = ServableAsyncEvent(name=f"e{event.event_id}")
        sae.add_servable_handler(handler)
        sae.breaker = stream_breaker
        vm.schedule_timer_event(
            round(event.release * NS_PER_UNIT),
            lambda now, e=sae: e.fire(),
        )
    trace = vm.run(horizon_ns)
    if detector is not None:
        detector.finish(horizon_ns / NS_PER_UNIT)
    report = (
        monitored.finish_monitors(horizon_ns / NS_PER_UNIT)
        if monitored is not None else None
    )
    return SystemResult(
        metrics=server.run_metrics(), trace=trace, jobs=server.jobs,
        report=report,
    )


def _run_arm(
    arm: str,
    system: GeneratedSystem,
    overhead: OverheadModel | None,
    enforcement: "EnforcementConfig | None",
    verify: bool = False,
    trace_mode: str | None = None,
    kernel: str = "auto",
    cycle: str = "off",
) -> RunMetrics:
    policy = "polling" if arm.startswith("ps") else "deferrable"
    if arm.endswith("_sim"):
        result = simulate_system(
            system, policy, enforcement=enforcement, verify=verify,
            trace_mode=trace_mode, kernel=kernel, cycle=cycle,
        )
    else:
        result = execute_system(
            system, policy, overhead, enforcement=enforcement, verify=verify,
            trace_mode=trace_mode, cycle=cycle,
        )
    if result.report is not None and not result.report.ok:
        from ..verify.violations import VerificationError

        raise VerificationError(result.report.summary())
    return result.metrics


def _arm_extras(verify: bool, trace_mode: str | None,
                kernel: str, cycle: str = "off") -> tuple:
    """Positional extras for a ``_run_arm`` call.

    The performance/verification knobs are opt-in: with everything at its
    default the historical 4-argument call shape is kept, so test
    stand-ins with the old signature stay usable.
    """
    if cycle != "off":
        return (verify, trace_mode, kernel, cycle)
    if trace_mode is not None or kernel != "auto":
        return (verify, trace_mode, kernel)
    if verify:
        return (verify,)
    return ()


def _load_checkpoint(path: Path) -> dict[tuple, RunRecord]:
    """Load completed run records from a JSONL checkpoint file."""
    done: dict[tuple, RunRecord] = {}
    if not path.exists():
        return done
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = RunRecord.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                # a run killed mid-write leaves a truncated final line;
                # skip it — that run simply re-executes and re-appends
                continue
            done[(record.arm, record.set_key, record.system_id)] = record
    return done


def _append_checkpoint(path: Path | None, record: RunRecord) -> None:
    """Append one record, durably: a single write, flushed and fsynced.

    Only the campaign *parent* process ever calls this (worker processes
    run with ``checkpoint_path=None``), so concurrent sweeps cannot
    interleave partial lines and a crash leaves at most one truncated
    final line — which :func:`_load_checkpoint` skips on resume.
    """
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    prefix = ""
    if path.exists() and path.stat().st_size:
        # a crash can leave a truncated final line with no newline;
        # isolate it so the new record starts on a line of its own
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                prefix = "\n"
    with path.open("a") as fh:
        fh.write(prefix + json.dumps(record.to_dict()) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _parallel_map(fn, tasks: list, workers: int,
                  mp_context=None) -> list:
    """Ordered map over ``tasks``, optionally on a process pool.

    With ``workers <= 1`` (or at most one task) the map runs inline in
    this process — preserving ``SIGALRM`` timeouts on the main thread.
    With more workers, tasks fan out over a ``multiprocessing`` pool;
    results come back in submission order, so downstream aggregation is
    bit-identical to a sequential sweep.  Each pool worker's task runs on
    that worker's main thread, so per-run ``SIGALRM`` timeouts still
    apply there.

    The pool uses an *explicit* start method rather than the platform
    default: ``fork`` where available (cheap, shares the parent's loaded
    modules), ``spawn`` otherwise.  Every worker entry point and task
    payload is picklable by qualified name, so the map produces the same
    ordered results under either method — ``mp_context`` (a context
    object or a start-method name like ``"spawn"``) pins one explicitly.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    ctx = mp_context
    if isinstance(ctx, str):
        ctx = multiprocessing.get_context(ctx)
    elif ctx is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
    with ctx.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(fn, tasks, chunksize=1)


def _campaign_worker(task: tuple) -> RunRecord:
    """Pool entry point for one (arm, system) run of the paper campaign."""
    (hardened, arm, params, system, overhead, enforcement, fault_plan,
     run_policy, verify, trace_mode, kernel, cycle) = task
    if hardened:
        record = _guarded_run(
            arm, params, system, overhead, enforcement, fault_plan,
            run_policy, verify, trace_mode, kernel, cycle,
        )
        if run_policy.fail_fast and record.status != "ok":
            raise RunExhausted(record.to_dict())
        return record
    key = (params.task_density, params.std_deviation)
    metrics = _run_arm(arm, system, overhead, enforcement,
                       *_arm_extras(verify, trace_mode, kernel, cycle))
    return RunRecord(
        arm=arm, set_key=key, system_id=system.system_id,
        status="ok", metrics=metrics,
    )


def _guarded_run(
    arm: str,
    params: GenerationParameters,
    system: GeneratedSystem,
    overhead: OverheadModel | None,
    enforcement: "EnforcementConfig | None",
    fault_plan: "FaultPlan | None",
    run_policy: RunPolicy,
    verify: bool = False,
    trace_mode: str | None = None,
    kernel: str = "auto",
    cycle: str = "off",
) -> RunRecord:
    """Run one (arm, system) with timeout, bounded retry and seed-bump.

    A retry regenerates the *same* system index from a bumped master
    seed (fault plan re-applied), so a pathological random stream is
    routed around rather than hammered.
    """
    key = (params.task_density, params.std_deviation)
    attempts = 0
    current = system
    last_error = ""
    status = "failed"
    while attempts <= run_policy.max_retries:
        attempts += 1
        try:
            with _time_limit(run_policy.timeout_s):
                metrics = _run_arm(
                    arm, current, overhead, enforcement,
                    *_arm_extras(verify, trace_mode, kernel, cycle),
                )
            return RunRecord(
                arm=arm, set_key=key, system_id=system.system_id,
                status="ok", attempts=attempts, metrics=metrics,
            )
        except RunTimeout as exc:
            status, last_error = "timeout", str(exc)
        except Exception:
            status, last_error = "failed", traceback.format_exc(limit=5)
        if attempts <= run_policy.max_retries:
            bumped = _replace(
                params,
                seed=params.seed + DEFAULT_BACKOFF.seed_bump(
                    params.seed, attempts,
                    scale=run_policy.retry_seed_bump,
                ),
            )
            regenerated = RandomSystemGenerator(bumped).generate()
            current = regenerated[system.system_id]
            if fault_plan is not None:
                current = fault_plan.apply(current)
    return RunRecord(
        arm=arm, set_key=key, system_id=system.system_id,
        status=status, attempts=attempts, error=last_error,
    )


def run_campaign(
    sets: tuple[GenerationParameters, ...] = PAPER_SETS,
    overhead: OverheadModel | None = None,
    arms: tuple[str, ...] = ARMS,
    fault_plan: "FaultPlan | None" = None,
    enforcement: "EnforcementConfig | None" = None,
    run_policy: RunPolicy | None = None,
    workers: int = 1,
    verify: bool = False,
    trace_mode: str | None = None,
    kernel: str = "auto",
    batch: str = "off",
    cycle: str = "off",
) -> CampaignResult:
    """Run the full evaluation; returns per-arm tables keyed like the
    paper's ``(density, std)`` columns.

    ``fault_plan`` injects workload faults (both arms still consume
    byte-identical — faulted — inputs); ``enforcement`` applies a
    cost-overrun policy in every arm; ``run_policy`` hardens the sweep:
    crashed, hung or timed-out runs become structured failure records in
    ``CampaignResult.records`` instead of exceptions, with optional
    bounded retry and JSONL checkpointing for resume.  ``workers > 1``
    fans the (arm, system) runs out over a ``multiprocessing`` pool —
    every run is still generated from the same master-seed fan-out and
    results are folded back in sequential order, so tables and records
    are bit-identical to a one-worker sweep; checkpoint lines are
    written (flushed + fsynced) by this parent process only.  Everything
    defaults to the paper-faithful golden path.

    ``batch`` routes the sim arms through the vectorized
    structure-of-arrays kernel (:mod:`repro.batch`): ``"off"`` (default)
    is the unchanged — byte-identical — per-system path; ``"auto"``
    batch-serves every system inside the batch envelope (metrics are
    bit-identical to the reference kernel) and falls back per system for
    the rest, counted in :attr:`CampaignResult.batch_fallbacks` and
    logged, never silently; ``"force"`` raises
    :class:`repro.batch.BatchUnsupported` instead of falling back.
    Fault plans mutate per-run costs, so any ``fault_plan`` disables
    batching entirely (``auto`` falls back, ``force`` raises).

    ``cycle`` threads hyperperiod cycle detection (:mod:`repro.cycle`)
    into every per-system kernel run; the paper's server-carrying
    systems stand down individually (loudly, counted in
    ``repro.cycle.STAND_DOWNS``), so this knob is most useful combined
    with pure-periodic workloads and long horizons.
    """
    if batch not in ("off", "auto", "force"):
        raise ValueError(
            f"batch must be 'off', 'auto' or 'force', got {batch!r}"
        )
    result = CampaignResult(tables={arm: {} for arm in arms})
    policy = run_policy if run_policy is not None else RunPolicy()
    checkpointed = (
        _load_checkpoint(policy.checkpoint_path)
        if policy.checkpoint_path is not None
        else {}
    )
    hardened = run_policy is not None
    # workers never see the checkpoint path: the parent is the only writer
    worker_policy = _replace(policy, checkpoint_path=None)

    generated: list[tuple[GenerationParameters, list[GeneratedSystem]]] = []
    for params in sets:
        systems = RandomSystemGenerator(params).generate()
        if fault_plan is not None:
            systems = fault_plan.apply_all(systems)
        generated.append((params, systems))

    # batch precompute: serve the sim arms' metrics from the vectorized
    # kernel (bit-identical to the reference), parent-side, before the
    # pool — unsupported systems stay on the per-system path
    batch_metrics: dict[tuple, RunMetrics] = {}
    if batch != "off":
        from ..batch import BatchTables, BatchUnsupported, ensure_batchable
        from ..batch.driver import _ARM_POLICY
        from ..batch.kernel import simulate_batch

        batch_arms = [a for a in arms if a in _ARM_POLICY]
        if batch == "force" and set(arms) - set(batch_arms):
            raise BatchUnsupported(
                f"arms {sorted(set(arms) - set(batch_arms))} cannot be "
                f"batched (batchable: {', '.join(sorted(_ARM_POLICY))})"
            )
        for params, systems in generated:
            key = (params.task_density, params.std_deviation)
            batchable: list[GeneratedSystem] = []
            for system in systems:
                try:
                    if fault_plan is not None:
                        raise BatchUnsupported(
                            "fault plans mutate per-run costs; the "
                            "batched kernel replays declared costs only"
                        )
                    ensure_batchable(
                        system, _ARM_POLICY[batch_arms[0]]
                        if batch_arms else "polling",
                        enforcement=enforcement, verify=verify,
                    )
                    batchable.append(system)
                except BatchUnsupported:
                    if batch == "force":
                        raise
                    result.batch_fallbacks += 1
            if batchable and batch_arms:
                tables = BatchTables.from_systems(batchable)
                for arm in batch_arms:
                    batched = simulate_batch(tables, _ARM_POLICY[arm])
                    for slot, system in enumerate(batchable):
                        batch_metrics[(arm, key, system.system_id)] = (
                            batched.run_metrics(slot)
                        )
        if result.batch_fallbacks:
            logger.warning(
                "batch=%r fell back to the per-system kernel for %d "
                "system(s) outside the batch envelope",
                batch, result.batch_fallbacks,
            )

    # flatten into (slot per run) preserving the sequential sweep order;
    # checkpointed runs keep their record, batch-served runs their
    # precomputed metrics, the rest go to the pool
    order: list[tuple[GenerationParameters, str, int, str]] = []
    pending: list[tuple | None] = []
    for params, systems in generated:
        key = (params.task_density, params.std_deviation)
        for system in systems:
            for arm in arms:
                if hardened and (arm, key, system.system_id) in checkpointed:
                    source = "checkpoint"
                elif (arm, key, system.system_id) in batch_metrics:
                    source = "batch"
                else:
                    source = "pool"
                order.append((params, arm, system.system_id, source))
                pending.append(
                    None if source != "pool" else (
                        hardened, arm, params, system, overhead,
                        enforcement, fault_plan, worker_policy, verify,
                        trace_mode, kernel, cycle,
                    )
                )
    fresh = iter(_parallel_map(
        _campaign_worker, [t for t in pending if t is not None], workers
    ))

    per_set: dict[tuple[float, float], dict[str, list[RunMetrics]]] = {}
    for slot, (params, arm, system_id, source) in zip(pending, order):
        key = (params.task_density, params.std_deviation)
        per_arm = per_set.setdefault(key, {a: [] for a in arms})
        if source == "checkpoint":
            record = checkpointed[(arm, key, system_id)]
        elif source == "batch":
            record = RunRecord(
                arm=arm, set_key=key, system_id=system_id,
                status="ok", metrics=batch_metrics[(arm, key, system_id)],
            )
            if hardened:
                _append_checkpoint(policy.checkpoint_path, record)
        else:
            record = next(fresh)
            if hardened:
                _append_checkpoint(policy.checkpoint_path, record)
        if hardened:
            result.records.append(record)
        if record.metrics is not None:
            per_arm[arm].append(record.metrics)
    for params, _ in generated:
        key = (params.task_density, params.std_deviation)
        for arm in arms:
            if per_set[key][arm]:
                result.tables[arm][key] = aggregate(per_set[key][arm])
    return result


# -- the overload campaign ---------------------------------------------------


@dataclass
class OverloadRun:
    """One system's burst-arm outcome: baseline vs overloaded."""

    arm: str
    set_key: tuple[float, float]
    system_id: int
    baseline: RunMetrics
    metrics: RunMetrics
    report: OverloadReport


@dataclass
class OverloadCampaignResult:
    """Per-run overload reports plus the usual hardening records."""

    runs: list[OverloadRun] = field(default_factory=list)
    records: list[RunRecord] = field(default_factory=list)

    @property
    def failures(self) -> list[RunRecord]:
        return [r for r in self.records if r.status != "ok"]

    def summary(self, arm: str) -> dict[str, float]:
        """Mean overload behaviour of one arm across its runs."""
        runs = [r for r in self.runs if r.arm == arm]
        if not runs:
            raise KeyError(f"no runs for arm {arm!r}")
        finite = [
            r.report.recovery_time for r in runs if r.report.recovered
        ]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        return {
            "runs": float(len(runs)),
            "shed_rate": mean([r.report.shed_rate for r in runs]),
            "breaker_opens": float(
                sum(r.report.breaker_opens for r in runs)
            ),
            "time_in_degraded": mean(
                [r.report.time_in_degraded for r in runs]
            ),
            "recovered_fraction": len(finite) / len(runs),
            "mean_recovery_time": mean(finite) if finite else float("inf"),
            "periodic_deadline_misses": float(
                sum(r.report.periodic_deadline_misses for r in runs)
            ),
            "baseline_aart": mean(
                [r.baseline.average_response_time for r in runs]
            ),
            "burst_aart": mean(
                [r.metrics.average_response_time for r in runs]
            ),
        }


def default_overload_config() -> "OverloadConfig":
    """The campaign's standard overload stack: a drop-oldest queue bound,
    per-source breakers and a degraded-mode detector."""
    from ..overload import (
        BreakerConfig,
        DetectorConfig,
        OverloadConfig,
        QueueBound,
    )

    return OverloadConfig(
        queue_bound=QueueBound(max_items=6, policy="drop-oldest"),
        breaker=BreakerConfig(),
        detector=DetectorConfig(),
    )


def _run_overload_arm(
    arm: str,
    system: GeneratedSystem,
    overhead: OverheadModel | None,
    overload: "OverloadConfig | None",
) -> SystemResult:
    policy = "polling" if arm.startswith("ps") else "deferrable"
    if arm.endswith("_sim"):
        return simulate_system(system, policy, overload=overload)
    return execute_system(system, policy, overhead, overload=overload)


def _report_payload(report: OverloadReport, baseline: RunMetrics) -> dict:
    from dataclasses import asdict

    return {
        "overload": asdict(report),
        "baseline": {
            "released": baseline.released,
            "served": baseline.served,
            "interrupted": baseline.interrupted,
            "average_response_time": baseline.average_response_time,
            "response_times": list(baseline.response_times),
        },
    }


def _overload_run_from_record(record: RunRecord) -> OverloadRun | None:
    if record.status != "ok" or record.payload is None:
        return None
    payload = record.payload
    b = payload["baseline"]
    return OverloadRun(
        arm=record.arm,
        set_key=record.set_key,
        system_id=record.system_id,
        baseline=RunMetrics(
            released=b["released"],
            served=b["served"],
            interrupted=b["interrupted"],
            average_response_time=b["average_response_time"],
            response_times=tuple(b["response_times"]),
        ),
        metrics=record.metrics,
        report=OverloadReport(**payload["overload"]),
    )


def _overload_worker(task: tuple) -> RunRecord:
    """Pool entry point: baseline + burst run of one (arm, system)."""
    (arm, params, clean, burst_system, overhead, overload,
     run_policy) = task
    key = (params.task_density, params.std_deviation)
    policy = run_policy if run_policy is not None else RunPolicy()
    status, last_error = "failed", ""
    try:
        with _time_limit(policy.timeout_s):
            # the unfaulted baseline calibrates the recovery criterion
            baseline = _run_overload_arm(arm, clean, overhead, None)
            faulted = _run_overload_arm(arm, burst_system, overhead, overload)
    except RunTimeout as exc:
        status, last_error = "timeout", str(exc)
    except Exception:
        status, last_error = "failed", traceback.format_exc(limit=5)
    else:
        report = measure_overload(
            faulted.trace,
            faulted.jobs,
            horizon=burst_system.horizon,
            pre_burst_aart=baseline.metrics.average_response_time or None,
        )
        return RunRecord(
            arm=arm, set_key=key, system_id=clean.system_id, status="ok",
            metrics=faulted.metrics,
            payload=_report_payload(report, baseline.metrics),
        )
    record = RunRecord(
        arm=arm, set_key=key, system_id=clean.system_id,
        status=status, error=last_error,
    )
    if run_policy is not None and run_policy.fail_fast:
        raise RunExhausted(record.to_dict())
    return record


def run_overload_campaign(
    sets: tuple[GenerationParameters, ...] = PAPER_SETS,
    arms: tuple[str, ...] = ARMS,
    overhead: OverheadModel | None = None,
    overload: "OverloadConfig | None" = None,
    burst: "EventBurst | None" = None,
    run_policy: RunPolicy | None = None,
    workers: int = 1,
) -> OverloadCampaignResult:
    """The burst-overload sweep: every system runs twice per arm.

    First an unfaulted baseline (golden path, no overload machinery) to
    calibrate pre-burst response times; then the same workload through
    an :class:`~repro.faults.injectors.EventBurst` storm with the
    ``overload`` stack armed.  Each run's trace is distilled into an
    :class:`~repro.overload.metrics.OverloadReport` — shed rate, breaker
    activity, time in degraded mode and post-burst recovery time —
    reported alongside the paper's AART/AIR/ASR.  ``run_policy`` applies
    the usual hardening (timeout, checkpoint/resume, ``fail_fast``);
    ``workers > 1`` fans runs over a process pool with fold-back in
    sequential order.
    """
    from ..faults.injectors import EventBurst, FaultPlan

    if overload is None:
        overload = default_overload_config()
    if burst is None:
        burst = EventBurst(extra=3, probability=0.5, spacing=0.05)
    policy = run_policy if run_policy is not None else RunPolicy()
    checkpointed = (
        _load_checkpoint(policy.checkpoint_path)
        if policy.checkpoint_path is not None
        else {}
    )
    worker_policy = _replace(policy, checkpoint_path=None)

    order: list[tuple[GenerationParameters, str, int, bool]] = []
    pending: list[tuple | None] = []
    for params in sets:
        key = (params.task_density, params.std_deviation)
        systems = RandomSystemGenerator(params).generate()
        plan = FaultPlan(injectors=(burst,), seed=params.seed)
        for system in systems:
            burst_system = plan.apply(system)
            for arm in arms:
                cached = (arm, key, system.system_id) in checkpointed
                order.append((params, arm, system.system_id, cached))
                pending.append(
                    None if cached else (
                        arm, params, system, burst_system, overhead,
                        overload, worker_policy,
                    )
                )
    fresh = iter(_parallel_map(
        _overload_worker, [t for t in pending if t is not None], workers
    ))

    result = OverloadCampaignResult()
    for slot, (params, arm, system_id, cached) in zip(pending, order):
        key = (params.task_density, params.std_deviation)
        if cached:
            record = checkpointed[(arm, key, system_id)]
        else:
            record = next(fresh)
            _append_checkpoint(policy.checkpoint_path, record)
        result.records.append(record)
        run = _overload_run_from_record(record)
        if run is not None:
            result.runs.append(run)
    return result
