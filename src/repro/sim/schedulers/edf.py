"""Earliest-Deadline-First scheduling.

Entities expose the absolute deadline of their head activation through
:meth:`repro.sim.engine.Entity.current_deadline`.  Ties are broken by
registration order, and a running entity is not displaced by an
equal-deadline competitor (avoiding gratuitous context switches).
"""

from __future__ import annotations

from ..engine import EPS, Entity, SchedulingPolicy

__all__ = ["EarliestDeadlineFirstPolicy"]


class EarliestDeadlineFirstPolicy(SchedulingPolicy):
    """Preemptive EDF over the head deadlines of ready entities."""

    name = "edf"

    def select(self, now: float, ready: list[Entity]) -> Entity | None:
        if not ready:
            return None
        best = ready[0]
        best_d = best.current_deadline(now)
        for entity in ready[1:]:
            d = entity.current_deadline(now)
            if d < best_d - EPS:
                best, best_d = entity, d
        return best

    def preempts(self, candidate: Entity, running: Entity, now: float) -> bool:
        return candidate.current_deadline(now) < running.current_deadline(now) - EPS


# canonical hooks (see fp.py): let the kernel detect a replaced
# select()/preempts() and disable the deadline-heap fast path for it
EarliestDeadlineFirstPolicy._exact_select = EarliestDeadlineFirstPolicy.select  # type: ignore[attr-defined]
EarliestDeadlineFirstPolicy._exact_preempts = EarliestDeadlineFirstPolicy.preempts  # type: ignore[attr-defined]
