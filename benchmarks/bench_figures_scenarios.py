"""Regenerates Figures 2-4: the worked scheduling scenarios (Table 1).

Each benchmark runs one scenario on the framework Polling Server with
overheads disabled, prints the temporal diagram, and asserts the exact
segment timeline read off the paper's figure.
"""

from __future__ import annotations

from repro.experiments import (
    EXPECTED_TIMELINES,
    SCENARIOS,
    figure_text,
    run_scenario_execution,
    timeline_of,
)


def _bench_scenario(benchmark, name: str):
    spec = next(s for s in SCENARIOS if s.name == name)
    outcome = benchmark(run_scenario_execution, spec)
    print()
    print(figure_text(spec, outcome))
    for entity, segments in EXPECTED_TIMELINES[name].items():
        assert timeline_of(outcome.trace, entity) == [
            (float(a), float(b)) for a, b in segments
        ]
    return outcome


def bench_figure2_scenario1(benchmark):
    outcome = _bench_scenario(benchmark, "scenario1")
    assert outcome.job("h1").finish_time == 2.0
    assert outcome.job("h2").finish_time == 8.0


def bench_figure3_scenario2(benchmark):
    outcome = _bench_scenario(benchmark, "scenario2")
    # h2 deferred to the 12 tu instance (remaining capacity 1 < cost 2)
    assert outcome.job("h2").start_time == 12.0


def bench_figure4_scenario3(benchmark):
    outcome = _bench_scenario(benchmark, "scenario3")
    # h2 (declared 1, actual 2) starts at 8 and is interrupted at 9
    h2 = outcome.job("h2")
    assert h2.start_time == 8.0 and h2.finish_time == 9.0 and h2.interrupted
