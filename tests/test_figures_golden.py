"""Golden tests: the exact ASCII temporal diagrams of Figures 2-4.

The paper's figures, pinned character-for-character.  Any change to the
kernel, the framework, or the renderer that shifts these timelines shows
up here as a readable diff.
"""

from __future__ import annotations

from repro.experiments import SCENARIOS, run_scenario_execution
from repro.sim.gantt import ascii_gantt


def render(name: str) -> str:
    spec = next(s for s in SCENARIOS if s.name == name)
    outcome = run_scenario_execution(spec)
    return ascii_gantt(
        outcome.trace, until=spec.horizon, entities=["PS", "t1", "t2"]
    )


FIGURE2 = """\
PS          |##....##..........|
t1          |..##....##..##....|
t2          |....#.....#...#...|
             0    5    10   15 """

FIGURE3 = """\
PS          |......##....##....|
t1          |##......##....##..|
t2          |..#.......#.....#.|
             0    5    10   15 """

FIGURE4 = """\
PS          |......###.........|
t1          |##.......##.##....|
t2          |..#........#..#...|
             0    5    10   15 """


def test_figure2_golden():
    assert render("scenario1") == FIGURE2


def test_figure3_golden():
    assert render("scenario2") == FIGURE3


def test_figure4_golden():
    assert render("scenario3") == FIGURE4


def test_svg_figures_are_stable():
    from repro.sim.gantt import svg_gantt

    spec = SCENARIOS[0]
    outcome_a = run_scenario_execution(spec)
    outcome_b = run_scenario_execution(spec)
    svg_a = svg_gantt(outcome_a.trace, until=spec.horizon)
    svg_b = svg_gantt(outcome_b.trace, until=spec.horizon)
    assert svg_a == svg_b
