"""Hardened WallClock battery + VirtualClock sleeper lifecycle (PR 9)."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.service import ClockPause, VirtualClock, WallClock

SCALE = 1e-3  # 1 tu = 1 ms, the deployment convention


class TestWallClockMapping:
    def test_monotonic_and_scaled(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            first = clock.now()
            await asyncio.sleep(0.03)
            second = clock.now()
            assert second > first
            # 30ms of wall time is 30 tu at 1ms/tu, give or take jitter
            assert 20.0 < second - first < 200.0
            readings = [clock.now() for _ in range(100)]
            assert readings == sorted(readings)

        asyncio.run(scenario())

    def test_start_offset_resumes_logical_timeline(self):
        clock = WallClock(scale=SCALE, start=41.5).anchor()
        assert clock.now() >= 41.5

    def test_anchor_is_idempotent(self):
        clock = WallClock(scale=SCALE)
        clock.anchor()
        origin = clock._origin
        time.sleep(0.005)
        clock.anchor()
        assert clock._origin == origin

    def test_now_anchors_lazily(self):
        clock = WallClock(scale=SCALE, start=3.0)
        assert clock.now() >= 3.0

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            WallClock(scale=0.0)
        with pytest.raises(ValueError):
            WallClock(scale=-1.0)


class TestWallClockSleep:
    def test_zero_and_negative_sleeps_yield_but_return(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            woke = []

            async def peer():
                woke.append(True)

            task = asyncio.create_task(peer())
            before = time.monotonic()
            await clock.sleep_until(clock.now() - 100.0)  # long past
            await clock.sleep(0.0)
            await clock.sleep(-5.0)
            assert time.monotonic() - before < 0.1
            # the zero sleeps yielded: the peer task got to run
            assert woke
            task.cancel()

        asyncio.run(scenario())

    def test_sleep_until_reaches_target(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            target = clock.now() + 20.0
            await clock.sleep_until(target)
            assert clock.now() >= target

        asyncio.run(scenario())

    def test_lateness_accounting(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            target = clock.now() + 1.0
            time.sleep(0.05)  # block the loop past the target
            await clock.sleep_until(target)
            assert clock.late_wakeups >= 1
            assert clock.max_lateness > WallClock.LATENESS_TOLERANCE

        asyncio.run(scenario())


class TestPauseDetection:
    def test_blocked_loop_registers_a_pause(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            seen: list[ClockPause] = []
            clock.on_pause(seen.append)
            clock.start_watchdog(interval=5.0, threshold=20.0)
            await asyncio.sleep(0.02)   # let the watchdog sample once
            time.sleep(0.08)            # stall: 80 tu where ~5 expected
            await asyncio.sleep(0.02)   # watchdog wakes, sees the gap
            clock.stop_watchdog()
            assert clock.pauses
            assert seen == clock.pauses
            pause = clock.pauses[0]
            assert pause.observed > 20.0
            assert pause.expected == 5.0
            assert pause.excess == pause.observed - pause.expected

        asyncio.run(scenario())

    def test_steady_loop_stays_pause_free(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            clock.start_watchdog(interval=5.0, threshold=500.0)
            await asyncio.sleep(0.05)
            clock.stop_watchdog()
            assert clock.pauses == []

        asyncio.run(scenario())

    def test_note_pause_fires_callbacks(self):
        clock = WallClock(scale=SCALE)
        seen = []
        clock.on_pause(seen.append)
        pause = ClockPause(at=10.0, expected=1.0, observed=9.0)
        clock.note_pause(pause)
        assert clock.pauses == [pause]
        assert seen == [pause]

    def test_start_watchdog_is_idempotent(self):
        async def scenario():
            clock = WallClock(scale=SCALE).anchor()
            first = clock.start_watchdog(interval=5.0)
            second = clock.start_watchdog(interval=5.0)
            assert first is second
            clock.stop_watchdog()

        asyncio.run(scenario())


class TestVirtualAgreement:
    """The two clocks must agree on a scripted timeline: same wake
    order (modulo ties — equal-instant sleepers may wake in either
    order on a wall clock), and wall wake instants within a jitter
    tolerance."""

    SCRIPT = (("a", 10.0), ("b", 25.0), ("c", 25.0), ("d", 40.0))

    async def _run_script(self, clock) -> list[tuple[str, float]]:
        wakes: list[tuple[str, float]] = []

        async def sleeper(name: str, when: float) -> None:
            await clock.sleep_until(when)
            wakes.append((name, clock.now()))

        tasks = [asyncio.create_task(sleeper(n, w)) for n, w in self.SCRIPT]
        await asyncio.sleep(0)
        if isinstance(clock, VirtualClock):
            await clock.advance(50.0)
        else:
            await clock.sleep_until(50.0)
        await asyncio.gather(*tasks)
        return wakes

    def test_wall_clock_agrees_with_virtual_clock(self):
        async def virtual():
            return await self._run_script(VirtualClock())

        async def wall():
            return await self._run_script(WallClock(scale=SCALE).anchor())

        virtual_wakes = asyncio.run(virtual())
        wall_wakes = asyncio.run(wall())
        scripted = dict(self.SCRIPT)
        # identical order of scripted instants: ties may swap, but a
        # later sleeper never overtakes an earlier one on either clock
        assert [scripted[n] for n, _t in virtual_wakes] == \
               [scripted[n] for n, _t in wall_wakes]
        assert {n for n, _t in virtual_wakes} == {n for n, _t in wall_wakes}
        wall_by_name = dict(wall_wakes)
        for name, vt in virtual_wakes:
            # generous bound: CI jitter, not semantics, is the variable
            assert abs(wall_by_name[name] - vt) < 30.0


class TestVirtualClockSleeperLifecycle:
    """Regression: a sleeper cancelled while suspended must not stall
    ``advance()`` or drag logical time to its abandoned wake instant."""

    def test_cancelled_sleeper_is_skipped(self):
        async def scenario():
            clock = VirtualClock()
            woke = []

            async def sleeper(name: str, when: float) -> None:
                await clock.sleep_until(when)
                woke.append(name)

            doomed = asyncio.create_task(sleeper("doomed", 5.0))
            alive = asyncio.create_task(sleeper("alive", 9.0))
            await asyncio.sleep(0)
            assert clock.pending == 2
            doomed.cancel()
            await asyncio.sleep(0)
            assert clock.pending == 1  # dead entries don't count
            await clock.advance(7.0)
            # the cancelled wake at t=5 was skipped entirely
            assert woke == []
            assert clock.now() == 7.0
            await clock.advance(9.0)
            assert woke == ["alive"]
            await asyncio.gather(doomed, alive, return_exceptions=True)

        asyncio.run(scenario())

    def test_cancel_all_reports_only_live_sleepers(self):
        async def scenario():
            clock = VirtualClock()

            async def sleeper(when: float) -> None:
                await clock.sleep_until(when)

            tasks = [asyncio.create_task(sleeper(t)) for t in (3.0, 6.0)]
            await asyncio.sleep(0)
            tasks[0].cancel()
            await asyncio.sleep(0)
            assert clock.cancel_all() == 1
            assert clock.pending == 0
            await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run(scenario())

    def test_advance_to_earlier_instant_is_a_noop_for_later_sleepers(self):
        async def scenario():
            clock = VirtualClock()

            async def sleeper(when: float) -> None:
                await clock.sleep_until(when)

            task = asyncio.create_task(sleeper(10.0))
            await asyncio.sleep(0)
            await clock.advance(4.0)
            assert clock.now() == 4.0
            assert clock.pending == 1
            await clock.advance(10.0)
            await task

        asyncio.run(scenario())
