"""Temporal diagrams: the figures RTSS displays (paper Figures 2-4).

Renders an :class:`~repro.sim.trace.ExecutionTrace` either as an ASCII
chart (one row per entity, one column per time quantum) or as a small
standalone SVG.  Both renderers are deterministic so their output can be
asserted in tests and diffed across runs.
"""

from __future__ import annotations

from .trace import ExecutionTrace, Segment, TraceEventKind

__all__ = ["ascii_gantt", "ascii_capacity", "svg_gantt", "svg_gantt_cores"]


def _entities_in_order(trace: ExecutionTrace,
                       entities: list[str] | None) -> list[str]:
    if entities is not None:
        return entities
    seen: list[str] = []
    for seg in trace.segments:
        if seg.entity not in seen:
            seen.append(seg.entity)
    return seen


def ascii_gantt(
    trace: ExecutionTrace,
    until: float | None = None,
    quantum: float = 1.0,
    entities: list[str] | None = None,
    width_label: int = 12,
) -> str:
    """Render the trace as fixed-width text.

    Each row is an entity; each column covers ``quantum`` time units.
    A cell shows ``#`` when the entity ran for the full quantum, ``+``
    when it ran for part of it, and ``.`` when it did not run.  A final
    axis row marks every fifth quantum.

    >>> # doctest-style sketch (see tests for real assertions):
    >>> # PS           |####..####..|
    >>> # t1           |....##....##|
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum}")
    horizon = until if until is not None else trace.makespan
    ncols = max(1, round(horizon / quantum))
    names = _entities_in_order(trace, entities)
    rows: list[str] = []
    for name in names:
        segs = trace.segments_of(name)
        cells = []
        for c in range(ncols):
            lo, hi = c * quantum, (c + 1) * quantum
            covered = _coverage(segs, lo, hi)
            if covered >= (hi - lo) - 1e-9:
                cells.append("#")
            elif covered > 1e-9:
                cells.append("+")
            else:
                cells.append(".")
        rows.append(f"{name:<{width_label}}|{''.join(cells)}|")
    axis = [" "] * ncols
    for c in range(0, ncols, 5):
        mark = str(round(c * quantum))
        for i, ch in enumerate(mark):
            if c + i < ncols:
                axis[c + i] = ch
    rows.append(f"{'':<{width_label}} {''.join(axis)}")
    return "\n".join(rows)


def _coverage(segments: list[Segment], lo: float, hi: float) -> float:
    return sum(
        max(0.0, min(s.end, hi) - max(s.start, lo)) for s in segments
    )


def ascii_capacity(
    history: list[tuple[float, float]],
    until: float,
    quantum: float = 1.0,
    label: str = "capacity",
    width_label: int = 12,
) -> str:
    """Render a (time, capacity) staircase as a row of digits.

    Each cell shows the capacity at the *start* of its quantum, rounded
    down to an integer digit (values above 9 render as ``#``) — the
    budget curve the paper's figures draw under the schedule.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum}")
    ncols = max(1, round(until / quantum))
    cells = []
    for c in range(ncols):
        t = c * quantum
        value = 0.0
        for time, capacity in history:
            if time > t + 1e-9:
                break
            value = capacity
        digit = int(value)
        cells.append(str(digit) if 0 <= digit <= 9 else "#")
    return f"{label:<{width_label}}|{''.join(cells)}|"


_SVG_COLOURS = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f",
    "#956cb4", "#8c613c", "#dc7ec0", "#797979",
]

#: point events drawn on the SVG timeline: kind -> (glyph, colour)
_MARKERS = {
    TraceEventKind.RELEASE: ("▲", "#2a2a2a"),
    TraceEventKind.COMPLETION: ("▼", "#2a7a2a"),
    TraceEventKind.INTERRUPT: ("✕", "#c0392b"),
    TraceEventKind.DEADLINE_MISS: ("!", "#c0392b"),
    TraceEventKind.OVERRUN: ("⚠", "#b8860b"),
    TraceEventKind.FAULT: ("☇", "#8e44ad"),
    TraceEventKind.WATCHDOG: ("◉", "#c0392b"),
    TraceEventKind.SHED: ("⤓", "#d65f5f"),
    TraceEventKind.BREAKER_OPEN: ("⊘", "#c0392b"),
    TraceEventKind.BREAKER_CLOSE: ("⊙", "#2a7a2a"),
    TraceEventKind.MODE_CHANGE: ("⇄", "#b8860b"),
    TraceEventKind.VIOLATION: ("✖", "#e0115f"),
    TraceEventKind.RECONCILE: ("≈", "#4878d0"),
    TraceEventKind.DIVERGENCE: ("≉", "#d65f5f"),
    TraceEventKind.REPLAN: ("↻", "#956cb4"),
    TraceEventKind.SHARD_DOWN: ("☠", "#c0392b"),
    TraceEventKind.SHARD_RESTORED: ("⟳", "#2a7a2a"),
    TraceEventKind.FAILOVER: ("⇒", "#b8860b"),
    TraceEventKind.INGEST: ("▷", "#4878d0"),
    TraceEventKind.RESPONSE: ("◁", "#2a7a2a"),
    TraceEventKind.CLOCK_PAUSE: ("⏸", "#c0392b"),
    TraceEventKind.GATEWAY_RESTORED: ("⟲", "#2a7a2a"),
    TraceEventKind.CYCLE: ("↺", "#1f618d"),
}


def svg_gantt(
    trace: ExecutionTrace,
    until: float | None = None,
    entities: list[str] | None = None,
    px_per_unit: float = 24.0,
    row_height: int = 28,
    label_width: int = 120,
    show_markers: bool = True,
) -> str:
    """Render the trace as a standalone SVG document (a string).

    ``show_markers`` draws the point events (releases ▲, completions ▼,
    interrupts ✕, deadline misses !) above the row of the entity whose
    segments carry the event's subject as a job label.
    """
    horizon = until if until is not None else trace.makespan
    names = _entities_in_order(trace, entities)
    width = label_width + int(horizon * px_per_unit) + 20
    height = row_height * (len(names) + 1) + 30
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    def x(t: float) -> float:
        return label_width + t * px_per_unit

    for row, name in enumerate(names):
        y = 10 + row * row_height
        colour = _SVG_COLOURS[row % len(_SVG_COLOURS)]
        parts.append(
            f'<text x="4" y="{y + row_height * 0.6:.1f}">{_esc(name)}</text>'
        )
        for seg in trace.segments_of(name):
            parts.append(
                f'<rect x="{x(seg.start):.1f}" y="{y:.1f}" '
                f'width="{seg.duration * px_per_unit:.1f}" '
                f'height="{row_height - 8}" fill="{colour}">'
                f"<title>{_esc(seg.job or name)} "
                f"[{seg.start:g}, {seg.end:g})</title></rect>"
            )
    if show_markers:
        # map each job label to the row of the entity that executed it
        job_row: dict[str, int] = {}
        for row, name in enumerate(names):
            for seg in trace.segments_of(name):
                if seg.job is not None:
                    job_row.setdefault(seg.job, row)
            job_row.setdefault(name, row)
        for event in trace.events:
            marker = _MARKERS.get(event.kind)
            if marker is None or event.time > horizon + 1e-9:
                continue
            row = job_row.get(event.subject)
            if row is None:
                if event.kind not in (TraceEventKind.VIOLATION,
                                      TraceEventKind.CYCLE):
                    continue
                # unattributable violations and the kernel's CYCLE
                # marker flag the top row so they are never missed
                row = 0
            glyph, colour = marker
            y = 10 + row * row_height
            parts.append(
                f'<text x="{x(event.time) - 4:.1f}" y="{y - 2:.1f}" '
                f'fill="{colour}" font-size="10">{glyph}'
                f"<title>{_esc(event.kind.value)}: {_esc(event.subject)} "
                f"at {event.time:g}</title></text>"
            )
    # time axis with unit ticks
    axis_y = 10 + len(names) * row_height + 8
    parts.append(
        f'<line x1="{x(0):.1f}" y1="{axis_y}" x2="{x(horizon):.1f}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    t = 0.0
    while t <= horizon + 1e-9:
        parts.append(
            f'<line x1="{x(t):.1f}" y1="{axis_y - 3}" x2="{x(t):.1f}" '
            f'y2="{axis_y + 3}" stroke="black"/>'
        )
        if round(t) % 5 == 0:
            parts.append(
                f'<text x="{x(t) - 3:.1f}" y="{axis_y + 16}">{round(t)}</text>'
            )
        t += 1.0
    parts.append("</svg>")
    return "\n".join(parts)


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


#: glyph + colour for migrations on the per-core renderer
_MIGRATION_MARKER = ("⇄", "#1f618d")

#: glyph + colour for sanitizer violations on the per-core renderer
_VIOLATION_MARKER = ("✖", "#e0115f")

#: glyph + colour for the kernel's hyperperiod CYCLE marker
_CYCLE_MARKER = ("↺", "#1f618d")


def svg_gantt_cores(
    trace: ExecutionTrace,
    n_cores: int | None = None,
    until: float | None = None,
    px_per_unit: float = 24.0,
    row_height: int = 28,
    label_width: int = 120,
    show_markers: bool = True,
) -> str:
    """Render a multicore trace: one lane per core, shared time axis.

    Each lane shows the segments that executed on that core, coloured by
    entity (consistently across lanes, so a migrating entity keeps its
    colour); migration events are drawn with a distinct ``⇄`` glyph on
    the *destination* core's lane.  A legend row maps colours back to
    entities.  Single-core traces (``core=None`` segments) belong to
    :func:`svg_gantt`, whose output this function does not touch.
    """
    horizon = until if until is not None else trace.makespan
    cores = trace.cores
    if n_cores is None:
        n_cores = (max(cores) + 1) if cores else 1
    # entity colouring in first-execution order, like svg_gantt rows
    entities: list[str] = []
    for seg in trace.segments:
        if seg.entity not in entities:
            entities.append(seg.entity)
    colour_of = {
        name: _SVG_COLOURS[i % len(_SVG_COLOURS)]
        for i, name in enumerate(entities)
    }
    legend_rows = 1 if entities else 0
    width = label_width + int(horizon * px_per_unit) + 20
    height = row_height * (n_cores + 1 + legend_rows) + 30
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    def x(t: float) -> float:
        return label_width + t * px_per_unit

    def lane_y(core: int) -> float:
        return 10 + core * row_height

    for core in range(n_cores):
        y = lane_y(core)
        parts.append(
            f'<text x="4" y="{y + row_height * 0.6:.1f}">core {core}</text>'
        )
        for seg in trace.segments:
            if seg.core != core:
                continue
            parts.append(
                f'<rect x="{x(seg.start):.1f}" y="{y:.1f}" '
                f'width="{seg.duration * px_per_unit:.1f}" '
                f'height="{row_height - 8}" '
                f'fill="{colour_of[seg.entity]}">'
                f"<title>{_esc(seg.entity)}"
                f"{': ' + _esc(seg.job) if seg.job else ''} "
                f"[{seg.start:g}, {seg.end:g})</title></rect>"
            )
    if show_markers:
        for event in trace.events:
            if event.time > horizon + 1e-9:
                continue
            if event.kind is TraceEventKind.MIGRATION:
                glyph, colour = _MIGRATION_MARKER
                core = _migration_destination(event.detail)
                if core is None or not 0 <= core < n_cores:
                    continue
                y = lane_y(core)
                parts.append(
                    f'<text x="{x(event.time) - 4:.1f}" y="{y - 2:.1f}" '
                    f'fill="{colour}" font-size="10">{glyph}'
                    f"<title>migration: {_esc(event.subject)} "
                    f"{_esc(event.detail)} at {event.time:g}</title></text>"
                )
            elif event.kind is TraceEventKind.VIOLATION:
                # the monitor cannot always attribute a core; flag the
                # instant above the top lane so it is never missed
                glyph, colour = _VIOLATION_MARKER
                parts.append(
                    f'<text x="{x(event.time) - 4:.1f}" '
                    f'y="{lane_y(0) - 2:.1f}" fill="{colour}" '
                    f'font-size="10">{glyph}'
                    f"<title>violation: {_esc(event.subject)} "
                    f"{_esc(event.detail)} at {event.time:g}</title></text>"
                )
            elif event.kind is TraceEventKind.CYCLE:
                # the kernel's cycle marker is core-less; flag it above
                # the top lane, like violations
                glyph, colour = _CYCLE_MARKER
                parts.append(
                    f'<text x="{x(event.time) - 4:.1f}" '
                    f'y="{lane_y(0) - 2:.1f}" fill="{colour}" '
                    f'font-size="10">{glyph}'
                    f"<title>cycle: {_esc(event.detail)} "
                    f"at {event.time:g}</title></text>"
                )
    # time axis with unit ticks
    axis_y = 10 + n_cores * row_height + 8
    parts.append(
        f'<line x1="{x(0):.1f}" y1="{axis_y}" x2="{x(horizon):.1f}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    t = 0.0
    while t <= horizon + 1e-9:
        parts.append(
            f'<line x1="{x(t):.1f}" y1="{axis_y - 3}" x2="{x(t):.1f}" '
            f'y2="{axis_y + 3}" stroke="black"/>'
        )
        if round(t) % 5 == 0:
            parts.append(
                f'<text x="{x(t) - 3:.1f}" y="{axis_y + 16}">{round(t)}</text>'
            )
        t += 1.0
    # legend: entity colour swatches under the axis
    if entities:
        y = axis_y + 24
        cursor = float(label_width)
        for name in entities:
            parts.append(
                f'<rect x="{cursor:.1f}" y="{y}" width="10" height="10" '
                f'fill="{colour_of[name]}"/>'
            )
            parts.append(
                f'<text x="{cursor + 14:.1f}" y="{y + 9}">{_esc(name)}</text>'
            )
            cursor += 14 + 7 * len(name) + 16
    parts.append("</svg>")
    return "\n".join(parts)


def _migration_destination(detail: str) -> int | None:
    """Destination core of a MIGRATION event detail (``"<from>-><to>"``)."""
    _, sep, to = detail.partition("->")
    if not sep:
        return None
    try:
        return int(to)
    except ValueError:
        return None
