"""``AsyncEvent`` / ``AsyncEventHandler`` on the emulated VM.

The RTSJ models an asynchronous happening as an :class:`AsyncEvent`; each
``fire()`` releases every attached :class:`AsyncEventHandler`.  Handlers
are schedulable: here each handler is backed by a dedicated VM thread
that blocks on :class:`~repro.rtsj.instructions.AwaitRelease` and runs the
handler logic once per banked firing, at the handler's priority — the
fire-count semantics of the specification.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, TYPE_CHECKING

from .instructions import AwaitRelease, Instruction
from .params import ReleaseParameters, SchedulingParameters
from .thread import RealtimeThread, Schedulable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .vm import RTSJVirtualMachine

__all__ = ["AsyncEvent", "AsyncEventHandler"]

HandlerLogic = Callable[["AsyncEventHandler"], Generator[Instruction, Any, Any]]


class AsyncEventHandler(Schedulable):
    """Code released by the firing of one or more async events.

    Subclass and override :meth:`handle_async_event`, or pass ``logic``
    (a callable returning a generator of VM instructions).
    """

    def __init__(
        self,
        logic: HandlerLogic | None = None,
        scheduling: SchedulingParameters | None = None,
        release: ReleaseParameters | None = None,
        name: str = "aeh",
    ) -> None:
        super().__init__(scheduling, release)
        self.logic = logic
        self.name = name
        self.fire_count_total = 0
        self._thread: RealtimeThread | None = None

    def handle_async_event(self) -> Generator[Instruction, Any, Any]:
        """The released logic; one invocation per consumed firing."""
        if self.logic is None:
            return
            yield  # pragma: no cover - makes this a generator function
        yield from self.logic(self)

    # -- VM wiring -----------------------------------------------------------

    def attach(self, vm: "RTSJVirtualMachine") -> None:
        """Create and start the backing server thread."""
        if self._thread is not None:
            raise RuntimeError(f"handler {self.name!r} already attached")

        def loop(thread: RealtimeThread) -> Generator[Instruction, Any, None]:
            while True:
                yield AwaitRelease()
                yield from self.handle_async_event()

        self._thread = RealtimeThread(
            loop,
            scheduling=self.scheduling,
            release=self.release,
            name=self.name,
        )
        vm.add_thread(self._thread)

    @property
    def thread(self) -> RealtimeThread:
        """The backing thread (raises if not attached)."""
        if self._thread is None:
            raise RuntimeError(f"handler {self.name!r} is not attached to a VM")
        return self._thread

    @property
    def attached(self) -> bool:
        return self._thread is not None

    def release_handler(self) -> None:
        """Deliver one firing (RTSJ increments the handler's fireCount)."""
        self.fire_count_total += 1
        thread = self.thread
        assert thread.vm is not None
        thread.vm.release_thread(thread)


class AsyncEvent:
    """An asynchronous happening; firing releases the attached handlers."""

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._handlers: list[AsyncEventHandler] = []
        self.fire_count = 0

    def add_handler(self, handler: AsyncEventHandler) -> None:
        """Attach a handler (idempotent, as in the RTSJ)."""
        if handler not in self._handlers:
            self._handlers.append(handler)

    def remove_handler(self, handler: AsyncEventHandler) -> None:
        """Detach a handler if attached."""
        if handler in self._handlers:
            self._handlers.remove(handler)

    @property
    def handlers(self) -> list[AsyncEventHandler]:
        return list(self._handlers)

    def fire(self) -> None:
        """Release every attached handler once."""
        self.fire_count += 1
        for handler in self._handlers:
            handler.release_handler()
