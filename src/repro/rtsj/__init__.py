"""Emulated RTSJ substrate: a deterministic virtual-time runtime.

This package substitutes for the paper's testbed (the TimeSys RTSJ
Reference Implementation on RT-Linux).  It provides the ``javax.realtime``
functionality the Task Server Framework of :mod:`repro.core` touches:
high-resolution time, parameter objects, realtime threads under a
preemptive fixed-priority scheduler, asynchronous events and handlers,
timers firing in interrupt context, ``Timed``/``Interruptible``
asynchronous transfer of control, and processing-group budget accounting
— all driven by the :class:`RTSJVirtualMachine` with a configurable
runtime-overhead model.
"""

from .time_types import NANOS_PER_MILLI, AbsoluteTime, HighResolutionTime, RelativeTime
from .params import (
    AperiodicParameters,
    PeriodicParameters,
    PriorityParameters,
    ProcessingGroupParameters,
    ReleaseParameters,
    SchedulingParameters,
    SporadicParameters,
)
from .instructions import AwaitRelease, Compute, Instruction, Sleep, WaitForNextPeriod
from .interruptible import AsynchronouslyInterruptedException, Interruptible, Timed
from .overhead import OverheadModel
from .thread import (
    MAX_RT_PRIORITY,
    MIN_RT_PRIORITY,
    RealtimeThread,
    Schedulable,
    ThreadState,
)
from .scheduler import PriorityScheduler
from .vm import NS_PER_UNIT, RTSJVirtualMachine
from .async_event import AsyncEvent, AsyncEventHandler
from .timer import OneShotTimer, PeriodicTimer
from .clock import Clock, RealtimeClock

__all__ = [
    "NANOS_PER_MILLI",
    "AbsoluteTime",
    "HighResolutionTime",
    "RelativeTime",
    "AperiodicParameters",
    "PeriodicParameters",
    "PriorityParameters",
    "ProcessingGroupParameters",
    "ReleaseParameters",
    "SchedulingParameters",
    "SporadicParameters",
    "AwaitRelease",
    "Compute",
    "Instruction",
    "Sleep",
    "WaitForNextPeriod",
    "AsynchronouslyInterruptedException",
    "Interruptible",
    "Timed",
    "OverheadModel",
    "MAX_RT_PRIORITY",
    "MIN_RT_PRIORITY",
    "RealtimeThread",
    "Schedulable",
    "ThreadState",
    "PriorityScheduler",
    "NS_PER_UNIT",
    "RTSJVirtualMachine",
    "AsyncEvent",
    "AsyncEventHandler",
    "OneShotTimer",
    "PeriodicTimer",
    "Clock",
    "RealtimeClock",
]
