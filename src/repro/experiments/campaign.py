"""The paper's evaluation campaign (Section 6, Tables 2-5).

Six sets of ten randomly generated systems, each run four ways:

* ``ps_sim``  — ideal Polling Server on the RTSS simulator (Table 2);
* ``ps_exec`` — framework ``PollingTaskServer`` on the emulated RTSJ VM
  with runtime overheads (Table 3);
* ``ds_sim``  — ideal Deferrable Server on RTSS (Table 4);
* ``ds_exec`` — framework ``DeferrableTaskServer`` on the VM (Table 5).

Both arms consume byte-identical workloads from
:mod:`repro.workload.generator`, and both report the paper's metrics
(AART / AIR / ASR) through :mod:`repro.sim.metrics`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field, replace as _replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..core import (
    DeferrableTaskServer,
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServer,
    TaskServerParameters,
)
from ..rtsj import (
    AbsoluteTime,
    Compute,
    MAX_RT_PRIORITY,
    MIN_RT_PRIORITY,
    NS_PER_UNIT,
    OverheadModel,
    PeriodicParameters,
    PriorityParameters,
    RealtimeThread,
    RelativeTime,
    RTSJVirtualMachine,
    WaitForNextPeriod,
)
from ..sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealDeferrableServer,
    IdealPollingServer,
    RunMetrics,
    SetMetrics,
    Simulation,
    aggregate,
    measure_run,
)
from ..sim.servers.base import AperiodicServer
from ..sim.trace import ExecutionTrace
from ..workload import GeneratedSystem, GenerationParameters, PAPER_SETS, RandomSystemGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.enforcement import EnforcementConfig
    from ..faults.injectors import FaultPlan

__all__ = [
    "ARMS",
    "SystemResult",
    "CampaignResult",
    "RunPolicy",
    "RunRecord",
    "RunTimeout",
    "simulate_system",
    "execute_system",
    "run_campaign",
]

ARMS = ("ps_sim", "ps_exec", "ds_sim", "ds_exec")


class RunTimeout(Exception):
    """A single campaign run exceeded its wall-clock allowance."""


@dataclass(frozen=True)
class RunPolicy:
    """Resilience policy for campaign runs.

    * ``timeout_s`` — wall-clock limit per run (``None`` = unlimited;
      enforced with ``SIGALRM``, so it is a no-op off the main thread or
      on platforms without POSIX signals);
    * ``max_retries`` — how many times a crashed/hung run is retried,
      each retry regenerating the system from a bumped master seed
      (``seed + attempt * retry_seed_bump``) so a pathological random
      stream cannot wedge the sweep;
    * ``checkpoint_path`` — JSONL file of per-run records; an existing
      file is loaded on start and completed runs are skipped, so an
      interrupted campaign resumes instead of restarting.
    """

    timeout_s: float | None = None
    max_retries: int = 0
    retry_seed_bump: int = 1
    checkpoint_path: Path | None = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_seed_bump <= 0:
            raise ValueError(
                f"retry_seed_bump must be > 0, got {self.retry_seed_bump}"
            )


@dataclass
class RunRecord:
    """One (arm, set, system) run outcome — success or structured failure.

    ``payload`` carries arm-specific extra results as a JSON-serialisable
    dict (the multicore campaign stores its per-core metrics there); it
    round-trips through checkpoints untouched.
    """

    arm: str
    set_key: tuple[float, float]
    system_id: int
    status: str  # "ok" | "failed" | "timeout"
    attempts: int = 1
    error: str = ""
    metrics: RunMetrics | None = None
    payload: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "arm": self.arm,
            "set_key": list(self.set_key),
            "system_id": self.system_id,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.metrics is not None:
            out["metrics"] = {
                "released": self.metrics.released,
                "served": self.metrics.served,
                "interrupted": self.metrics.interrupted,
                "average_response_time":
                    self.metrics.average_response_time,
                "response_times": list(self.metrics.response_times),
            }
        if self.payload is not None:
            out["payload"] = self.payload
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        metrics = None
        if data.get("metrics") is not None:
            m = data["metrics"]
            metrics = RunMetrics(
                released=m["released"],
                served=m["served"],
                interrupted=m["interrupted"],
                average_response_time=m["average_response_time"],
                response_times=tuple(m["response_times"]),
            )
        return cls(
            arm=data["arm"],
            set_key=tuple(data["set_key"]),
            system_id=data["system_id"],
            status=data["status"],
            attempts=data.get("attempts", 1),
            error=data.get("error", ""),
            metrics=metrics,
            payload=data.get("payload"),
        )


@contextmanager
def _time_limit(seconds: float | None):
    """Raise :class:`RunTimeout` if the block outlives ``seconds``.

    Uses ``SIGALRM``; silently degrades to no limit off the main thread
    or where the signal is unavailable (the retry/record machinery still
    catches crashes there).
    """
    if (
        seconds is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _periodic_burn(cost_ns: int):
    """Thread logic for a generated periodic task: burn, wait, repeat."""

    def logic(thread: RealtimeThread):
        while True:
            yield Compute(cost_ns)
            yield WaitForNextPeriod()

    return logic

_SIM_SERVERS = {"polling": IdealPollingServer, "deferrable": IdealDeferrableServer}
_EXEC_SERVERS = {"polling": PollingTaskServer, "deferrable": DeferrableTaskServer}


@dataclass
class SystemResult:
    """One system's outcome under one arm."""

    metrics: RunMetrics
    trace: ExecutionTrace


@dataclass
class CampaignResult:
    """Aggregated campaign: ``tables[arm][(density, std)] -> SetMetrics``.

    ``records`` holds one :class:`RunRecord` per (arm, set, system) run
    when a :class:`RunPolicy` was active; ``failures`` is the subset that
    did not produce metrics — crashed or timed-out runs are *recorded*
    here instead of aborting the sweep.
    """

    tables: dict[str, dict[tuple[float, float], SetMetrics]] = field(
        default_factory=dict
    )
    records: list[RunRecord] = field(default_factory=list)

    @property
    def failures(self) -> list[RunRecord]:
        return [r for r in self.records if r.status != "ok"]

    def table(self, arm: str) -> dict[tuple[float, float], SetMetrics]:
        if arm not in self.tables:
            raise KeyError(f"unknown arm {arm!r}; have {sorted(self.tables)}")
        return self.tables[arm]


def simulate_system(system: GeneratedSystem,
                    policy: str = "polling",
                    enforcement: "EnforcementConfig | None" = None,
                    ) -> SystemResult:
    """Run one system on RTSS with the ideal version of ``policy``.

    The server is forced above every periodic task — the paper's standing
    requirement ("the server has to be the highest-priority task in the
    system"), regardless of the priority recorded in the spec.
    ``enforcement`` (optional) applies a cost-overrun policy to the
    server and the periodic entities (see :mod:`repro.faults`).
    """
    server_cls = _SIM_SERVERS[policy]
    sim = Simulation(FixedPriorityPolicy(), enforcement=enforcement)
    top = max(
        (t.priority for t in system.periodic_tasks),
        default=system.server.priority,
    )
    spec = _replace(system.server, priority=max(system.server.priority, top + 1))
    server: AperiodicServer = server_cls(
        spec, name=policy.upper(), enforcement=enforcement
    )
    server.attach(sim, horizon=system.horizon)
    for spec in system.periodic_tasks:
        sim.add_periodic_task(spec)
    jobs: list[AperiodicJob] = []
    for event in system.events:
        job = AperiodicJob(
            name=f"h{event.event_id}",
            release=event.release,
            cost=event.cost,
            declared_cost=event.declared_cost,
        )
        jobs.append(job)
        sim.submit_aperiodic(job, server.submit)
    trace = sim.run(until=system.horizon)
    return SystemResult(metrics=measure_run(jobs), trace=trace)


def execute_system(
    system: GeneratedSystem,
    policy: str = "polling",
    overhead: OverheadModel | None = None,
    server_priority: int = MAX_RT_PRIORITY,
    queue: str = "fifo",
    safety_margin: RelativeTime | None = None,
    enforcement: "EnforcementConfig | None" = None,
    timer_drift_ppm: float = 0.0,
) -> SystemResult:
    """Run one system's framework implementation on the emulated VM.

    Each aperiodic event becomes a :class:`ServableAsyncEvent` fired by a
    timer at its release instant (timer firings cost ISR time under the
    overhead model, reproducing the paper's "timers charged to fire the
    asynchronous events").  ``enforcement`` bounds handlers to their
    declared costs; ``timer_drift_ppm`` makes the VM's release timers
    drift (see :mod:`repro.faults`).
    """
    vm = RTSJVirtualMachine(
        overhead=overhead if overhead is not None else OverheadModel(),
        timer_drift_ppm=timer_drift_ppm,
    )
    params = TaskServerParameters.from_spec(
        system.server, priority=server_priority
    )
    server_cls = _EXEC_SERVERS[policy]
    if policy == "polling":
        server: TaskServer = server_cls(
            params, queue=queue, safety_margin=safety_margin,
            enforcement=enforcement,
        )
    else:
        server = server_cls(
            params, safety_margin=safety_margin, enforcement=enforcement
        )
    horizon_ns = round(system.horizon * NS_PER_UNIT)
    server.attach(vm, horizon_ns)

    # periodic tasks run below the server: map their (arbitrary-scale)
    # spec priorities onto consecutive RTSJ priorities under the server's
    for rank, spec in enumerate(
        sorted(system.periodic_tasks, key=lambda t: t.priority, reverse=True)
    ):
        rtsj_priority = server_priority - 1 - rank
        if rtsj_priority < MIN_RT_PRIORITY:
            raise ValueError(
                "too many periodic tasks to fit below the server priority"
            )
        vm.add_thread(
            RealtimeThread(
                _periodic_burn(round(spec.execution_cost * NS_PER_UNIT)),
                PriorityParameters(rtsj_priority),
                PeriodicParameters(
                    AbsoluteTime.from_nanos(round(spec.offset * NS_PER_UNIT)),
                    RelativeTime.from_units(spec.period),
                ),
                name=spec.name,
            )
        )

    for event in system.events:
        handler = ServableAsyncEventHandler(
            cost=RelativeTime.from_units(event.declared_cost),
            server=server,
            actual_cost=RelativeTime.from_units(event.cost),
            name=f"h{event.event_id}",
        )
        sae = ServableAsyncEvent(name=f"e{event.event_id}")
        sae.add_servable_handler(handler)
        vm.schedule_timer_event(
            round(event.release * NS_PER_UNIT),
            lambda now, e=sae: e.fire(),
        )
    trace = vm.run(horizon_ns)
    return SystemResult(metrics=server.run_metrics(), trace=trace)


def _run_arm(
    arm: str,
    system: GeneratedSystem,
    overhead: OverheadModel | None,
    enforcement: "EnforcementConfig | None",
) -> RunMetrics:
    policy = "polling" if arm.startswith("ps") else "deferrable"
    if arm.endswith("_sim"):
        return simulate_system(system, policy, enforcement=enforcement).metrics
    return execute_system(
        system, policy, overhead, enforcement=enforcement
    ).metrics


def _load_checkpoint(path: Path) -> dict[tuple, RunRecord]:
    """Load completed run records from a JSONL checkpoint file."""
    done: dict[tuple, RunRecord] = {}
    if not path.exists():
        return done
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = RunRecord.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                # a run killed mid-write leaves a truncated final line;
                # skip it — that run simply re-executes and re-appends
                continue
            done[(record.arm, record.set_key, record.system_id)] = record
    return done


def _append_checkpoint(path: Path | None, record: RunRecord) -> None:
    """Append one record, durably: a single write, flushed and fsynced.

    Only the campaign *parent* process ever calls this (worker processes
    run with ``checkpoint_path=None``), so concurrent sweeps cannot
    interleave partial lines and a crash leaves at most one truncated
    final line — which :func:`_load_checkpoint` skips on resume.
    """
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    prefix = ""
    if path.exists() and path.stat().st_size:
        # a crash can leave a truncated final line with no newline;
        # isolate it so the new record starts on a line of its own
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                prefix = "\n"
    with path.open("a") as fh:
        fh.write(prefix + json.dumps(record.to_dict()) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _parallel_map(fn, tasks: list, workers: int) -> list:
    """Ordered map over ``tasks``, optionally on a process pool.

    With ``workers <= 1`` (or at most one task) the map runs inline in
    this process — preserving ``SIGALRM`` timeouts on the main thread.
    With more workers, tasks fan out over a ``multiprocessing`` pool;
    results come back in submission order, so downstream aggregation is
    bit-identical to a sequential sweep.  Each pool worker's task runs on
    that worker's main thread, so per-run ``SIGALRM`` timeouts still
    apply there.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(fn, tasks, chunksize=1)


def _campaign_worker(task: tuple) -> RunRecord:
    """Pool entry point for one (arm, system) run of the paper campaign."""
    (hardened, arm, params, system, overhead, enforcement, fault_plan,
     run_policy) = task
    if hardened:
        return _guarded_run(
            arm, params, system, overhead, enforcement, fault_plan,
            run_policy,
        )
    key = (params.task_density, params.std_deviation)
    metrics = _run_arm(arm, system, overhead, enforcement)
    return RunRecord(
        arm=arm, set_key=key, system_id=system.system_id,
        status="ok", metrics=metrics,
    )


def _guarded_run(
    arm: str,
    params: GenerationParameters,
    system: GeneratedSystem,
    overhead: OverheadModel | None,
    enforcement: "EnforcementConfig | None",
    fault_plan: "FaultPlan | None",
    run_policy: RunPolicy,
) -> RunRecord:
    """Run one (arm, system) with timeout, bounded retry and seed-bump.

    A retry regenerates the *same* system index from a bumped master
    seed (fault plan re-applied), so a pathological random stream is
    routed around rather than hammered.
    """
    key = (params.task_density, params.std_deviation)
    attempts = 0
    current = system
    last_error = ""
    status = "failed"
    while attempts <= run_policy.max_retries:
        attempts += 1
        try:
            with _time_limit(run_policy.timeout_s):
                metrics = _run_arm(arm, current, overhead, enforcement)
            return RunRecord(
                arm=arm, set_key=key, system_id=system.system_id,
                status="ok", attempts=attempts, metrics=metrics,
            )
        except RunTimeout as exc:
            status, last_error = "timeout", str(exc)
        except Exception:
            status, last_error = "failed", traceback.format_exc(limit=5)
        if attempts <= run_policy.max_retries:
            bumped = _replace(
                params,
                seed=params.seed + attempts * run_policy.retry_seed_bump,
            )
            regenerated = RandomSystemGenerator(bumped).generate()
            current = regenerated[system.system_id]
            if fault_plan is not None:
                current = fault_plan.apply(current)
    return RunRecord(
        arm=arm, set_key=key, system_id=system.system_id,
        status=status, attempts=attempts, error=last_error,
    )


def run_campaign(
    sets: tuple[GenerationParameters, ...] = PAPER_SETS,
    overhead: OverheadModel | None = None,
    arms: tuple[str, ...] = ARMS,
    fault_plan: "FaultPlan | None" = None,
    enforcement: "EnforcementConfig | None" = None,
    run_policy: RunPolicy | None = None,
    workers: int = 1,
) -> CampaignResult:
    """Run the full evaluation; returns per-arm tables keyed like the
    paper's ``(density, std)`` columns.

    ``fault_plan`` injects workload faults (both arms still consume
    byte-identical — faulted — inputs); ``enforcement`` applies a
    cost-overrun policy in every arm; ``run_policy`` hardens the sweep:
    crashed, hung or timed-out runs become structured failure records in
    ``CampaignResult.records`` instead of exceptions, with optional
    bounded retry and JSONL checkpointing for resume.  ``workers > 1``
    fans the (arm, system) runs out over a ``multiprocessing`` pool —
    every run is still generated from the same master-seed fan-out and
    results are folded back in sequential order, so tables and records
    are bit-identical to a one-worker sweep; checkpoint lines are
    written (flushed + fsynced) by this parent process only.  Everything
    defaults to the paper-faithful golden path.
    """
    result = CampaignResult(tables={arm: {} for arm in arms})
    policy = run_policy if run_policy is not None else RunPolicy()
    checkpointed = (
        _load_checkpoint(policy.checkpoint_path)
        if policy.checkpoint_path is not None
        else {}
    )
    hardened = run_policy is not None
    # workers never see the checkpoint path: the parent is the only writer
    worker_policy = _replace(policy, checkpoint_path=None)

    generated: list[tuple[GenerationParameters, list[GeneratedSystem]]] = []
    for params in sets:
        systems = RandomSystemGenerator(params).generate()
        if fault_plan is not None:
            systems = fault_plan.apply_all(systems)
        generated.append((params, systems))

    # flatten into (slot per run) preserving the sequential sweep order;
    # checkpointed runs keep their record, the rest go to the pool
    order: list[tuple[GenerationParameters, str, int, bool]] = []
    pending: list[tuple | None] = []
    for params, systems in generated:
        key = (params.task_density, params.std_deviation)
        for system in systems:
            for arm in arms:
                cached = (
                    hardened
                    and (arm, key, system.system_id) in checkpointed
                )
                order.append((params, arm, system.system_id, cached))
                pending.append(
                    None if cached else (
                        hardened, arm, params, system, overhead,
                        enforcement, fault_plan, worker_policy,
                    )
                )
    fresh = iter(_parallel_map(
        _campaign_worker, [t for t in pending if t is not None], workers
    ))

    per_set: dict[tuple[float, float], dict[str, list[RunMetrics]]] = {}
    for slot, (params, arm, system_id, cached) in zip(pending, order):
        key = (params.task_density, params.std_deviation)
        per_arm = per_set.setdefault(key, {a: [] for a in arms})
        if cached:
            record = checkpointed[(arm, key, system_id)]
        else:
            record = next(fresh)
            if hardened:
                _append_checkpoint(policy.checkpoint_path, record)
        if hardened:
            result.records.append(record)
        if record.metrics is not None:
            per_arm[arm].append(record.metrics)
    for params, _ in generated:
        key = (params.task_density, params.std_deviation)
        for arm in arms:
            if per_set[key][arm]:
                result.tables[arm][key] = aggregate(per_set[key][arm])
    return result
