"""repro.smp: multicore (SMP) scheduling on *m* identical cores.

The paper's servers and the RTSS simulator are strictly uniprocessor;
this subsystem generalises them following Nogueira & Pinho
(arXiv:1106.2766, server-based multiprocessor scheduling) and exploits
the determinism/periodicity properties of Grolleau et al.
(arXiv:1305.3849) as testable invariants:

* :class:`MulticoreSimulation` — the *m*-core discrete-event kernel
  (shared clock, per-core run state, migration accounting);
* partitioned placement — :func:`partition_tasks` with first-/worst-/
  best-fit decreasing-utilization heuristics and explicit rejection;
* global scheduling — :class:`GlobalFixedPriorityPolicy` and
  :class:`GlobalEDFPolicy` (top-*m* selection, affinity-preserving);
* per-core + aggregate AART/AIR/ASR metrics and utilization;
* an end-to-end campaign (:func:`run_multicore_campaign`) sharing the
  hardening (timeout/retry/checkpoint) and worker pool of the
  uniprocessor campaign executor.
"""

from .engine import MulticoreSimulation
from .partition import (
    PLACEMENT_HEURISTICS,
    Partition,
    PartitionError,
    partition_tasks,
)
from .policies import (
    AperiodicRouter,
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    MulticorePolicy,
    PartitionedPolicy,
)
from .metrics import (
    CoreMetrics,
    MulticoreRunMetrics,
    measure_multicore_run,
    multicore_metrics_from_dict,
    multicore_metrics_to_dict,
)
from .campaign import (
    MULTICORE_MODES,
    MulticoreCampaignResult,
    MulticoreParameters,
    MulticoreSystemResult,
    build_multicore_system,
    run_multicore_campaign,
    run_multicore_overload_campaign,
    run_multicore_system,
)
from .tables import format_multicore_campaign, format_multicore_table

__all__ = [
    "MulticoreSimulation",
    "PLACEMENT_HEURISTICS",
    "Partition",
    "PartitionError",
    "partition_tasks",
    "AperiodicRouter",
    "GlobalEDFPolicy",
    "GlobalFixedPriorityPolicy",
    "MulticorePolicy",
    "PartitionedPolicy",
    "CoreMetrics",
    "MulticoreRunMetrics",
    "measure_multicore_run",
    "multicore_metrics_from_dict",
    "multicore_metrics_to_dict",
    "MULTICORE_MODES",
    "MulticoreCampaignResult",
    "MulticoreParameters",
    "MulticoreSystemResult",
    "build_multicore_system",
    "run_multicore_campaign",
    "run_multicore_overload_campaign",
    "run_multicore_system",
    "format_multicore_campaign",
    "format_multicore_table",
]
