"""Empirical arrival curves: connect generated workloads to the bounds.

Extracts the tightest affine arrival curve ``alpha(t) = burst + rate*t``
that upper-bounds an event trace's demand in every window, so a
generated system (or a recorded trace of releases) can be fed straight
into the delay bounds of :mod:`repro.analysis.resource_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import GeneratedSystem

__all__ = ["AffineArrivalCurve", "fit_affine_curve", "curve_of_system"]


@dataclass(frozen=True)
class AffineArrivalCurve:
    """``alpha(t) = burst + rate * t`` for ``t > 0`` (0 at ``t = 0``)."""

    burst: float
    rate: float

    def __post_init__(self) -> None:
        if self.burst < 0 or self.rate < 0:
            raise ValueError("burst and rate must be non-negative")

    def bound(self, window: float) -> float:
        """Maximum demand admissible in any window of that length."""
        if window <= 0:
            return 0.0
        return self.burst + self.rate * window

    def admits(self, events: list[tuple[float, float]],
               tolerance: float = 1e-9) -> bool:
        """True when every window of the (release, cost) trace respects
        the curve."""
        events = sorted(events)
        for i in range(len(events)):
            demand = 0.0
            for j in range(i, len(events)):
                demand += events[j][1]
                window = events[j][0] - events[i][0]
                if demand > self.burst + self.rate * window + tolerance:
                    return False
        return True


def fit_affine_curve(events: list[tuple[float, float]],
                     rate: float | None = None) -> AffineArrivalCurve:
    """The tightest affine curve over a finite (release, cost) trace.

    With ``rate`` given, computes the minimal burst for that rate:
    ``b = max over windows of (demand - rate * window)``.  Without it,
    uses the trace's long-run rate (total demand / span) — the smallest
    rate for which a finite burst exists on the observed windows.

    O(n^2) over the events; intended for analysis-time use.
    """
    if not events:
        return AffineArrivalCurve(burst=0.0, rate=rate if rate else 0.0)
    events = sorted(events)
    if rate is None:
        span = events[-1][0] - events[0][0]
        total = sum(c for _t, c in events)
        rate = total / span if span > 0 else 0.0
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    burst = 0.0
    for i in range(len(events)):
        demand = 0.0
        for j in range(i, len(events)):
            demand += events[j][1]
            window = events[j][0] - events[i][0]
            burst = max(burst, demand - rate * window)
    return AffineArrivalCurve(burst=burst, rate=rate)


def curve_of_system(system: GeneratedSystem,
                    rate: float | None = None) -> AffineArrivalCurve:
    """The empirical curve of a generated system's aperiodic trace."""
    return fit_affine_curve(
        [(e.release, e.cost) for e in system.events], rate=rate
    )
