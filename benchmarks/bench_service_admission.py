"""Admission-service benchmarks: decision throughput and re-plan cost.

Not a paper table — these pin the two hot paths of the PR 6 online
service:

* ``bench_service_admit_decide`` — the O(1) admit/retire cycle (the
  Section 7 bucket peek + place + release), the per-request cost every
  streamed submission pays;
* ``bench_service_repair_backlog`` — one incremental in-place repair of
  a 64-event backlog, the latency bound of the digital twin's local
  re-planning;
* ``bench_service_readmit_backlog`` — the strawman alternative
  (rebuild a fresh planner and re-admit the same backlog), pinning the
  claim that repair is O(backlog) work comparable to re-admission,
  never O(elapsed horizon).

The ``bench-smoke`` guard in ``BENCH_engine.json`` holds the
repair/readmit median ratio, which is portable across machines.
"""

from __future__ import annotations

from repro.service import EventRequest, IncrementalPlanner

ADMIT_CYCLES = 1000
BACKLOG = 64


def _requests(n: int, deadline_base: float = 40.0) -> list[EventRequest]:
    return [
        EventRequest(
            request_id=f"req-{i:05d}",
            cost=0.3 + (i % 7) * 0.15,
            relative_deadline=deadline_base + (i * 13) % 60,
            hard=(i % 3 != 0),
        )
        for i in range(n)
    ]


def bench_service_admit_decide(benchmark):
    """Steady-state O(1) decisions: admit then retire, repeatedly."""
    requests = _requests(ADMIT_CYCLES)

    def run():
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        admitted = 0
        now = 0.0
        for request in requests:
            job, _finish = planner.admit(now, request)
            if job is not None:
                admitted += 1
                planner.retire(request.request_id)
            now += 0.01
        return admitted

    admitted = benchmark(run)
    assert admitted == ADMIT_CYCLES
    print(f"\n{admitted} O(1) admit/retire cycles per round")


def _loaded_planner() -> IncrementalPlanner:
    planner = IncrementalPlanner(capacity=2.0, period=2.0)
    now = 0.0
    for request in _requests(BACKLOG, deadline_base=200.0):
        job, _finish = planner.admit(now, request)
        assert job is not None, request.request_id
        now += 0.05
    return planner


def bench_service_repair_backlog(benchmark):
    """One in-place incremental repair of a standing backlog."""

    def setup():
        return (_loaded_planner(),), {}

    def run(planner):
        return planner.repair(now=4.0, level="local")

    result = benchmark.pedantic(run, setup=setup, rounds=200)
    assert result.moved == BACKLOG and not result.shed
    print(f"\nrepaired {result.moved} of {BACKLOG} jobs in place "
          f"({len(result.shed)} shed)")


def bench_service_readmit_backlog(benchmark):
    """The strawman: rebuild from scratch and re-admit everything."""
    loaded = _loaded_planner()
    jobs = sorted(loaded.jobs.values(), key=lambda j: j.admitted_at)

    def run():
        planner = IncrementalPlanner(capacity=2.0, period=2.0)
        kept = 0
        for job in jobs:
            fresh, _finish = planner.admit(job.admitted_at, job.request)
            if fresh is not None:
                kept += 1
        return kept

    kept = benchmark(run)
    assert kept == BACKLOG
    print(f"\nre-admitted {kept} of {BACKLOG} jobs from scratch")
