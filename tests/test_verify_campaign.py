"""Verification wiring through the campaign layers, and the golden-path
byte-identity guarantee when verification is off."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.campaign import (
    execute_system,
    run_campaign,
    simulate_system,
)
from repro.sim.trace import TraceEventKind
from repro.sim.trace_io import diff_traces, trace_to_dict
from repro.smp.campaign import run_multicore_system
from repro.verify.mutations import _selftest_system, mutation
from repro.workload.spec import GenerationParameters


class TestSimulateSystemWiring:
    def test_verify_off_returns_no_report(self):
        result = simulate_system(_selftest_system(), "polling")
        assert result.report is None

    def test_verify_on_clean_system(self):
        for policy in ("polling", "deferrable"):
            result = simulate_system(_selftest_system(), policy, verify=True)
            assert result.report is not None
            assert result.report.ok, result.report.summary()
            assert result.trace.events_of(TraceEventKind.VIOLATION) == []

    def test_verified_trace_equals_unverified(self):
        """Byte-identity: a clean verified run records exactly the trace
        the unverified golden path records."""
        baseline = simulate_system(_selftest_system(), "polling")
        verified = simulate_system(_selftest_system(), "polling",
                                   verify=True)
        assert diff_traces(baseline.trace, verified.trace) == []
        assert trace_to_dict(baseline.trace) == trace_to_dict(verified.trace)

    def test_mutated_kernel_is_reported(self):
        with mutation("capacity-leak"):
            result = simulate_system(_selftest_system(), "polling",
                                     verify=True)
        assert result.report is not None
        assert "capacity-overdraw" in result.report.kinds()
        assert result.trace.events_of(TraceEventKind.VIOLATION) != []


class TestExecuteSystemWiring:
    def test_verify_on_clean_system(self):
        result = execute_system(_selftest_system(), "polling", verify=True)
        assert result.report is not None
        assert result.report.ok, result.report.summary()

    def test_verify_off_returns_no_report(self):
        assert execute_system(_selftest_system(), "polling").report is None


class TestMulticoreWiring:
    def test_partitioned_and_global_verify_clean(self):
        system = _selftest_system(dense=False)
        for mode in ("part-ff", "global-fp"):
            result = run_multicore_system(
                system, n_cores=2, mode=mode, verify=True
            )
            assert result.report is not None
            assert result.report.ok, (mode, result.report.summary())

    def test_verify_off_returns_no_report(self):
        system = _selftest_system(dense=False)
        result = run_multicore_system(system, n_cores=2, mode="part-ff")
        assert result.report is None


class TestCampaignWiring:
    def params(self):
        return (GenerationParameters(
            task_density=2.0, average_cost=0.5, std_deviation=0.1,
            server_capacity=2.0, server_period=10.0, nb_generation=2,
            seed=41, horizon_periods=6,
        ),)

    def test_verified_campaign_matches_unverified(self):
        baseline = run_campaign(sets=self.params(), arms=("ps_sim",))
        verified = run_campaign(sets=self.params(), arms=("ps_sim",),
                                verify=True)
        key = next(iter(baseline.tables["ps_sim"]))
        assert baseline.tables["ps_sim"][key] \
            == verified.tables["ps_sim"][key]

    def test_violations_fail_the_run_under_verify(self):
        from repro.experiments.campaign import RunPolicy

        policy = RunPolicy(max_retries=0)
        with mutation("capacity-leak"):
            clean = run_campaign(sets=self.params(), arms=("ps_sim",),
                                 run_policy=policy)
            verified = run_campaign(sets=self.params(), arms=("ps_sim",),
                                    run_policy=policy, verify=True)
        # without monitors the buggy kernel sails through; with them
        # every run carrying the leak is marked failed
        assert not clean.failures
        assert verified.failures
        assert any(
            "capacity-overdraw" in record.error
            for record in verified.failures
        )
