"""Self-contained markdown report of the whole reproduction.

Generates an EXPERIMENTS.md-style document from a live campaign run:
per-table paper-vs-measured comparisons with dispersion, the shape-check
outcomes, and the three scenario diagrams.  Used by the runner's
``report`` target and suitable for CI artifacts.
"""

from __future__ import annotations

from ..sim.metrics import SetMetrics
from .campaign import CampaignResult, run_campaign
from .figures import render_all_figures
from .tables import PAPER_TABLES, TABLE_ARMS, shape_checks

__all__ = ["markdown_report", "generate_report"]

_TITLES = {
    2: "Table 2 — Polling Server simulations",
    3: "Table 3 — Polling Server executions",
    4: "Table 4 — Deferrable Server simulations",
    5: "Table 5 — Deferrable Server executions",
}

_COLUMNS = ((1, 0.0), (2, 0.0), (3, 0.0), (1, 2.0), (2, 2.0), (3, 2.0))


def _table_section(number: int,
                   measured: dict[tuple[float, float], SetMetrics]) -> str:
    paper = PAPER_TABLES[number]
    lines = [
        f"## {_TITLES[number]}",
        "",
        "| set | AART paper | AART measured (±95%) | AIR p/m | ASR p/m |",
        "|---|---|---|---|---|",
    ]
    for key in _COLUMNS:
        p = paper[key]
        m = measured[key]
        half = m.aart_confidence_halfwidth()
        lines.append(
            f"| ({int(key[0])},{int(key[1])}) "
            f"| {p[0]:.2f} | {m.aart:.2f} ± {half:.2f} "
            f"| {p[1]:.2f} / {m.air:.2f} "
            f"| {p[2]:.2f} / {m.asr:.2f} |"
        )
    return "\n".join(lines)


def markdown_report(campaign: CampaignResult | None = None) -> str:
    """Build the full report; runs the campaign when none is supplied."""
    if campaign is None:
        campaign = run_campaign()
    sections = [
        "# Reproduction report — Masson & Midonnet (2007)",
        "",
        "Regenerated live from `repro.experiments`; see EXPERIMENTS.md "
        "for the committed reference numbers and the delta discussion.",
    ]
    for number in sorted(_TITLES):
        sections.append("")
        sections.append(_table_section(number, campaign.table(TABLE_ARMS[number])))

    sections.append("")
    sections.append("## Shape checks")
    sections.append("")
    failures = 0
    for check in shape_checks(campaign.tables):
        mark = "x" if check.holds else " "
        if not check.holds:
            failures += 1
        sections.append(f"- [{mark}] {check.description}")
    sections.append("")
    sections.append(
        "All shape checks hold." if failures == 0
        else f"**{failures} shape check(s) FAILED.**"
    )

    sections.append("")
    sections.append("## Figures 2–4 (scenario diagrams)")
    sections.append("")
    sections.append("```")
    sections.append(render_all_figures())
    sections.append("```")
    return "\n".join(sections) + "\n"


def generate_report(path, campaign: CampaignResult | None = None) -> str:
    """Write the report to ``path``; returns the markdown text."""
    text = markdown_report(campaign)
    from pathlib import Path

    Path(path).write_text(text)
    return text
