"""``DeferrableTaskServer`` — the paper's modified Deferrable Server (S4.2).

Unlike the Polling Server, the DS "can serve an aperiodic task at any
time as it has enough capacity", so its ``run()`` is not delegated to a
periodic thread.  Following the paper:

* the service loop is an ``AsyncEventHandler`` bound to an internal
  ``wakeUp`` event;
* each aperiodic arrival fires ``wakeUp`` if the server is not already
  running;
* a periodic timer replenishes the capacity to its full value every
  period and fires ``wakeUp`` if work is pending and the server idle;
* ``chooseNextEvent()`` implements the end-of-period *bridge*: when
  ``now + cost`` crosses the next replenishment, the ``Timed`` budget
  granted is ``remaining capacity + full capacity`` (the event may run
  across the refill), provided the remaining capacity lasts until the
  refill instant.

Capacity is decreased by the measured wall time spent in the handlers'
``run()`` methods, checkpointed at the replenishment boundary so a run
crossing the refill charges each period correctly.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from ..rtsj.async_event import AsyncEvent, AsyncEventHandler
from ..rtsj.instructions import Instruction
from ..rtsj.time_types import RelativeTime
from ..rtsj.vm import NS_PER_UNIT, RTSJVirtualMachine
from ..sim.trace import TraceEventKind
from .events import HandlerRelease
from .parameters import TaskServerParameters
from .queues import PendingQueue
from .server import TaskServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.enforcement import EnforcementConfig
    from ..overload.config import OverloadConfig

__all__ = ["DeferrableTaskServer"]


class DeferrableTaskServer(TaskServer):
    """Deferrable Server policy adapted to RTSJ constraints."""

    def __init__(
        self,
        params: TaskServerParameters,
        name: str = "DS",
        safety_margin: RelativeTime | None = None,
        enforcement: "EnforcementConfig | None" = None,
        overload: "OverloadConfig | None" = None,
    ) -> None:
        super().__init__(params, name, enforcement=enforcement,
                         overload=overload)
        # Section 7's anti-interruption margin (see PollingTaskServer)
        self.safety_margin_ns = (
            safety_margin.total_nanos if safety_margin is not None else 0
        )
        if self.safety_margin_ns < 0:
            raise ValueError("safety_margin must be non-negative")
        self._queue: PendingQueue[HandlerRelease] = PendingQueue(
            **self._queue_bound_kwargs()
        )
        self.capacity_ns = params.capacity_ns
        self.next_refill_ns = params.start.total_nanos + params.period_ns
        self._running = False
        self._checkpoint_ns: int | None = None
        self.wake_up = AsyncEvent(name=f"{name}-wakeUp")
        self._aeh: AsyncEventHandler | None = None

    # -- installation ---------------------------------------------------------------

    def _install(self, vm: RTSJVirtualMachine, horizon_ns: int) -> None:
        self._aeh = AsyncEventHandler(
            logic=lambda aeh: self._service(aeh),
            scheduling=self.params.scheduling,
            name=self.name,
        )
        self._aeh.attach(vm)
        self.wake_up.add_handler(self._aeh)
        self.record_capacity(vm.now_ns, self.capacity_ns)
        vm.schedule_timer_event(self.next_refill_ns, self._refill_tick)

    # -- capacity accounting -----------------------------------------------------------

    def _charge_to(self, now_ns: int) -> None:
        """Deduct wall time since the last checkpoint from the capacity."""
        if self._checkpoint_ns is not None:
            elapsed = now_ns - self._checkpoint_ns
            self.capacity_ns = max(0, self.capacity_ns - elapsed)
            self._checkpoint_ns = now_ns
            self.record_capacity(now_ns, self.capacity_ns)

    def _refill_tick(self, now_ns: int) -> None:
        vm = self._require_vm()
        self._charge_to(now_ns)
        # scaled_capacity_ns == params.capacity_ns at scale 1.0, so
        # degraded-mode scaling is invisible on the golden path
        self.capacity_ns = self.scaled_capacity_ns
        self.record_capacity(now_ns, self.capacity_ns)
        vm.trace.add_event(
            now_ns / NS_PER_UNIT, TraceEventKind.REPLENISH, self.name,
            f"capacity={self.capacity_ns / NS_PER_UNIT:g}",
        )
        self.next_refill_ns += self.params.period_ns
        vm.schedule_timer_event(self.next_refill_ns, self._refill_tick)
        if not self._running and not self._queue.empty:
            self.wake_up.fire()

    def _on_serve_start(self, now_ns: int, release) -> None:
        self._charge_to(now_ns)  # no-op; opens the window below
        self._checkpoint_ns = now_ns

    def _on_serve_end(self, now_ns: int) -> None:
        self._charge_to(now_ns)
        self._checkpoint_ns = None

    # -- queueing and wake-up -------------------------------------------------------------

    def _enqueue(self, release: HandlerRelease) -> None:
        shed = self._queue.add(release)
        for victim in shed:
            self._shed_release(
                victim, f"queue bound ({self._queue._bound.policy})"
            )
        if release in shed:
            return
        if not self._running:
            # "each time an aperiodic event occurs, if the server is not
            # already running, this event [wakeUp] is fired"
            self.wake_up.fire()

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    # -- chooseNextEvent ---------------------------------------------------------------------

    def _choose(self, now_ns: int) -> tuple[HandlerRelease, int] | None:
        """First serveable release and its ``Timed`` budget, or ``None``.

        A release is serveable when its declared cost fits the remaining
        capacity, or when the run would cross the next refill and the
        remaining capacity bridges the gap — in which case the budget is
        ``remaining + full capacity`` (the paper's end-of-period rule).
        """
        full = self.scaled_capacity_ns
        remaining = self.capacity_ns
        margin = self.safety_margin_ns
        time_to_refill = self.next_refill_ns - now_ns
        for release in self._queue:
            cost = release.cost_ns + margin
            if now_ns + cost > self.next_refill_ns:
                if time_to_refill <= remaining and cost <= remaining + full:
                    self._queue.remove(release)
                    return release, remaining + full
                continue
            if cost <= remaining:
                self._queue.remove(release)
                return release, remaining
        return None

    # -- the service loop -----------------------------------------------------------------------

    def _service(self, aeh: AsyncEventHandler
                 ) -> Generator[Instruction, Any, None]:
        """One invocation per consumed ``wakeUp`` firing."""
        if self._running:
            return  # a banked firing arrived while we were already serving
        self._running = True
        vm = self._require_vm()
        try:
            while True:
                pick = self._choose(vm.now_ns)
                if pick is None:
                    break
                release, budget = pick
                yield from self._serve_release(
                    aeh.thread, release, budget_ns=budget
                )
        finally:
            self._running = False

    # -- analysis -------------------------------------------------------------------------------

    def interference_ns(self, window_ns: int) -> int:
        """The classic deferrable-server *double hit*: back-to-back
        capacity at the end of one period and the start of the next
        (Strosnider, Lehoczky & Sha 1995)."""
        if window_ns <= 0:
            return 0
        capacity = self.params.capacity_ns
        period = self.params.period_ns
        extra = -(-max(window_ns - capacity, 0) // period)  # ceil
        return capacity * (1 + extra)
