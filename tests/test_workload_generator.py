"""Unit tests for the random system generator (paper Section 6.1)."""

from __future__ import annotations

import pytest

from repro.workload import (
    GenerationParameters,
    PAPER_SETS,
    RandomSystemGenerator,
    generate_campaign_sets,
)
from repro.workload.spec import AperiodicEventSpec, GeneratedSystem, ServerSpec


def params(**overrides) -> GenerationParameters:
    base = dict(
        task_density=1.0, average_cost=3.0, std_deviation=0.0,
        server_capacity=4.0, server_period=6.0, nb_generation=10, seed=1983,
    )
    base.update(overrides)
    return GenerationParameters(**base)


class TestGenerationParameters:
    def test_paper_tuple_notation(self):
        p = GenerationParameters.from_tuple((1, 3, 0, 4, 6, 10, 1983))
        assert p.task_density == 1
        assert p.average_cost == 3
        assert p.std_deviation == 0
        assert p.server_capacity == 4
        assert p.server_period == 6
        assert p.nb_generation == 10
        assert p.seed == 1983

    def test_tuple_length_checked(self):
        with pytest.raises(ValueError):
            GenerationParameters.from_tuple((1, 2, 3))

    def test_horizon_is_ten_periods(self):
        assert params().horizon == 60.0

    def test_server_spec(self):
        server = params().server(priority=7)
        assert server == ServerSpec(capacity=4.0, period=6.0, priority=7)

    @pytest.mark.parametrize("field,value", [
        ("task_density", 0), ("average_cost", -1), ("std_deviation", -0.1),
        ("nb_generation", 0), ("horizon_periods", 0), ("min_cost", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            params(**{field: value})

    def test_paper_sets_cover_the_six_columns(self):
        keys = {(p.task_density, p.std_deviation) for p in PAPER_SETS}
        assert keys == {(1, 0.0), (2, 0.0), (3, 0.0),
                        (1, 2.0), (2, 2.0), (3, 2.0)}
        assert all(p.seed == 1983 for p in PAPER_SETS)
        assert all(p.nb_generation == 10 for p in PAPER_SETS)


class TestGenerator:
    def test_reproducible_across_instances(self):
        a = RandomSystemGenerator(params()).generate()
        b = RandomSystemGenerator(params()).generate()
        assert len(a) == len(b) == 10
        for sa, sb in zip(a, b):
            assert [e.release for e in sa.events] == [
                e.release for e in sb.events
            ]
            assert [e.declared_cost for e in sa.events] == [
                e.declared_cost for e in sb.events
            ]

    def test_different_seeds_differ(self):
        a = RandomSystemGenerator(params()).generate()
        b = RandomSystemGenerator(params(seed=2024)).generate()
        assert [e.release for e in a[0].events] != [
            e.release for e in b[0].events
        ]

    def test_homogeneous_costs_are_exact(self):
        for system in RandomSystemGenerator(params()).generate():
            assert all(e.declared_cost == 3.0 for e in system.events)

    def test_min_cost_truncation(self):
        # sigma huge relative to mean: many raw draws below 0.1
        systems = RandomSystemGenerator(
            params(average_cost=0.2, std_deviation=2.0)
        ).generate()
        costs = [e.declared_cost for s in systems for e in s.events]
        assert min(costs) == pytest.approx(0.1)
        assert any(c == 0.1 for c in costs)  # truncation actually fired

    def test_density_scales_event_count(self):
        def mean_count(density):
            systems = RandomSystemGenerator(
                params(task_density=density, nb_generation=50)
            ).generate()
            return sum(s.event_count for s in systems) / len(systems)

        # density d => about d events per period over 10 periods
        assert 8 <= mean_count(1) <= 12
        assert 17 <= mean_count(2) <= 23
        assert 26 <= mean_count(3) <= 34

    def test_events_sorted_and_inside_horizon(self):
        for system in RandomSystemGenerator(params(task_density=3)).generate():
            releases = [e.release for e in system.events]
            assert releases == sorted(releases)
            assert all(0 <= r < system.horizon for r in releases)

    def test_events_have_sequential_ids(self):
        system = RandomSystemGenerator(params(task_density=2)).generate()[0]
        assert [e.event_id for e in system.events] == list(
            range(system.event_count)
        )

    def test_campaign_sets_keyed_by_density_std(self):
        sets = generate_campaign_sets()
        assert set(sets) == {(1, 0.0), (2, 0.0), (3, 0.0),
                             (1, 2.0), (2, 2.0), (3, 2.0)}
        assert all(len(v) == 10 for v in sets.values())

    def test_sets_with_shared_seed_have_distinct_streams(self):
        sets = generate_campaign_sets()
        r1 = [e.release for e in sets[(1, 0.0)][0].events]
        r2 = [e.release for e in sets[(2, 0.0)][0].events]
        assert r1 != r2[: len(r1)]

    def test_generate_slice_matches_generate(self):
        full = RandomSystemGenerator(params()).generate()
        generator = RandomSystemGenerator(params())
        for start, count in ((0, 10), (0, 3), (3, 4), (7, 3), (9, 1),
                             (10, 0)):
            window = generator.generate_slice(start, count)
            assert len(window) == count
            for offset, system in enumerate(window):
                reference = full[start + offset]
                assert system.system_id == reference.system_id
                assert [e.release for e in system.events] == [
                    e.release for e in reference.events
                ]
                assert [e.declared_cost for e in system.events] == [
                    e.declared_cost for e in reference.events
                ]

    def test_generate_slice_bounds_checked(self):
        generator = RandomSystemGenerator(params())
        with pytest.raises(ValueError):
            generator.generate_slice(-1, 2)
        with pytest.raises(ValueError):
            generator.generate_slice(8, 3)
        with pytest.raises(ValueError):
            generator.generate_slice(0, -1)


class TestSpecs:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            AperiodicEventSpec(0, release=-1.0, declared_cost=1.0)
        with pytest.raises(ValueError):
            AperiodicEventSpec(0, release=0.0, declared_cost=0.0)
        with pytest.raises(ValueError):
            AperiodicEventSpec(0, release=0.0, declared_cost=1.0,
                               actual_cost=0.0)

    def test_event_cost_falls_back_to_declared(self):
        e = AperiodicEventSpec(0, release=1.0, declared_cost=2.0)
        assert e.cost == 2.0
        e2 = AperiodicEventSpec(0, release=1.0, declared_cost=1.0,
                                actual_cost=2.0)
        assert e2.cost == 2.0

    def test_generated_system_requires_sorted_events(self):
        server = ServerSpec(4, 6, 0)
        events = (
            AperiodicEventSpec(0, release=5.0, declared_cost=1.0),
            AperiodicEventSpec(1, release=2.0, declared_cost=1.0),
        )
        with pytest.raises(ValueError):
            GeneratedSystem(0, server, events, horizon=60.0)

    def test_total_demand(self):
        server = ServerSpec(4, 6, 0)
        events = (
            AperiodicEventSpec(0, release=1.0, declared_cost=2.0),
            AperiodicEventSpec(1, release=2.0, declared_cost=3.0),
        )
        system = GeneratedSystem(0, server, events, horizon=60.0)
        assert system.total_demand == 5.0

    def test_server_spec_validation(self):
        with pytest.raises(ValueError):
            ServerSpec(capacity=7.0, period=6.0, priority=0)
        with pytest.raises(ValueError):
            ServerSpec(capacity=0.0, period=6.0, priority=0)
