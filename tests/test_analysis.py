"""Unit tests for the feasibility-analysis package."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DeferrableServerInterference,
    PeriodicInterference,
    SporadicInterference,
    analyse_with_server,
    deferrable_server_bound,
    hyperperiod,
    liu_layland_bound,
    response_time_analysis,
    response_time_with_interference,
    rm_schedulable_by_utilization,
    total_utilization,
)
from repro.workload.spec import PeriodicTaskSpec, ServerSpec


def T(name, cost, period, priority, deadline=None):
    return PeriodicTaskSpec(name, cost=cost, period=period,
                            priority=priority, deadline=deadline)


class TestRTA:
    def test_textbook_example(self):
        # Burns & Wellings-style set: R1=3, R2=3+6... classic iteration
        tasks = [T("a", 3, 7, 3), T("b", 3, 12, 2), T("c", 5, 20, 1)]
        result = response_time_analysis(tasks)
        assert result.response_of("a").response_time == 3
        assert result.response_of("b").response_time == 6
        # c: 5 + ceil(R/7)*3 + ceil(R/12)*3 -> fixed point 20
        assert result.response_of("c").response_time == 20
        assert result.schedulable

    def test_unschedulable_detected(self):
        tasks = [T("a", 4, 6, 2), T("b", 4, 8, 1)]
        result = response_time_analysis(tasks)
        assert result.response_of("a").schedulable
        assert not result.response_of("b").schedulable
        assert result.response_of("b").response_time is None
        assert not result.schedulable

    def test_blocking_term(self):
        tasks = [T("a", 2, 10, 2), T("b", 3, 20, 1)]
        plain = response_time_analysis(tasks)
        blocked = response_time_analysis(tasks, blocking={"a": 1.0})
        assert blocked.response_of("a").response_time == pytest.approx(
            plain.response_of("a").response_time + 1.0
        )

    def test_blocking_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            response_time_analysis([T("a", 1, 10, 1)], blocking={"zz": 1.0})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            response_time_analysis([T("a", 1, 10, 1), T("a", 1, 20, 2)])

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            response_time_analysis([])

    def test_deadline_shorter_than_period(self):
        tasks = [T("a", 3, 10, 2), T("b", 4, 20, 1, deadline=6.0)]
        result = response_time_analysis(tasks)
        # R_b = 7 > D_b = 6
        assert not result.response_of("b").schedulable


class TestInterferenceSources:
    def test_periodic_staircase(self):
        p = PeriodicInterference(cost=2, period=5, priority=1)
        assert p.interference(0) == 0
        assert p.interference(5) == 2
        assert p.interference(5.001) == 4
        assert p.interference(10) == 4

    def test_deferrable_double_hit(self):
        d = DeferrableServerInterference(capacity=2, period=5, priority=1)
        assert d.interference(1) == 2        # the held budget hits at once
        assert d.interference(2) == 2
        assert d.interference(2.5) == 4      # plus the fresh budget
        assert d.interference(7) == 4
        assert d.interference(7.5) == 6

    def test_ds_dominates_periodic(self):
        p = PeriodicInterference(cost=2, period=5, priority=1)
        d = DeferrableServerInterference(capacity=2, period=5, priority=1)
        for w in (0.5, 1, 3, 5, 7, 11, 20):
            assert d.interference(w) >= p.interference(w)

    def test_sporadic(self):
        s = SporadicInterference(cost=1, min_interarrival=4, priority=1)
        assert s.interference(4) == 1
        assert s.interference(4.5) == 2
        with pytest.raises(ValueError):
            SporadicInterference(cost=5, min_interarrival=4, priority=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicInterference(cost=6, period=5, priority=1)
        with pytest.raises(ValueError):
            DeferrableServerInterference(capacity=0, period=5, priority=1)

    def test_generic_rta_ignores_lower_priority_sources(self):
        sources = [
            PeriodicInterference(cost=2, period=5, priority=9),
            PeriodicInterference(cost=100, period=200, priority=1),
        ]
        rt = response_time_with_interference(
            cost=1, deadline=10, priority=5, sources=sources
        )
        assert rt == 3

    def test_generic_rta_deadline_miss_returns_none(self):
        sources = [PeriodicInterference(cost=4, period=5, priority=9)]
        assert response_time_with_interference(
            cost=2, deadline=5, priority=1, sources=sources
        ) is None


class TestServerAwareAnalysis:
    TASKS = [T("t1", 2, 6, 20), T("t2", 1, 6, 15)]
    SERVER = ServerSpec(capacity=3.0, period=6.0, priority=30)

    def test_table1_set_with_polling_server(self):
        # the paper's Table 1 configuration is exactly schedulable:
        # R(t1) = 3 + 2 = 5, R(t2) = 3 + 2 + 1 = 6 = deadline
        result = analyse_with_server(self.TASKS, self.SERVER, "polling")
        assert result.response_of("t1").response_time == pytest.approx(5.0)
        assert result.response_of("t2").response_time == pytest.approx(6.0)
        assert result.schedulable

    def test_table1_set_with_deferrable_server(self):
        # the DS double hit makes the same set infeasible: t2 can see
        # 3 + 3 + 2 + 1 = 9 > 6 (this is why the DS "analysis must be
        # modified" — the PS verdict does not transfer)
        result = analyse_with_server(self.TASKS, self.SERVER, "deferrable")
        assert not result.response_of("t2").schedulable
        assert not result.schedulable

    def test_smaller_ds_fits(self):
        server = ServerSpec(capacity=1.5, period=6.0, priority=30)
        result = analyse_with_server(self.TASKS, server, "deferrable")
        assert result.schedulable

    def test_identical_tasks_counted_once_each(self):
        twins = [T("x", 1, 10, 5), T("y", 1, 10, 5)]
        result = analyse_with_server(
            twins, ServerSpec(1.0, 10.0, priority=9), "polling"
        )
        # each twin sees: server 1 + sibling 1 + own 1 = 3
        assert result.response_of("x").response_time == pytest.approx(3.0)
        assert result.response_of("y").response_time == pytest.approx(3.0)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            analyse_with_server(self.TASKS, self.SERVER, "sporadic")


class TestUtilizationBounds:
    def test_liu_layland_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-4)
        assert liu_layland_bound(100) == pytest.approx(0.6964, abs=1e-3)

    def test_ds_bound_degenerates_to_liu_layland(self):
        assert deferrable_server_bound(0.0, 3) == pytest.approx(
            liu_layland_bound(3)
        )

    def test_ds_bound_decreases_with_server_share(self):
        assert deferrable_server_bound(0.5, 3) < deferrable_server_bound(0.1, 3)

    def test_rm_utilization_tests(self):
        tasks = [T("a", 1, 10, 2), T("b", 1, 10, 1)]
        server = ServerSpec(2.0, 10.0, priority=9)
        assert rm_schedulable_by_utilization(tasks)
        assert rm_schedulable_by_utilization(tasks, server, "polling")
        assert rm_schedulable_by_utilization(tasks, server, "deferrable")
        heavy = [T("a", 4, 10, 2), T("b", 4, 10, 1)]
        assert not rm_schedulable_by_utilization(heavy, server, "deferrable")

    def test_total_utilization(self):
        assert total_utilization(
            [T("a", 2, 10, 1), T("b", 5, 20, 2)]
        ) == pytest.approx(0.45)

    def test_hyperperiod(self):
        tasks = [T("a", 1, 4, 1), T("b", 1, 6, 2), T("c", 1, 10, 3)]
        assert hyperperiod(tasks) == pytest.approx(60.0)

    def test_hyperperiod_fractional_periods(self):
        tasks = [T("a", 0.1, 0.5, 1), T("b", 0.1, 0.75, 2)]
        assert hyperperiod(tasks) == pytest.approx(1.5)

    def test_hyperperiod_is_exact_on_dyadic_grids(self):
        """Fraction-based LCM: dyadic periods give a bit-exact result,
        not a float-accumulated approximation."""
        tasks = [T("a", 0.1, 0.25, 1), T("b", 0.1, 4.0, 2),
                 T("c", 0.1, 16.0, 3)]
        assert hyperperiod(tasks) == 16.0

    def test_hyperperiod_single_task(self):
        assert hyperperiod([T("a", 1, 7.5, 1)]) == 7.5

    def test_hyperperiod_coprime_periods(self):
        tasks = [T("a", 1, 7, 1), T("b", 1, 11, 2), T("c", 1, 13, 3)]
        assert hyperperiod(tasks) == 1001.0

    def test_hyperperiod_repeated_periods(self):
        tasks = [T("a", 1, 6, 1), T("b", 2, 6, 2), T("c", 1, 6, 3)]
        assert hyperperiod(tasks) == 6.0

    def test_hyperperiod_rejects_bad_periods(self):
        with pytest.raises(ValueError):
            hyperperiod([T("a", 1, 0.0, 1)])
        with pytest.raises(ValueError):
            hyperperiod([T("a", 1, float("inf"), 1)])

    def test_validation(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)
        with pytest.raises(ValueError):
            deferrable_server_bound(1.5, 2)
        with pytest.raises(ValueError):
            hyperperiod([])


class TestJitterRTA:
    def test_interferer_jitter_tightens_arrivals(self):
        tasks = [T("hi", 2, 10, 2), T("lo", 5, 20, 1)]
        plain = response_time_analysis(tasks)
        # R_lo = 5 + 2 = 7 without jitter; hi's 4-unit jitter squeezes a
        # second hi arrival into the window: 5 + 2*2 = 9
        jittered = response_time_analysis(tasks, jitter={"hi": 4.0})
        assert plain.response_of("lo").response_time == pytest.approx(7.0)
        assert jittered.response_of("lo").response_time == pytest.approx(9.0)

    def test_own_jitter_adds_to_response(self):
        tasks = [T("a", 2, 10, 1)]
        result = response_time_analysis(tasks, jitter={"a": 3.0})
        assert result.response_of("a").response_time == pytest.approx(5.0)

    def test_jitter_can_break_schedulability(self):
        tasks = [T("hi", 2, 10, 2), T("lo", 5, 20, 1, deadline=8.0)]
        assert response_time_analysis(tasks).schedulable
        assert not response_time_analysis(tasks, jitter={"hi": 4.0}).schedulable

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            response_time_analysis([T("a", 1, 10, 1)], jitter={"zz": 1.0})
        with pytest.raises(ValueError):
            response_time_analysis([T("a", 1, 10, 1)], jitter={"a": -1.0})
