"""Ablation: the server shields aperiodic metrics from periodic load.

The paper's generated systems contain no periodic tasks, which is sound
only because the server runs at the highest priority — lower-priority
periodic load cannot delay it.  This bench makes that soundness argument
executable: the same aperiodic workloads run with and without a
UUniFast-generated periodic task set underneath, and the aperiodic
metrics are identical in the ideal simulation and in the execution arm
(periodic releases on the VM are scheduler events, not ISR-charged
timers, so they cannot even steal budget indirectly).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.campaign import execute_system, simulate_system
from repro.sim.metrics import aggregate
from repro.workload import (
    GenerationParameters,
    RandomSystemGenerator,
    generate_periodic_taskset,
)

PARAMS = GenerationParameters(
    task_density=2.0, average_cost=3.0, std_deviation=0.0,
    server_capacity=4.0, server_period=6.0, nb_generation=10, seed=1983,
)


def run_both():
    # periodic load: 5 tasks, U = 0.3, priorities 1..5 (all below the
    # server, whose symbolic priority in the sim arm is ServerSpec's)
    tasks = tuple(
        generate_periodic_taskset(seed=42, n=5, total_utilization=0.3,
                                  period_range=(8.0, 40.0))
    )
    out = {}
    for label, with_load in (("bare", False), ("loaded", True)):
        sim_runs, exec_runs = [], []
        for system in RandomSystemGenerator(PARAMS).generate():
            if with_load:
                system = replace(system, periodic_tasks=tasks)
            sim_runs.append(simulate_system(system, "polling").metrics)
            exec_runs.append(execute_system(system, "polling").metrics)
        out[label] = (aggregate(sim_runs), aggregate(exec_runs))
    return out


def bench_ablation_periodic_load(benchmark):
    out = benchmark(run_both)
    print()
    for label, (sim_m, exec_m) in out.items():
        print(
            f"{label:>8}: sim AART {sim_m.aart:6.2f} ASR {sim_m.asr:.2f} | "
            f"exec AART {exec_m.aart:6.2f} ASR {exec_m.asr:.2f}"
        )
    bare_sim, bare_exec = out["bare"]
    loaded_sim, loaded_exec = out["loaded"]
    # the highest-priority server makes aperiodic service independent of
    # the periodic load below it — exactly, in both arms
    assert loaded_sim.aart == bare_sim.aart
    assert loaded_sim.asr == bare_sim.asr
    assert loaded_exec.aart == bare_exec.aart
    assert loaded_exec.asr == bare_exec.asr
