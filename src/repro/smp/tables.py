"""Text tables for the multicore campaign (per-core + aggregate).

Mirrors the paper's Tables 2-5 presentation (AART / AIR / ASR rows) with
the SMP-only columns: one column per core, an aggregate column, the
per-core utilizations and the migration count.
"""

from __future__ import annotations

from ..sim.metrics import RunMetrics
from .metrics import MulticoreRunMetrics

__all__ = ["format_multicore_table", "format_multicore_campaign"]


def _avg(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _aggregate_rows(runs: list[MulticoreRunMetrics]) -> dict[str, float]:
    return {
        "AART": _avg([r.aggregate.average_response_time for r in runs]),
        "AIR": _avg([r.aggregate.interrupted_ratio for r in runs]),
        "ASR": _avg([r.aggregate.served_ratio for r in runs]),
    }


def format_multicore_table(mode: str,
                           runs: list[MulticoreRunMetrics]) -> str:
    """One arm's table: aggregate row set plus a per-core breakdown."""
    if not runs:
        return f"{mode}: no completed runs"
    n_cores = runs[0].n_cores
    lines = [f"=== {mode} ({len(runs)} run(s), {n_cores} cores) ==="]
    rows = _aggregate_rows(runs)
    lines.append(
        "aggregate   "
        + "  ".join(f"{k}={v:7.3f}" for k, v in rows.items())
        + f"  migrations={_avg([float(r.migrations) for r in runs]):.1f}"
    )
    for core in range(n_cores):
        per: list[RunMetrics] = [r.per_core[core].metrics for r in runs]
        util = _avg([r.per_core[core].utilization for r in runs])
        lines.append(
            f"core {core}      "
            + "  ".join(
                f"{k}={v:7.3f}"
                for k, v in {
                    "AART": _avg([m.average_response_time for m in per]),
                    "AIR": _avg([m.interrupted_ratio for m in per]),
                    "ASR": _avg([m.served_ratio for m in per]),
                }.items()
            )
            + f"  util={util:5.3f}"
        )
    return "\n".join(lines)


def format_multicore_campaign(
    tables: dict[str, list[MulticoreRunMetrics]]
) -> str:
    """All arms, one block per mode, in the given order."""
    return "\n\n".join(
        format_multicore_table(mode, runs) for mode, runs in tables.items()
    )
