"""``TaskServer`` — the framework's abstract server (paper Section 3).

A task server "implements ``Schedulable`` and extends ``Scheduler``": it
is itself a schedulable object (a periodic budget at a priority, which
``addToFeasibility`` can include in the analysis) *and* a scheduler of
the :class:`~repro.core.events.ServableAsyncEventHandler` releases routed
to it by ``ServableAsyncEvent.fire()``.

Concrete policies (:class:`~repro.core.polling.PollingTaskServer`,
:class:`~repro.core.deferrable.DeferrableTaskServer`) decide how releases
are chosen and what ``Timed`` budget each one gets; the shared
:meth:`_serve_release` helper here performs the actual guarded execution
and bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator, TYPE_CHECKING

from ..rtsj.instructions import Compute, Instruction
from ..rtsj.interruptible import (
    AsynchronouslyInterruptedException,
    Interruptible,
    Timed,
)
from ..rtsj.thread import RealtimeThread, Schedulable
from ..rtsj.time_types import RelativeTime
from ..rtsj.vm import NS_PER_UNIT, RTSJVirtualMachine
from ..sim.metrics import RunMetrics, measure_run
from ..sim.task import AperiodicJob, JobState
from ..sim.trace import TraceEventKind
from .events import HandlerRelease, ServableAsyncEventHandler
from .parameters import TaskServerParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.enforcement import EnforcementConfig
    from ..overload.config import OverloadConfig
    from ..overload.detector import OverloadDetector

__all__ = ["TaskServer"]


class _ReleaseInterruptible(Interruptible):
    """Adapts one handler release to the ``Timed`` protocol."""

    def __init__(self, release: HandlerRelease, inflation_ns: int) -> None:
        self.release = release
        self.inflation_ns = inflation_ns
        self.interrupted = False

    def run(self, timed: Timed) -> Generator[Instruction, Any, None]:
        yield from self.release.handler.make_work(self.inflation_ns)

    def interrupt_action(self, exc: AsynchronouslyInterruptedException) -> None:
        self.interrupted = True


class TaskServer(Schedulable, ABC):
    """Abstract aperiodic task server over the emulated RTSJ runtime."""

    def __init__(self, params: TaskServerParameters, name: str,
                 enforcement: "EnforcementConfig | None" = None,
                 overload: "OverloadConfig | None" = None) -> None:
        super().__init__(scheduling=params.scheduling, release=params)
        self.params = params
        self.name = name
        #: cost-overrun enforcement against *declared* handler costs —
        #: the RTSJ cost-enforcement semantics the paper's testbed VM
        #: lacked, mirrored here (see repro.faults.enforcement).  None
        #: keeps the paper-faithful behaviour: the only budget is the
        #: server capacity via Timed.
        self.enforcement = enforcement
        #: count of upcoming releases to shed (skip-next-release policy);
        #: server-level, like the ideal arm: the overload response sheds
        #: the next arrival routed to this server, whichever handler
        self._shed_pending = 0
        self.vm: RTSJVirtualMachine | None = None
        self.horizon_ns: int | None = None
        self.handlers: list[ServableAsyncEventHandler] = []
        #: handlers declared costlier than the capacity (never serveable
        #: by a PS; serveable by a DS only through the refill bridge)
        self.oversized_handlers: list[ServableAsyncEventHandler] = []
        #: every release routed to this server, in arrival order
        self.releases: list[HandlerRelease] = []
        #: (time tu, capacity tu) breakpoints of the budget account —
        #: the capacity curve the paper's figures chart
        self.capacity_history: list[tuple[float, float]] = []
        #: overload management (bounded pending queue + degraded modes);
        #: None keeps golden-path behaviour byte-identical
        self.overload = overload
        #: replenished-capacity multiplier, set by degraded-mode actions
        #: (see repro.overload.detector.ServiceScaleAction); 1.0 = full
        self.service_scale = 1.0
        #: optional :class:`repro.overload.OverloadDetector` observing
        #: this server's arrivals and sheds
        self.overload_detector: "OverloadDetector | None" = None
        #: releases shed by the queue bound / degraded mode, in order
        self.shed_releases: list[HandlerRelease] = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, vm: RTSJVirtualMachine, horizon_ns: int) -> None:
        """Bind to a VM and install the policy's threads and timers."""
        if self.vm is not None:
            raise RuntimeError(f"server {self.name!r} already attached")
        if horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be > 0, got {horizon_ns}")
        self.vm = vm
        self.horizon_ns = horizon_ns
        self._install(vm, horizon_ns)

    @abstractmethod
    def _install(self, vm: RTSJVirtualMachine, horizon_ns: int) -> None:
        """Create the policy's backing thread(s) and timers."""

    def register_handler(self, handler: ServableAsyncEventHandler) -> None:
        """Associate a handler with this server (called by the SAEH
        constructor; a handler has exactly one server).

        The paper requires designers to split event treatments into
        handlers no costlier than the server capacity; an oversized
        handler is *accepted* here but — like in the Java implementation
        — ``chooseNextEvent`` will simply never pick it (a Polling Server
        can never fit it; a Deferrable Server may still serve it through
        the end-of-period bridge if it fits twice the capacity).  The
        ``oversized_handlers`` list records them for diagnosis.
        """
        if handler not in self.handlers:
            self.handlers.append(handler)
            if handler.cost_ns > self.params.capacity_ns:
                self.oversized_handlers.append(handler)

    # -- overload plumbing --------------------------------------------------------

    def _queue_bound_kwargs(self) -> dict:
        """The configured queue bound as pending-queue constructor kwargs
        (tu costs converted to the core layer's nanoseconds)."""
        bound = self.overload.queue_bound if self.overload else None
        if bound is None or not bound.active:
            return {}
        return {
            "max_items": bound.max_items,
            "max_cost_ns": (
                round(bound.max_cost * NS_PER_UNIT)
                if bound.max_cost is not None else None
            ),
            "policy": bound.policy,
        }

    @property
    def scaled_capacity_ns(self) -> int:
        """The replenished capacity under the current service scale.

        Never scaled below the costliest admissible handler: this
        runtime's handlers are not resumable, so a capacity under every
        declared cost would starve the server outright instead of
        degrading it — degraded mode must stay live.
        """
        if self.service_scale == 1.0:
            return self.params.capacity_ns
        scaled = max(1, round(self.params.capacity_ns * self.service_scale))
        floor = max(
            (
                h.cost_ns for h in self.handlers
                if h.cost_ns <= self.params.capacity_ns
            ),
            default=0,
        )
        if floor:
            # the Timed budget must strictly exceed the handler's
            # consumed time (inflation included) — an exact tie resolves
            # as an interrupt, not a completion
            inflation = self.vm.overhead.handler_inflation_ns if self.vm else 0
            floor += inflation + 1
        return min(self.params.capacity_ns, max(scaled, floor))

    def _shed_release(self, release: HandlerRelease, detail: str) -> None:
        """Record one shed as a first-class decision: SHED trace event,
        aborted job, detector + source-breaker feedback."""
        vm = self._require_vm()
        now = vm.now_ns / NS_PER_UNIT
        release.job.state = JobState.ABORTED
        if release.job.finish_time is None:
            release.job.finish_time = now
        vm.trace.add_event(
            now, TraceEventKind.SHED, release.job.name, detail
        )
        self.shed_releases.append(release)
        if self.overload_detector is not None:
            self.overload_detector.note_shed(now)
        source = release.source
        if source is not None and source.breaker is not None:
            source.breaker.record_failure(now)

    # -- the framework entry point ------------------------------------------------

    def servable_event_released(
        self,
        handler: ServableAsyncEventHandler,
        source=None,
    ) -> None:
        """Called by ``ServableAsyncEvent.fire()`` for each bound SAEH."""
        if handler not in self.handlers:
            raise ValueError(
                f"handler {handler.name!r} is not associated with server "
                f"{self.name!r}"
            )
        vm = self._require_vm()
        vm.add_isr_time(vm.overhead.release_ns)
        release = HandlerRelease(handler, vm.now_ns)
        release.source = source
        self.releases.append(release)
        if self._shed_pending > 0:
            # skip-next-release recovery: shed this arrival outright
            self._shed_pending -= 1
            release.job.state = JobState.ABORTED
            release.job.finish_time = vm.now_ns / NS_PER_UNIT
            vm.trace.add_event(
                vm.now_ns / NS_PER_UNIT, TraceEventKind.FAULT,
                release.job.name, "release shed (skip-next-release)",
            )
            return
        detector = self.overload_detector
        if detector is not None:
            detector.note_arrival(
                vm.now_ns / NS_PER_UNIT, release.cost_ns / NS_PER_UNIT
            )
            if detector.degraded and handler.optional:
                self._shed_release(release, "optional handler (degraded mode)")
                return
        vm.trace.add_event(
            vm.now_ns / NS_PER_UNIT, TraceEventKind.RELEASE, release.job.name
        )
        self._enqueue(release)

    @abstractmethod
    def _enqueue(self, release: HandlerRelease) -> None:
        """Policy hook: queue the release (and wake the server if needed).
        Implementations shed over-bound or unserveable releases through
        :meth:`_shed_release`."""

    # -- feasibility ------------------------------------------------------------------

    def add_to_feasibility(self) -> None:
        """RTSJ-style registration with the base scheduler's analysis set."""
        self._require_vm().scheduler.add_to_feasibility(self)

    def interference_ns(self, window_ns: int) -> int:
        """Worst-case interference this server inflicts on lower-priority
        work over a window — the ``getInterference()`` method the paper
        argues every schedulable should expose (Section 3)."""
        raise NotImplementedError

    # -- serving machinery ----------------------------------------------------------------

    def _serve_release(
        self,
        thread: RealtimeThread,
        release: HandlerRelease,
        budget_ns: int,
    ) -> Generator[Instruction, Any, tuple[bool, int]]:
        """Run one release under a ``Timed`` budget; returns (ok, elapsed).

        ``elapsed`` is the wall-clock time spent inside the interruptible
        section — the quantity the paper's implementation measures to
        decrease the server capacity.  The dispatch overhead is charged
        to the server thread *outside* the section, exactly as
        ``chooseNextEvent`` and the ``Timed`` setup execute outside
        ``run()`` in the Java implementation.
        """
        vm = self._require_vm()
        if vm.overhead.dispatch_ns:
            yield Compute(vm.overhead.dispatch_ns)
        job = release.job
        start_ns = vm.now_ns
        if job.start_time is None:
            job.start_time = start_ns / NS_PER_UNIT
            vm.trace.add_event(
                start_ns / NS_PER_UNIT, TraceEventKind.START, job.name
            )
        self._on_serve_start(start_ns, release)
        thread.activity_label = job.name
        interruptible = _ReleaseInterruptible(
            release, vm.overhead.handler_inflation_ns
        )
        # enforcement narrows the Timed budget to the *declared* cost
        # (inflation included, so a well-behaved handler is never cut by
        # runtime overhead alone); the capacity budget still caps it
        config = self.enforcement
        enforce_ns: int | None = None
        effective_ns = budget_ns
        if config is not None and config.cuts_execution:
            enforce_ns = (
                round(config.budget_for(release.handler.cost_ns))
                + vm.overhead.handler_inflation_ns
            )
            effective_ns = min(budget_ns, enforce_ns)
        timed = Timed(RelativeTime.from_nanos(effective_ns), now_ns=start_ns)
        try:
            ok = yield from timed.do_interruptible(interruptible)
        finally:
            thread.activity_label = None
        end_ns = vm.now_ns
        self._on_serve_end(end_ns)
        elapsed = end_ns - start_ns
        enforcement_cut = (
            not ok and enforce_ns is not None and enforce_ns < budget_ns
        )
        # log-and-continue: an overrun is visible whether the handler ran
        # to completion or was cut by the capacity budget — either way it
        # consumed more than it declared
        if (
            config is not None
            and not config.cuts_execution
            and elapsed > config.budget_for(release.handler.cost_ns)
                + vm.overhead.handler_inflation_ns
        ):
            self._record_overrun(end_ns, job.name, config.policy)
        if ok:
            job.state = JobState.COMPLETED
            job.finish_time = end_ns / NS_PER_UNIT
            vm.trace.add_event(
                end_ns / NS_PER_UNIT, TraceEventKind.COMPLETION, job.name
            )
        elif enforcement_cut:
            job.finish_time = end_ns / NS_PER_UNIT
            self._record_overrun(end_ns, job.name, config.policy)
            if config.completes_on_cut:
                # clip-to-budget: the partial work stands, the release
                # counts as served (imprecise-computation semantics)
                job.state = JobState.COMPLETED
                vm.trace.add_event(
                    end_ns / NS_PER_UNIT, TraceEventKind.COMPLETION,
                    job.name, "clipped to declared cost",
                )
            else:
                job.state = JobState.ABORTED
                job.interrupted = True
                vm.trace.add_event(
                    end_ns / NS_PER_UNIT, TraceEventKind.INTERRUPT,
                    job.name,
                    f"budget={effective_ns / NS_PER_UNIT:g}tu (enforced)",
                )
                if config.sheds_next:
                    self._shed_pending += 1
            ok = config.completes_on_cut
        else:
            job.state = JobState.ABORTED
            job.interrupted = True
            job.finish_time = end_ns / NS_PER_UNIT
            vm.trace.add_event(
                end_ns / NS_PER_UNIT, TraceEventKind.INTERRUPT, job.name,
                f"budget={budget_ns / NS_PER_UNIT:g}tu",
            )
        source = release.source
        if source is not None and source.breaker is not None:
            if ok:
                source.breaker.record_success(end_ns / NS_PER_UNIT)
            else:
                source.breaker.record_failure(end_ns / NS_PER_UNIT)
        return ok, elapsed

    def _record_overrun(self, now_ns: int, subject: str, policy: str) -> None:
        """Record an overrun event and notify the VM's watchdog, if any."""
        vm = self._require_vm()
        vm.trace.add_event(
            now_ns / NS_PER_UNIT, TraceEventKind.OVERRUN, subject,
            f"policy={policy}",
        )
        if vm.watchdog is not None:
            vm.watchdog.notify_overrun(now_ns / NS_PER_UNIT, subject)

    def _on_serve_start(self, now_ns: int, release: HandlerRelease) -> None:
        """Policy hook: the interruptible section is about to run."""

    def _on_serve_end(self, now_ns: int) -> None:
        """Policy hook: the interruptible section just finished."""

    # -- results --------------------------------------------------------------------------

    @property
    def jobs(self) -> list[AperiodicJob]:
        """The job record of every release (metric input)."""
        return [r.job for r in self.releases]

    def run_metrics(self) -> RunMetrics:
        """This server's run measured the paper's way (Section 6.1)."""
        return measure_run(self.jobs)

    def record_capacity(self, now_ns: int, capacity_ns: int) -> None:
        """Append a capacity breakpoint (times converted to tu)."""
        point = (now_ns / NS_PER_UNIT, capacity_ns / NS_PER_UNIT)
        if not self.capacity_history or self.capacity_history[-1] != point:
            self.capacity_history.append(point)

    def _require_vm(self) -> RTSJVirtualMachine:
        if self.vm is None:
            raise RuntimeError(f"server {self.name!r} is not attached to a VM")
        return self.vm

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} "
            f"C={self.params.capacity_ns / NS_PER_UNIT:g} "
            f"T={self.params.period_ns / NS_PER_UNIT:g}>"
        )
