"""Partitioned placement: bin-packing heuristics, bounds, rejection."""

from __future__ import annotations

import pytest

from repro.smp import PLACEMENT_HEURISTICS, PartitionError, partition_tasks
from repro.workload.spec import PeriodicTaskSpec


def _spec(name: str, utilization: float,
          period: float = 10.0) -> PeriodicTaskSpec:
    return PeriodicTaskSpec(
        name, cost=utilization * period, period=period, priority=1
    )


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", PLACEMENT_HEURISTICS)
    def test_every_task_placed_within_bounds(self, heuristic):
        tasks = [_spec(f"t{i}", u) for i, u in
                 enumerate([0.6, 0.5, 0.4, 0.3, 0.2, 0.2, 0.1])]
        part = partition_tasks(tasks, n_cores=3, heuristic=heuristic)
        assert set(part.core_of) == {t.name for t in tasks}
        assert all(0 <= c < 3 for c in part.core_of.values())
        for load in part.utilization:
            assert load <= 1.0 + 1e-9
        assert part.total_utilization == pytest.approx(2.3)
        assert part.heuristic == heuristic

    def test_first_fit_prefers_low_cores(self):
        # 0.5 + 0.3 fit together on core 0 under ff
        tasks = [_spec("a", 0.5), _spec("b", 0.3)]
        part = partition_tasks(tasks, n_cores=2, heuristic="ff")
        assert part.core_of == {"a": 0, "b": 0}

    def test_worst_fit_spreads_load(self):
        tasks = [_spec("a", 0.5), _spec("b", 0.3)]
        part = partition_tasks(tasks, n_cores=2, heuristic="wf")
        assert part.core_of == {"a": 0, "b": 1}

    def test_best_fit_consolidates(self):
        # after a=0.6 on core 0, bf puts b=0.3 on the fuller core 0
        tasks = [_spec("a", 0.6), _spec("b", 0.3)]
        part = partition_tasks(tasks, n_cores=2, heuristic="bf")
        assert part.core_of == {"a": 0, "b": 0}

    def test_decreasing_utilization_order(self):
        # the big task is placed first even when listed last
        tasks = [_spec("small", 0.2), _spec("big", 0.9)]
        part = partition_tasks(tasks, n_cores=2, heuristic="ff")
        assert part.core_of["big"] == 0
        assert part.core_of["small"] == 1

    def test_tasks_on_preserves_input_order(self):
        tasks = [_spec("a", 0.2), _spec("b", 0.3), _spec("c", 0.2)]
        part = partition_tasks(tasks, n_cores=1)
        assert part.tasks_on(0, tasks) == tasks


class TestRejection:
    def test_oversubscribed_set_rejected(self):
        tasks = [_spec(f"t{i}", 0.7) for i in range(4)]
        with pytest.raises(PartitionError, match="fits on no core"):
            partition_tasks(tasks, n_cores=2)

    def test_single_task_over_capacity_rejected(self):
        with pytest.raises(PartitionError):
            partition_tasks([_spec("t", 0.95)], n_cores=4, capacity=0.9)

    def test_reserve_shrinks_the_bins(self):
        # 0.8 fits a bare core but not one with a 0.3 server reserve
        partition_tasks([_spec("t", 0.8)], n_cores=1)
        with pytest.raises(PartitionError):
            partition_tasks([_spec("t", 0.8)], n_cores=1, reserve=0.3)

    def test_partition_error_is_value_error(self):
        assert issubclass(PartitionError, ValueError)


class TestValidation:
    def test_bad_heuristic(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            partition_tasks([_spec("t", 0.1)], 2, heuristic="meta")

    def test_bad_core_count(self):
        with pytest.raises(ValueError, match="n_cores"):
            partition_tasks([_spec("t", 0.1)], 0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            partition_tasks([_spec("t", 0.1)], 2, capacity=1.5)

    def test_bad_reserve(self):
        with pytest.raises(ValueError, match="reserve"):
            partition_tasks([_spec("t", 0.1)], 2, reserve=1.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            partition_tasks([_spec("t", 0.1), _spec("t", 0.2)], 2)
