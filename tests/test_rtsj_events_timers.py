"""Unit tests for AsyncEvent / AsyncEventHandler / timers / clock."""

from __future__ import annotations

import pytest

from repro.rtsj import (
    AbsoluteTime,
    AsyncEvent,
    AsyncEventHandler,
    Compute,
    OneShotTimer,
    PeriodicTimer,
    PriorityParameters,
    RealtimeClock,
    RelativeTime,
)
from conftest import M, make_periodic_thread, segments_of


def counting_handler(log, name, cost_units=1, priority=30):
    def logic(handler):
        log.append(("start", name, handler.thread.vm.now_ns / M))
        yield Compute(round(cost_units * M))
        log.append(("end", name, handler.thread.vm.now_ns / M))

    return AsyncEventHandler(logic, PriorityParameters(priority), name=name)


class TestAsyncEvents:
    def test_fire_releases_handler(self, zero_vm):
        log = []
        h = counting_handler(log, "h")
        h.attach(zero_vm)
        e = AsyncEvent("e")
        e.add_handler(h)
        zero_vm.schedule_event(2 * M, lambda now: e.fire())
        zero_vm.run(10 * M)
        assert log == [("start", "h", 2.0), ("end", "h", 3.0)]

    def test_multiple_handlers_released_together(self, zero_vm):
        log = []
        h1 = counting_handler(log, "h1", priority=30)
        h2 = counting_handler(log, "h2", priority=25)
        for h in (h1, h2):
            h.attach(zero_vm)
        e = AsyncEvent("e")
        e.add_handler(h1)
        e.add_handler(h2)
        zero_vm.schedule_event(0, lambda now: e.fire())
        zero_vm.run(10 * M)
        # priority order: h1 completes before h2 starts
        assert log == [
            ("start", "h1", 0.0), ("end", "h1", 1.0),
            ("start", "h2", 1.0), ("end", "h2", 2.0),
        ]

    def test_fire_count_banked_while_busy(self, zero_vm):
        log = []
        h = counting_handler(log, "h", cost_units=3)
        h.attach(zero_vm)
        e = AsyncEvent("e")
        e.add_handler(h)
        for t in (0, 1, 2):
            zero_vm.schedule_event(t * M, lambda now: e.fire())
        zero_vm.run(20 * M)
        # three firings -> three full executions back to back
        starts = [entry for entry in log if entry[0] == "start"]
        assert [s[2] for s in starts] == [0.0, 3.0, 6.0]
        assert e.fire_count == 3
        assert h.fire_count_total == 3

    def test_add_remove_handler(self):
        e = AsyncEvent("e")
        h = AsyncEventHandler(name="h")
        e.add_handler(h)
        e.add_handler(h)  # idempotent
        assert e.handlers == [h]
        e.remove_handler(h)
        assert e.handlers == []

    def test_handler_without_logic_is_noop(self, zero_vm):
        h = AsyncEventHandler(scheduling=PriorityParameters(30), name="h")
        h.attach(zero_vm)
        e = AsyncEvent("e")
        e.add_handler(h)
        zero_vm.schedule_event(0, lambda now: e.fire())
        trace = zero_vm.run(5 * M)
        assert segments_of(trace, "h") == []

    def test_unattached_handler_release_fails(self):
        h = AsyncEventHandler(name="h")
        with pytest.raises(RuntimeError, match="not attached"):
            h.release_handler()

    def test_double_attach_rejected(self, zero_vm):
        h = AsyncEventHandler(name="h")
        h.attach(zero_vm)
        with pytest.raises(RuntimeError, match="already attached"):
            h.attach(zero_vm)

    def test_handler_preempts_lower_thread(self, zero_vm):
        zero_vm.add_thread(make_periodic_thread("t", 5, 10, 15))
        log = []
        h = counting_handler(log, "h", cost_units=2, priority=30)
        h.attach(zero_vm)
        e = AsyncEvent("e")
        e.add_handler(h)
        zero_vm.schedule_event(1 * M, lambda now: e.fire())
        trace = zero_vm.run(10 * M)
        assert segments_of(trace, "t") == [(0, 1), (3, 7)]
        assert segments_of(trace, "h") == [(1, 3)]


class TestTimers:
    def test_one_shot_fires_once(self, zero_vm):
        log = []
        h = counting_handler(log, "h")
        h.attach(zero_vm)
        timer = OneShotTimer(zero_vm, AbsoluteTime(4, 0), name="t")
        timer.add_handler(h)
        timer.start()
        zero_vm.run(20 * M)
        assert [s for s in log if s[0] == "start"] == [("start", "h", 4.0)]
        assert not timer.enabled

    def test_one_shot_stop_before_fire(self, zero_vm):
        log = []
        h = counting_handler(log, "h")
        h.attach(zero_vm)
        timer = OneShotTimer(zero_vm, AbsoluteTime(4, 0))
        timer.add_handler(h)
        timer.start()
        zero_vm.schedule_event(2 * M, lambda now: timer.stop())
        zero_vm.run(20 * M)
        assert log == []

    def test_periodic_timer_fires_repeatedly(self, zero_vm):
        fired = []
        timer = PeriodicTimer(
            zero_vm, AbsoluteTime(1, 0), RelativeTime(3, 0), name="p"
        )
        h = AsyncEventHandler(
            lambda handler: iter(()),  # releases recorded via fire_count
            PriorityParameters(30), name="sink",
        )

        # simpler: observe through the event's own counter
        class Probe(AsyncEventHandler):
            def handle_async_event(self):
                fired.append(zero_vm.now_ns / M)
                return
                yield  # pragma: no cover

        probe = Probe(scheduling=PriorityParameters(30), name="probe")
        probe.attach(zero_vm)
        timer.add_handler(probe)
        timer.start()
        zero_vm.run(11 * M)
        assert fired == [1.0, 4.0, 7.0, 10.0]

    def test_periodic_timer_stop(self, zero_vm):
        timer = PeriodicTimer(zero_vm, AbsoluteTime(0, 0), RelativeTime(2, 0))
        timer.start()
        zero_vm.schedule_event(5 * M, lambda now: timer.stop())
        zero_vm.run(20 * M)
        assert timer.fire_count == 3  # t = 0, 2, 4

    def test_double_start_rejected(self, zero_vm):
        timer = OneShotTimer(zero_vm, AbsoluteTime(1, 0))
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_interval_validation(self, zero_vm):
        with pytest.raises(ValueError):
            PeriodicTimer(zero_vm, AbsoluteTime(0, 0), RelativeTime(0, 0))


class TestClock:
    def test_clock_tracks_virtual_time(self, zero_vm):
        clock = RealtimeClock(zero_vm)
        readings = []
        zero_vm.schedule_event(
            3 * M, lambda now: readings.append(clock.get_time())
        )
        zero_vm.run(5 * M)
        assert readings == [AbsoluteTime(3, 0)]
        assert clock.get_resolution() == RelativeTime(0, 1)


class TestTimerReschedule:
    def test_reschedule_before_fire_moves_the_firing(self, zero_vm):
        fired = []

        class Probe(AsyncEventHandler):
            def handle_async_event(self):
                fired.append(zero_vm.now_ns / M)
                return
                yield  # pragma: no cover

        probe = Probe(scheduling=PriorityParameters(30), name="probe")
        probe.attach(zero_vm)
        timer = OneShotTimer(zero_vm, AbsoluteTime(8, 0))
        timer.add_handler(probe)
        timer.start()
        zero_vm.schedule_event(
            2 * M, lambda now: timer.reschedule(AbsoluteTime(4, 0))
        )
        zero_vm.run(20 * M)
        assert fired == [4.0]

    def test_reschedule_after_fire_rearms(self, zero_vm):
        fired = []

        class Probe(AsyncEventHandler):
            def handle_async_event(self):
                fired.append(zero_vm.now_ns / M)
                return
                yield  # pragma: no cover

        probe = Probe(scheduling=PriorityParameters(30), name="probe")
        probe.attach(zero_vm)
        timer = OneShotTimer(zero_vm, AbsoluteTime(2, 0))
        timer.add_handler(probe)
        timer.start()
        zero_vm.schedule_event(
            5 * M, lambda now: timer.reschedule(AbsoluteTime(9, 0))
        )
        zero_vm.run(20 * M)
        assert fired == [2.0, 9.0]

    def test_reschedule_to_past_fires_immediately(self, zero_vm):
        fired = []

        class Probe(AsyncEventHandler):
            def handle_async_event(self):
                fired.append(zero_vm.now_ns / M)
                return
                yield  # pragma: no cover

        probe = Probe(scheduling=PriorityParameters(30), name="probe")
        probe.attach(zero_vm)
        timer = OneShotTimer(zero_vm, AbsoluteTime(50, 0))
        timer.add_handler(probe)
        timer.start()
        zero_vm.schedule_event(
            6 * M, lambda now: timer.reschedule(AbsoluteTime(1, 0))
        )
        zero_vm.run(20 * M)
        assert fired == [6.0]
