"""Unit tests for the emulated RTSJ virtual machine and threads."""

from __future__ import annotations

import pytest

from repro.rtsj import (
    AbsoluteTime,
    Compute,
    OverheadModel,
    PeriodicParameters,
    PriorityParameters,
    RealtimeThread,
    RelativeTime,
    RTSJVirtualMachine,
    Sleep,
    ThreadState,
    WaitForNextPeriod,
)
from conftest import M, make_periodic_thread, periodic_logic, segments_of


class TestPeriodicThreads:
    def test_single_periodic_timeline(self, zero_vm):
        zero_vm.add_thread(make_periodic_thread("t", 2, 5, 20))
        trace = zero_vm.run(15 * M)
        assert segments_of(trace, "t") == [(0, 2), (5, 7), (10, 12)]

    def test_priority_preemption(self, zero_vm):
        zero_vm.add_thread(make_periodic_thread("lo", 4, 12, 12))
        zero_vm.add_thread(make_periodic_thread("hi", 1, 3, 30))
        trace = zero_vm.run(12 * M)
        assert segments_of(trace, "hi") == [(0, 1), (3, 4), (6, 7), (9, 10)]
        assert segments_of(trace, "lo") == [(1, 3), (4, 6)]

    def test_offset_start(self, zero_vm):
        zero_vm.add_thread(make_periodic_thread("t", 1, 5, 20, offset=2))
        trace = zero_vm.run(12 * M)
        assert segments_of(trace, "t") == [(2, 3), (7, 8)]

    def test_release_exactly_at_completion_not_skipped(self, zero_vm):
        # regression: a job finishing exactly at its next release must
        # take that release, not skip to the one after
        zero_vm.add_thread(make_periodic_thread("hog", 3, 6, 30))
        zero_vm.add_thread(make_periodic_thread("t", 3, 6, 20))
        trace = zero_vm.run(18 * M)
        assert segments_of(trace, "t") == [(3, 6), (9, 12), (15, 18)]

    def test_overrun_skips_to_future_release(self, zero_vm):
        # hog starves t for more than a whole period
        zero_vm.add_thread(make_periodic_thread("hog", 13, 14, 30))
        zero_vm.add_thread(make_periodic_thread("t", 1, 6, 20))
        trace = zero_vm.run(20 * M)
        # t's first job runs at 13; next release taken is 18 (12 skipped)
        assert segments_of(trace, "t")[0] == (13, 14)

    def test_thread_termination(self, zero_vm):
        def one_shot(thread):
            yield Compute(3 * M)

        t = RealtimeThread(one_shot, PriorityParameters(20), name="once")
        zero_vm.add_thread(t)
        trace = zero_vm.run(10 * M)
        assert segments_of(trace, "once") == [(0, 3)]
        assert t.state is ThreadState.TERMINATED

    def test_wait_for_next_period_requires_periodic_params(self, zero_vm):
        def bad(thread):
            yield WaitForNextPeriod()

        zero_vm.add_thread(RealtimeThread(bad, PriorityParameters(20)))
        with pytest.raises(RuntimeError, match="PeriodicParameters"):
            zero_vm.run(5 * M)

    def test_sleep_instruction(self, zero_vm):
        marks = []

        def sleeper(thread):
            yield Compute(1 * M)
            marks.append(thread.now_ns)
            yield Sleep(5 * M)
            marks.append(thread.now_ns)
            yield Compute(1 * M)

        zero_vm.add_thread(RealtimeThread(sleeper, PriorityParameters(20), name="s"))
        trace = zero_vm.run(10 * M)
        assert marks == [1 * M, 5 * M]
        assert segments_of(trace, "s") == [(0, 1), (5, 6)]

    def test_yielding_non_instruction_raises(self, zero_vm):
        def bad(thread):
            yield 42

        zero_vm.add_thread(RealtimeThread(bad, PriorityParameters(20)))
        with pytest.raises(TypeError, match="not an Instruction"):
            zero_vm.run(5 * M)

    def test_priority_bounds_enforced(self, zero_vm):
        t = RealtimeThread(periodic_logic(M), PriorityParameters(99),
                           name="out-of-range")
        zero_vm.add_thread(t)
        with pytest.raises(ValueError, match="priority"):
            zero_vm.run(5 * M)

    def test_thread_cannot_start_twice(self, zero_vm):
        t = make_periodic_thread("t", 1, 5, 20)
        zero_vm.add_thread(t)
        with pytest.raises(RuntimeError):
            t.start(zero_vm)

    def test_vm_runs_once(self, zero_vm):
        zero_vm.run(1 * M)
        with pytest.raises(RuntimeError):
            zero_vm.run(1 * M)

    def test_zero_compute_is_instantaneous(self, zero_vm):
        order = []

        def logic(thread):
            order.append("a")
            yield Compute(0)
            order.append("b")
            yield Compute(1 * M)
            order.append("c")

        zero_vm.add_thread(RealtimeThread(logic, PriorityParameters(20)))
        zero_vm.run(5 * M)
        assert order == ["a", "b", "c"]


class TestOverheadModel:
    def test_timer_isr_blocks_all_threads(self):
        vm = RTSJVirtualMachine(
            overhead=OverheadModel.zero()._replace_timer(500_000)
            if hasattr(OverheadModel, "_replace_timer")
            else OverheadModel(
                timer_fire_ns=500_000, release_ns=0, dispatch_ns=0,
                context_switch_ns=0, handler_inflation_ns=0,
            )
        )
        vm.add_thread(make_periodic_thread("t", 2, 10, 20))
        vm.schedule_timer_event(1 * M, lambda now: None)
        trace = vm.run(10 * M)
        # the thread is split around the 0.5tu ISR window at t=1
        assert segments_of(trace, "t") == [(0, 1), (1.5, 2.5)]
        assert segments_of(trace, "ISR") == [(1, 1.5)]

    def test_zero_overhead_has_no_isr_segments(self, zero_vm):
        zero_vm.add_thread(make_periodic_thread("t", 1, 5, 20))
        zero_vm.schedule_timer_event(2 * M, lambda now: None)
        trace = zero_vm.run(5 * M)
        assert segments_of(trace, "ISR") == []

    def test_validation(self):
        with pytest.raises(ValueError):
            OverheadModel(timer_fire_ns=-1)

    def test_zero_factory(self):
        z = OverheadModel.zero()
        assert (z.timer_fire_ns, z.release_ns, z.dispatch_ns,
                z.context_switch_ns, z.handler_inflation_ns) == (0,) * 5

    def test_context_switch_cost_charged(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel(
            timer_fire_ns=0, release_ns=0, dispatch_ns=0,
            context_switch_ns=250_000, handler_inflation_ns=0,
        ))
        vm.add_thread(make_periodic_thread("a", 1, 10, 30))
        vm.add_thread(make_periodic_thread("b", 1, 10, 20))
        trace = vm.run(10 * M)
        assert trace.busy_time("ISR") > 0


class TestEventScheduling:
    def test_past_event_rejected(self, zero_vm):
        zero_vm.add_thread(make_periodic_thread("t", 5, 10, 20))

        def cb(now):
            with pytest.raises(ValueError):
                zero_vm.schedule_event(now - 1, lambda t: None)

        zero_vm.schedule_event(2 * M, cb)
        zero_vm.run(10 * M)

    def test_bad_horizon(self, zero_vm):
        with pytest.raises(ValueError):
            zero_vm.run(0)

    def test_idle_vm_finishes_early(self, zero_vm):
        trace = zero_vm.run(100 * M)
        assert trace.segments == []


class TestInstructionValidation:
    def test_compute_validation(self):
        with pytest.raises(ValueError):
            Compute(-1)
        with pytest.raises(TypeError):
            Compute(1.5)  # type: ignore[arg-type]

    def test_compute_deadline_composition(self):
        instr = Compute(5, deadline_ns=100)
        tighter = instr.with_deadline(50)
        assert tighter.deadline_ns == 50
        looser = instr.with_deadline(200)
        assert looser.deadline_ns == 100

    def test_sleep_validation(self):
        with pytest.raises(TypeError):
            Sleep(1.5)  # type: ignore[arg-type]

    def test_compute_repr(self):
        assert "Compute(5ns" in repr(Compute(5))
        assert "deadline=9" in repr(Compute(5, deadline_ns=9))
