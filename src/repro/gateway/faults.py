"""Seeded network-fault injection for the gateway's adversarial drills.

:class:`NetworkFaultProxy` sits between clients and the gateway and
mangles the *request* direction at frame granularity — it parses the
length-prefixed framing (without touching the JSON), so every injected
fault is coherent at the protocol level:

* **latency/jitter** — each forwarded frame is delayed by
  ``latency_s + U(0, jitter_s)`` wall seconds;
* **connection resets** — both sides are aborted mid-conversation; the
  client must reconnect and retry (idempotently);
* **torn writes** — the frame header plus a strict prefix of the
  payload is forwarded, then the connection dies: the gateway must
  account a :class:`~repro.gateway.protocol.TornFrame`, never a
  half-parsed request;
* **duplicate frames** — the same submit lands twice: the second
  decision must come back flagged ``duplicate`` (idempotency fused
  through journal, cache, and planner);
* **reordered frames** — a frame is held back and swapped with its
  successor, permuting arrival stamps.

Draws are :class:`~repro.workload.rng.PortableRandom`, seeded per
(plan seed, connection), so a drill replays its fault schedule
deterministically for a given connection sequence.  Responses flow back
unmangled — the drills target ingestion, and an unreadable response is
indistinguishable from client-side loss, which retries already cover.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path

from repro.workload.rng import PortableRandom

from .protocol import FrameError, read_raw_frame

__all__ = ["ProxyFaultPlan", "NetworkFaultProxy"]

_HEADER_BYTES = 4


@dataclass(frozen=True)
class ProxyFaultPlan:
    """Per-frame fault probabilities and delays (request direction)."""

    latency_s: float = 0.0
    jitter_s: float = 0.0
    reset_probability: float = 0.0
    torn_frame_probability: float = 0.0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reset_probability", "torn_frame_probability",
                     "duplicate_probability", "reorder_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def active(self) -> bool:
        return any((
            self.latency_s > 0, self.jitter_s > 0,
            self.reset_probability > 0, self.torn_frame_probability > 0,
            self.duplicate_probability > 0, self.reorder_probability > 0,
        ))


class _Reset(Exception):
    """Internal: this connection drew a reset."""


class NetworkFaultProxy:
    """A frame-aware chaos proxy in front of one gateway listener."""

    def __init__(
        self,
        plan: ProxyFaultPlan,
        target: tuple[str, int] | str,
        *,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        listen_unix_path: str | None = None,
        seed: int = 0,
        max_frame: int = 1 << 20,
    ) -> None:
        self.plan = plan
        self.target = target
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.listen_unix_path = listen_unix_path
        self.seed = seed
        self.max_frame = max_frame
        self.server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | str | None = None
        self._conn_seq = 0
        self._tasks: set[asyncio.Task] = set()
        # injection counters
        self.forwarded = 0
        self.resets = 0
        self.torn = 0
        self.duplicated = 0
        self.reordered = 0
        self.delayed = 0
        self.connect_failures = 0

    async def start(self) -> "NetworkFaultProxy":
        if self.listen_unix_path is not None:
            path = Path(self.listen_unix_path)
            path.unlink(missing_ok=True)
            self.server = await asyncio.start_unix_server(
                self._handle, path=str(path)
            )
            self.address = str(path)
        else:
            self.server = await asyncio.start_server(
                self._handle, self.listen_host, self.listen_port
            )
            sock = self.server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])
        return self

    async def close(self) -> None:
        if self.server is not None:
            self.server.close()
            try:
                await self.server.wait_closed()
            except Exception:
                pass
            self.server = None
        for task in list(self._tasks):
            task.cancel()

    async def _connect_target(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if isinstance(self.target, str):
            return await asyncio.open_unix_connection(self.target)
        host, port = self.target
        return await asyncio.open_connection(host, port)

    async def _handle(
        self, client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self._conn_seq += 1
        rng = PortableRandom(self.seed * 1_000_003 + self._conn_seq)
        try:
            upstream_reader, upstream_writer = await self._connect_target()
        except (ConnectionError, OSError):
            # gateway down (kill drill) — the client sees a reset
            self.connect_failures += 1
            self._abort(client_writer)
            return
        pump_up = asyncio.create_task(
            self._pump_requests(client_reader, upstream_writer, rng)
        )
        pump_down = asyncio.create_task(
            self._pump_responses(upstream_reader, client_writer)
        )
        try:
            done, pending = await asyncio.wait(
                {pump_up, pump_down}, return_when=asyncio.FIRST_COMPLETED
            )
            reset = any(
                isinstance(t.exception(), _Reset)
                for t in done if not t.cancelled()
            )
            for task_ in pending:
                task_.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            if reset:
                self._abort(client_writer)
                self._abort(upstream_writer)
        except asyncio.CancelledError:
            # close() cancelled us mid-pump; finish quietly so the
            # stream callback does not log the cancellation
            for task_ in (pump_up, pump_down):
                task_.cancel()
        finally:
            for writer in (client_writer, upstream_writer):
                try:
                    writer.close()
                except Exception:
                    pass

    async def _pump_requests(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        rng: PortableRandom,
    ) -> None:
        held: bytes | None = None  # a reordered frame waiting to swap
        try:
            while True:
                try:
                    frame = await read_raw_frame(
                        reader, max_frame=self.max_frame
                    )
                except FrameError:
                    return  # client itself sent garbage; drop the conn
                if frame is None:
                    break
                if rng.random() < self.plan.reset_probability:
                    self.resets += 1
                    raise _Reset()
                if rng.random() < self.plan.torn_frame_probability:
                    self.torn += 1
                    cut = _HEADER_BYTES + max(
                        1, (len(frame) - _HEADER_BYTES) // 2
                    )
                    await self._forward(writer, frame[:cut])
                    raise _Reset()
                if held is None and (
                    rng.random() < self.plan.reorder_probability
                ):
                    self.reordered += 1
                    held = frame
                    continue
                await self._delayed_forward(writer, frame, rng)
                if rng.random() < self.plan.duplicate_probability:
                    self.duplicated += 1
                    await self._forward(writer, frame)
                if held is not None:
                    await self._forward(writer, held)
                    held = None
            if held is not None:
                # stream ended while holding a reordered frame — flush
                await self._forward(writer, held)
        except (ConnectionError, OSError):
            return
        finally:
            if writer.can_write_eof():
                try:
                    writer.write_eof()
                except (ConnectionError, OSError):
                    pass

    async def _delayed_forward(
        self, writer: asyncio.StreamWriter, frame: bytes, rng: PortableRandom,
    ) -> None:
        delay = self.plan.latency_s
        if self.plan.jitter_s > 0:
            delay += rng.uniform(0.0, self.plan.jitter_s)
        if delay > 0:
            self.delayed += 1
            await asyncio.sleep(delay)
        await self._forward(writer, frame)

    async def _forward(
        self, writer: asyncio.StreamWriter, data: bytes
    ) -> None:
        self.forwarded += 1
        writer.write(data)
        await writer.drain()

    async def _pump_responses(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            return
        finally:
            if writer.can_write_eof():
                try:
                    writer.write_eof()
                except (ConnectionError, OSError):
                    pass

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        transport = writer.transport
        if transport is not None:
            transport.abort()

    def metrics(self) -> dict:
        return {
            "forwarded": self.forwarded,
            "resets": self.resets,
            "torn": self.torn,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "delayed": self.delayed,
            "connect_failures": self.connect_failures,
        }
