"""AdmissionGateway (PR 9): ingress limits, backpressure, drain, crash."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.gateway import (
    AdmissionGateway,
    GatewayConfig,
    encode_frame,
    load_journal,
    parse_ticket,
    ping_payload,
    read_frame,
    submit_payload,
    undecided_entries,
    write_frame,
)
from repro.gateway.soak import default_gateway_service_config
from repro.service import EventRequest
from repro.sim.trace import TraceEventKind


def _request(rid: str, cost: float = 0.2, deadline: float = 20.0,
             hard: bool = True, source: str = "src-0") -> EventRequest:
    return EventRequest(rid, cost=cost, relative_deadline=deadline,
                        hard=hard, source=source)


def _paths(tmp_path):
    return dict(
        journal_path=tmp_path / "journal.jsonl",
        checkpoint_path=tmp_path / "checkpoint.jsonl",
    )


def _config(tmp_path, **overrides) -> GatewayConfig:
    overrides.setdefault("unix_path", str(tmp_path / "gw.sock"))
    return GatewayConfig(**overrides)


async def _connect(gateway):
    return await asyncio.open_unix_connection(gateway.address)


async def _submit(reader, writer, request) -> object:
    await write_frame(writer, submit_payload(request))
    payload = await read_frame(reader)
    return parse_ticket(payload)


class TestRoundTrip:
    def test_submit_admit_and_idempotent_duplicate(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path), default_gateway_service_config(),
                **_paths(tmp_path),
            ).start()
            reader, writer = await _connect(gateway)
            ticket = await _submit(reader, writer, _request("r-1"))
            assert ticket.decision.value == "admit"
            assert not ticket.duplicate
            again = await _submit(reader, writer, _request("r-1"))
            assert again.decision.value == "admit"
            assert again.duplicate
            writer.close()
            gateway.request_shutdown()
            await gateway.terminated.wait()
            report, _merged = gateway.finish()
            assert not report.violations
            ops = load_journal(tmp_path / "journal.jsonl")
            # both frames journaled: 2 ingests, 2 decisions, one admit
            assert sum(1 for op in ops if op["op"] == "ingest") == 2
            assert sum(1 for op in ops if op["op"] == "decided") == 2
            assert undecided_entries(ops) == []

        asyncio.run(scenario())

    def test_ping_pong_and_unknown_kind(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path), default_gateway_service_config(),
            ).start()
            reader, writer = await _connect(gateway)
            await write_frame(writer, ping_payload())
            pong = await read_frame(reader)
            assert pong["kind"] == "pong"
            assert pong["now"] >= 0.0
            await write_frame(writer, {"kind": "mystery"})
            answer = await read_frame(reader)
            assert answer["kind"] == "error"
            assert gateway.protocol_errors == 1
            writer.close()
            gateway.request_shutdown()
            await gateway.terminated.wait()

        asyncio.run(scenario())


class TestIngressLimits:
    def test_oversized_frame_is_rejected_and_accounted(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path, max_frame_bytes=128),
                default_gateway_service_config(),
            ).start()
            reader, writer = await _connect(gateway)
            writer.write(struct.pack(">I", 1 << 20))
            await writer.drain()
            answer = await read_frame(reader)
            assert answer["kind"] == "error"
            assert await read_frame(reader) is None  # connection closed
            assert gateway.oversized_frames == 1
            writer.close()
            gateway.request_shutdown()
            await gateway.terminated.wait()

        asyncio.run(scenario())

    def test_slowloris_connection_is_dropped(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path, read_timeout_s=0.05),
                default_gateway_service_config(),
            ).start()
            _reader, writer = await _connect(gateway)
            frame = encode_frame(ping_payload())
            writer.write(frame[:6])  # header + 2 bytes, then silence
            await writer.drain()
            await asyncio.sleep(0.2)
            assert gateway.timeouts == 1
            writer.close()
            gateway.request_shutdown()
            await gateway.terminated.wait()

        asyncio.run(scenario())

    def test_torn_frame_is_accounted(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path), default_gateway_service_config(),
            ).start()
            _reader, writer = await _connect(gateway)
            frame = encode_frame(submit_payload(_request("r-torn")))
            writer.write(frame[: len(frame) - 4])
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.1)
            assert gateway.torn_frames == 1
            assert gateway.ingested == 0  # never half-parsed
            gateway.request_shutdown()
            await gateway.terminated.wait()

        asyncio.run(scenario())

    def test_connection_cap(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path, max_connections=1),
                default_gateway_service_config(),
            ).start()
            r1, w1 = await _connect(gateway)
            await _submit(r1, w1, _request("r-1"))  # conn 1 is live
            r2, w2 = await _connect(gateway)
            # the second connection is closed without service
            assert await read_frame(r2) is None
            assert gateway.connections_rejected == 1
            for w in (w1, w2):
                w.close()
            gateway.request_shutdown()
            await gateway.terminated.wait()

        asyncio.run(scenario())


class TestBackpressure:
    def test_pipeline_overflow_answers_reject_busy(self, tmp_path):
        async def scenario():
            gateway = AdmissionGateway(
                _config(tmp_path, max_in_flight=1),
                default_gateway_service_config(),
            )
            # no dispatcher: the pipeline cannot drain, so depth 1 fills
            gateway._pipeline = asyncio.Queue(maxsize=1)
            first = asyncio.create_task(
                gateway._admit_or_reject_at_edge(_request("r-1"), 1)
            )
            await asyncio.sleep(0)
            busy = await gateway._admit_or_reject_at_edge(_request("r-2"), 1)
            assert busy.decision.value == "reject_busy"
            assert busy.retryable
            assert "depth=1/1" in busy.detail
            assert gateway.busy_rejections == 1
            first.cancel()
            await asyncio.gather(first, return_exceptions=True)
            # the edge rejection is traced but never journaled
            kinds = [e.detail for e in gateway.trace.events
                     if e.subject == "r-2"]
            assert kinds == ["reject_busy depth=1/1 edge"]

        asyncio.run(scenario())

    def test_draining_answers_reject_draining_at_the_edge(self, tmp_path):
        async def scenario():
            gateway = AdmissionGateway(
                _config(tmp_path), default_gateway_service_config(),
            )
            gateway._pipeline = asyncio.Queue(maxsize=4)
            gateway.draining = True
            ticket = await gateway._admit_or_reject_at_edge(
                _request("r-1"), 1
            )
            assert ticket.decision.value == "reject_draining"
            assert gateway.draining_rejections == 1

        asyncio.run(scenario())


class TestDrain:
    def test_sigterm_drains_and_terminates(self, tmp_path):
        async def scenario():
            gateway = await AdmissionGateway(
                _config(tmp_path), default_gateway_service_config(),
                **_paths(tmp_path),
            ).start()
            reader, writer = await _connect(gateway)
            await _submit(reader, writer, _request("r-1", cost=0.1))
            gateway.request_shutdown()
            await gateway.terminated.wait()
            # a post-drain client cannot connect (listener closed)
            with pytest.raises((ConnectionError, FileNotFoundError, OSError)):
                await _connect(gateway)
            ops = load_journal(tmp_path / "journal.jsonl")
            assert [op["op"] for op in ops if op["op"] in
                    ("drain", "drained")] == ["drain", "drained"]
            writer.close()

        asyncio.run(scenario())

    def test_drain_cutoff_sheds_unsettleable_work_explicitly(self, tmp_path):
        from repro.service import WallClock

        async def scenario():
            # 10ms/tu: the queued backlog below settles over ~180ms of
            # wall time, far beyond the 1 tu drain window
            gateway = await AdmissionGateway(
                _config(tmp_path, drain_max_wait=1.0),
                default_gateway_service_config(),
                clock=WallClock(scale=0.01),
                **_paths(tmp_path),
            ).start()
            reader, writer = await _connect(gateway)
            admitted = []
            for i in range(12):
                ticket = await _submit(
                    reader, writer,
                    _request(f"r-{i:02d}", cost=1.5, deadline=10000.0),
                )
                if ticket.decision.value == "admit":
                    admitted.append(ticket.request_id)
            assert len(admitted) >= 6
            writer.close()
            gateway.request_shutdown()
            await gateway.terminated.wait()
            sheds = [e for e in gateway.service.trace.events
                     if e.kind is TraceEventKind.SHED
                     and "drain cutoff" in e.detail]
            # everything that could not settle by the cutoff carries an
            # explicit drain-cutoff fate — nothing silently dropped
            assert sheds
            completions = {
                e.subject for e in gateway.service.trace.events
                if e.kind is TraceEventKind.COMPLETION
            }
            assert completions | {e.subject for e in sheds} >= set(admitted)

        asyncio.run(scenario())

    def test_second_sigterm_forces_immediate_exit(self, tmp_path):
        from repro.service import WallClock

        async def scenario():
            # 100ms/tu: the admitted backlog would keep a graceful
            # drain busy for seconds — plenty of room for the second
            # signal to cut in
            gateway = await AdmissionGateway(
                _config(tmp_path), default_gateway_service_config(),
                clock=WallClock(scale=0.1),
                **_paths(tmp_path),
            ).start()
            reader, writer = await _connect(gateway)
            for i in range(4):
                await _submit(reader, writer,
                              _request(f"r-{i}", cost=1.9, deadline=500.0))
            gateway.request_shutdown()
            await asyncio.sleep(0)
            assert gateway.draining and not gateway.terminated.is_set()
            gateway.request_shutdown()  # the impatient second signal
            await asyncio.wait_for(gateway.terminated.wait(), timeout=2.0)
            assert gateway.killed
            assert gateway.shutdown_signals == 2
            ops = load_journal(tmp_path / "journal.jsonl")
            assert any(op["op"] == "forced_exit" for op in ops)
            # further signals are no-ops, not errors
            gateway.request_shutdown()
            assert gateway.shutdown_signals == 3
            writer.close()

        asyncio.run(scenario())


class TestCrashRestore:
    def test_kill_and_restore_without_double_admission(self, tmp_path):
        async def scenario():
            service_config = default_gateway_service_config()
            config = _config(tmp_path)
            gateway = await AdmissionGateway(
                config, service_config, **_paths(tmp_path),
            ).start()
            reader, writer = await _connect(gateway)
            ticket = await _submit(reader, writer, _request("r-1"))
            assert ticket.decision.value == "admit"
            gateway.kill()
            writer.close()

            restored = await AdmissionGateway.restore(
                config, service_config, **_paths(tmp_path),
                predecessor=gateway,
            )
            # the restored logical timeline resumes past the last stamp
            assert restored.clock.start > ticket.submitted_at
            r2, w2 = await _connect(restored)
            # the same id resubmitted: answered from the journal-seeded
            # cache as a duplicate, never re-admitted
            again = await _submit(r2, w2, _request("r-1"))
            assert again.decision.value == "admit"
            assert again.duplicate
            fresh = await _submit(r2, w2, _request("r-2"))
            assert fresh.decision.value == "admit"
            assert not fresh.duplicate
            w2.close()
            restored.request_shutdown()
            await restored.terminated.wait()
            report, merged = restored.finish()
            assert not report.violations
            # exactly one RELEASE for the pre-crash admission across
            # both incarnations (the resumed one is tagged, not dup)
            releases = [e for e in merged.events
                        if e.kind is TraceEventKind.RELEASE
                        and e.subject == "r-1"
                        and not e.detail.startswith("resumed")]
            assert len(releases) == 1

        asyncio.run(scenario())

    def test_restore_replays_undecided_journal_entries(self, tmp_path):
        async def scenario():
            service_config = default_gateway_service_config()
            config = _config(tmp_path)
            gateway = await AdmissionGateway(
                config, service_config, **_paths(tmp_path),
            ).start()
            reader, writer = await _connect(gateway)
            await _submit(reader, writer, _request("r-1"))
            gateway.kill()
            writer.close()
            # a crash after journaling the ingest but before the
            # decision: append the bare ingest op the dispatcher wrote
            stamp = gateway.clock.now() + 0.5
            gateway.journal.append({
                "op": "ingest", "t": stamp,
                "request": _request("r-interrupted").to_dict(),
            })
            ops = load_journal(tmp_path / "journal.jsonl")
            debt = undecided_entries(ops)
            assert [d["request"]["request_id"] for d in debt] == (
                ["r-interrupted"]
            )

            restored = await AdmissionGateway.restore(
                config, service_config, **_paths(tmp_path),
                predecessor=gateway,
            )
            assert restored.replayed == 1
            ops = load_journal(tmp_path / "journal.jsonl")
            assert undecided_entries(ops) == []
            decided = [op for op in ops if op["op"] == "decided"
                       and op["id"] == "r-interrupted"]
            assert len(decided) == 1
            assert decided[0]["t"] == stamp  # original stamp preserved
            restored.request_shutdown()
            await restored.terminated.wait()
            report, _merged = restored.finish()
            assert not report.violations

        asyncio.run(scenario())

    def test_fabric_must_share_the_gateway_clock(self, tmp_path):
        from repro.fabric import AdmissionFabric, FabricConfig
        from repro.service import VirtualClock

        async def scenario():
            service_config = default_gateway_service_config()
            fabric = AdmissionFabric(
                FabricConfig(shards=1, supervised=False),
                service_config, clock=VirtualClock(),
            )
            with pytest.raises(ValueError):
                AdmissionGateway(
                    _config(tmp_path), service_config, fabric=fabric,
                )

        asyncio.run(scenario())
