"""Write-ahead JSONL checkpoint for the admission service.

Every state mutation the service performs — admission, completion,
deadline-guard cut, shed, re-plan, heartbeat miss — appends one durable
JSONL record (single write, flushed and fsynced, truncated-final-line
tolerant: the same discipline as the campaign checkpoints).  Because
the planner and twin are deterministic functions of this op sequence,
*replaying* the log through the very same mutation code rebuilds a twin
whose :meth:`~repro.service.twin.DigitalTwin.state_hash` is identical
to the live service's at the moment of the crash — the restart test's
acceptance criterion.

The first record is a header carrying the server parameters and twin
thresholds, so a restart needs nothing but the log file.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import asdict
from pathlib import Path

from .planner import IncrementalPlanner
from .requests import EventRequest
from .twin import DigitalTwin, TwinConfig

__all__ = ["CheckpointError", "CheckpointLog", "replay_ops"]


class CheckpointError(Exception):
    """The log is unusable: missing header or inconsistent replay."""


def _crc(op: dict) -> int:
    """CRC-32 over the canonical serialization of ``op`` (crc key aside)."""
    canonical = json.dumps(op, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


class CheckpointLog:
    """Append-only durable op log (one JSON object per line)."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists() and self.path.stat().st_size > 0

    def append(self, op: dict) -> None:
        """Append one op durably; isolates a truncated final line first.

        Each record carries a CRC-32 of its own canonical payload, so a
        partially flushed line is *detectably* torn on restore — not
        just unparseable-by-luck."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        prefix = ""
        if self.path.exists() and self.path.stat().st_size:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    prefix = "\n"
        record = dict(op)
        record["crc"] = _crc(op)
        with self.path.open("a") as fh:
            fh.write(prefix + json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def write_header(self, capacity: float, period: float, start: float,
                     twin: TwinConfig, seed: int) -> None:
        self.append({
            "op": "init",
            "capacity": capacity,
            "period": period,
            "start": start,
            "twin": asdict(twin),
            "seed": seed,
        })

    def load(self) -> list[dict]:
        """All intact ops, each verified against its per-line CRC.

        A line that fails to parse *or* parses but fails its CRC (a
        torn partial flush, a bit flip) is skipped with a warning — a
        crash artifact, not a reason to refuse the whole log.  Lines
        written before the CRC discipline (no ``crc`` key) are accepted
        unverified for back-compatibility."""
        if not self.path.exists():
            return []
        ops: list[dict] = []
        torn = 0
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    torn += 1
                    continue
                if not isinstance(record, dict):
                    torn += 1
                    continue
                expected = record.pop("crc", None)
                if expected is not None and expected != _crc(record):
                    torn += 1
                    continue
                ops.append(record)
        if torn:
            warnings.warn(
                f"checkpoint {self.path}: skipped {torn} torn/corrupt "
                "record(s) (crash artifact — restoring from the intact "
                "prefix)",
                stacklevel=2,
            )
        return ops


def replay_ops(ops: list[dict]) -> tuple[IncrementalPlanner, DigitalTwin,
                                          dict]:
    """Rebuild (planner, twin) by replaying ``ops`` through the live
    mutation code paths.

    Returns the rebuilt pair plus the header dict.  Raises
    :class:`CheckpointError` when the log has no header or an admit
    replays inconsistently (the log and the arithmetic disagree — a
    corrupted file, not a crash artifact).
    """
    if not ops or ops[0].get("op") != "init":
        raise CheckpointError("checkpoint has no init header")
    header = ops[0]
    planner = IncrementalPlanner(
        capacity=header["capacity"],
        period=header["period"],
        start=header["start"],
    )
    twin = DigitalTwin(config=TwinConfig(**header["twin"]), planner=planner)
    for op in ops[1:]:
        kind = op.get("op")
        t = op.get("t", 0.0)
        if kind == "admit":
            request = EventRequest.from_dict(op["request"])
            job, _finish = planner.admit(t, request)
            if job is None:
                raise CheckpointError(
                    f"admit of {request.request_id!r} at t={t:g} replayed "
                    "as a rejection — log/state mismatch"
                )
            twin.observe_admit(t, job)
        elif kind == "complete":
            twin.reconcile(t, op["id"], op["actual_finish"], op["served"])
            if op["id"] in planner.jobs:
                planner.retire(op["id"])
        elif kind == "cut":
            twin.reconcile(
                t, op["id"], op["actual_finish"], op["served"], cut=True
            )
            if op["id"] in planner.jobs:
                planner.retire(op["id"])
            twin.observe_shed(t, op["id"])
        elif kind == "shed":
            if op["id"] in planner.jobs:
                planner.retire(op["id"])
            twin.observe_shed(t, op["id"])
        elif kind == "replan":
            planner.inflation = op["inflation"]
            planner.scale = op["scale"]
            result = planner.repair(t, level=op["level"])
            for rid in result.shed:
                twin.observe_shed(t, rid)
            twin.observe_replan(op["level"])
            if op["level"] == "renegotiate":
                twin.negotiated_drift = op["inflation"]
        elif kind == "heartbeat_miss":
            twin.note_heartbeat_miss(t)
        elif kind in ("init", "drain"):
            continue
        else:
            # forward compatibility: unknown ops are skipped, like
            # unknown trace kinds in trace_io
            continue
    return planner, twin, header
