"""Utilization-based schedulability bounds.

Complements the exact RTA with the classic closed-form tests:

* Liu & Layland's rate-monotonic bound ``n(2^(1/n) - 1)``;
* the Deferrable Server bound of Strosnider, Lehoczky & Sha: with a DS
  of utilization ``Us`` at the highest priority, ``n`` rate-monotonic
  periodic tasks are schedulable when their utilization does not exceed
  ``n * ((Us + 2) / (2 Us + 1))^(1/n) - n``... expressed through the
  helper :func:`deferrable_server_bound`;
* hyperperiod and utilization helpers shared by the examples.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import reduce

from ..workload.spec import PeriodicTaskSpec, ServerSpec

__all__ = [
    "total_utilization",
    "liu_layland_bound",
    "deferrable_server_bound",
    "rm_schedulable_by_utilization",
    "hyperperiod",
]


def total_utilization(tasks: list[PeriodicTaskSpec]) -> float:
    """Sum of cost/period over the task set."""
    return sum(t.utilization for t in tasks)


def liu_layland_bound(n: int) -> float:
    """``n (2^(1/n) - 1)``: the RM least upper bound for ``n`` tasks."""
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    return n * (2 ** (1 / n) - 1)


def deferrable_server_bound(server_utilization: float, n: int) -> float:
    """The RM least upper bound for ``n`` periodic tasks below a
    highest-priority Deferrable Server of utilization ``Us``:

        U_lub = n * (((Us + 2) / (2*Us + 1)) ** (1/n) - 1)

    For ``Us = 0`` this degenerates to Liu & Layland's bound.
    """
    if not 0 <= server_utilization < 1:
        raise ValueError(
            f"server utilization must be in [0, 1), got {server_utilization}"
        )
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    k = (server_utilization + 2) / (2 * server_utilization + 1)
    return n * (k ** (1 / n) - 1)


def rm_schedulable_by_utilization(
    tasks: list[PeriodicTaskSpec],
    server: ServerSpec | None = None,
    policy: str = "polling",
) -> bool:
    """Sufficient (not necessary) utilization test for RM task sets.

    With a Polling Server the server counts as one more periodic task
    under Liu & Layland; with a Deferrable Server the dedicated bound
    applies.  A ``False`` here does not mean infeasible — use the exact
    analysis of :mod:`repro.analysis.server_analysis` for a verdict.
    """
    u = total_utilization(tasks)
    if server is None:
        return u <= liu_layland_bound(len(tasks)) + 1e-12
    if policy == "polling":
        u_total = u + server.utilization
        return u_total <= liu_layland_bound(len(tasks) + 1) + 1e-12
    if policy == "deferrable":
        return u <= deferrable_server_bound(
            server.utilization, len(tasks)
        ) + 1e-12
    raise ValueError(f"unknown policy {policy!r}")


def hyperperiod(tasks: list[PeriodicTaskSpec],
                resolution: float | None = None) -> float:
    """Exact LCM of the task periods as rationals.

    Every float is a dyadic rational, so each period converts to a
    :class:`fractions.Fraction` without loss and the least common
    multiple is ``lcm(numerators) / gcd(denominators)`` — no resolution
    grid, no accumulated float error (the historical implementation
    scaled by a 1e-6 grid and multiplied back, which silently mis-sized
    the window for non-grid periods and for results like ``0.3`` whose
    grid product is not the nearest float).

    ``resolution``, if given, only *validates* that every period is an
    exact multiple of that grain (the historical contract); it no longer
    participates in the computation.  The returned float is exact
    whenever the rational LCM is representable (always true for the
    dyadic task sets the cycle detector fast-forwards).
    """
    if not tasks:
        raise ValueError("task set must not be empty")
    fractions_ = []
    for t in tasks:
        if resolution is not None:
            q = t.period / resolution
            if abs(q - round(q)) > 1e-6:
                raise ValueError(
                    f"period {t.period} of {t.name!r} is not a multiple of "
                    f"the resolution {resolution}"
                )
        if not (t.period > 0 and math.isfinite(t.period)):
            raise ValueError(
                f"period {t.period} of {t.name!r} is not a positive finite "
                "number"
            )
        fractions_.append(Fraction(t.period))
    lcm = reduce(
        lambda a, b: Fraction(
            math.lcm(a.numerator, b.numerator),
            math.gcd(a.denominator, b.denominator),
        ),
        fractions_,
    )
    return float(lcm)
