"""The paper's evaluation campaign (Section 6, Tables 2-5).

Six sets of ten randomly generated systems, each run four ways:

* ``ps_sim``  — ideal Polling Server on the RTSS simulator (Table 2);
* ``ps_exec`` — framework ``PollingTaskServer`` on the emulated RTSJ VM
  with runtime overheads (Table 3);
* ``ds_sim``  — ideal Deferrable Server on RTSS (Table 4);
* ``ds_exec`` — framework ``DeferrableTaskServer`` on the VM (Table 5).

Both arms consume byte-identical workloads from
:mod:`repro.workload.generator`, and both report the paper's metrics
(AART / AIR / ASR) through :mod:`repro.sim.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _replace

from ..core import (
    DeferrableTaskServer,
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServer,
    TaskServerParameters,
)
from ..rtsj import (
    AbsoluteTime,
    Compute,
    MAX_RT_PRIORITY,
    MIN_RT_PRIORITY,
    NS_PER_UNIT,
    OverheadModel,
    PeriodicParameters,
    PriorityParameters,
    RealtimeThread,
    RelativeTime,
    RTSJVirtualMachine,
    WaitForNextPeriod,
)
from ..sim import (
    AperiodicJob,
    FixedPriorityPolicy,
    IdealDeferrableServer,
    IdealPollingServer,
    RunMetrics,
    SetMetrics,
    Simulation,
    aggregate,
    measure_run,
)
from ..sim.servers.base import AperiodicServer
from ..sim.trace import ExecutionTrace
from ..workload import GeneratedSystem, GenerationParameters, PAPER_SETS, RandomSystemGenerator

__all__ = [
    "ARMS",
    "SystemResult",
    "CampaignResult",
    "simulate_system",
    "execute_system",
    "run_campaign",
]

ARMS = ("ps_sim", "ps_exec", "ds_sim", "ds_exec")


def _periodic_burn(cost_ns: int):
    """Thread logic for a generated periodic task: burn, wait, repeat."""

    def logic(thread: RealtimeThread):
        while True:
            yield Compute(cost_ns)
            yield WaitForNextPeriod()

    return logic

_SIM_SERVERS = {"polling": IdealPollingServer, "deferrable": IdealDeferrableServer}
_EXEC_SERVERS = {"polling": PollingTaskServer, "deferrable": DeferrableTaskServer}


@dataclass
class SystemResult:
    """One system's outcome under one arm."""

    metrics: RunMetrics
    trace: ExecutionTrace


@dataclass
class CampaignResult:
    """Aggregated campaign: ``tables[arm][(density, std)] -> SetMetrics``."""

    tables: dict[str, dict[tuple[float, float], SetMetrics]] = field(
        default_factory=dict
    )

    def table(self, arm: str) -> dict[tuple[float, float], SetMetrics]:
        if arm not in self.tables:
            raise KeyError(f"unknown arm {arm!r}; have {sorted(self.tables)}")
        return self.tables[arm]


def simulate_system(system: GeneratedSystem,
                    policy: str = "polling") -> SystemResult:
    """Run one system on RTSS with the ideal version of ``policy``.

    The server is forced above every periodic task — the paper's standing
    requirement ("the server has to be the highest-priority task in the
    system"), regardless of the priority recorded in the spec.
    """
    server_cls = _SIM_SERVERS[policy]
    sim = Simulation(FixedPriorityPolicy())
    top = max(
        (t.priority for t in system.periodic_tasks),
        default=system.server.priority,
    )
    spec = _replace(system.server, priority=max(system.server.priority, top + 1))
    server: AperiodicServer = server_cls(spec, name=policy.upper())
    server.attach(sim, horizon=system.horizon)
    for spec in system.periodic_tasks:
        sim.add_periodic_task(spec)
    jobs: list[AperiodicJob] = []
    for event in system.events:
        job = AperiodicJob(
            name=f"h{event.event_id}",
            release=event.release,
            cost=event.cost,
            declared_cost=event.declared_cost,
        )
        jobs.append(job)
        sim.submit_aperiodic(job, server.submit)
    trace = sim.run(until=system.horizon)
    return SystemResult(metrics=measure_run(jobs), trace=trace)


def execute_system(
    system: GeneratedSystem,
    policy: str = "polling",
    overhead: OverheadModel | None = None,
    server_priority: int = MAX_RT_PRIORITY,
    queue: str = "fifo",
    safety_margin: RelativeTime | None = None,
) -> SystemResult:
    """Run one system's framework implementation on the emulated VM.

    Each aperiodic event becomes a :class:`ServableAsyncEvent` fired by a
    timer at its release instant (timer firings cost ISR time under the
    overhead model, reproducing the paper's "timers charged to fire the
    asynchronous events").
    """
    vm = RTSJVirtualMachine(
        overhead=overhead if overhead is not None else OverheadModel()
    )
    params = TaskServerParameters.from_spec(
        system.server, priority=server_priority
    )
    server_cls = _EXEC_SERVERS[policy]
    if policy == "polling":
        server: TaskServer = server_cls(
            params, queue=queue, safety_margin=safety_margin
        )
    else:
        server = server_cls(params, safety_margin=safety_margin)
    horizon_ns = round(system.horizon * NS_PER_UNIT)
    server.attach(vm, horizon_ns)

    # periodic tasks run below the server: map their (arbitrary-scale)
    # spec priorities onto consecutive RTSJ priorities under the server's
    for rank, spec in enumerate(
        sorted(system.periodic_tasks, key=lambda t: t.priority, reverse=True)
    ):
        rtsj_priority = server_priority - 1 - rank
        if rtsj_priority < MIN_RT_PRIORITY:
            raise ValueError(
                "too many periodic tasks to fit below the server priority"
            )
        vm.add_thread(
            RealtimeThread(
                _periodic_burn(round(spec.cost * NS_PER_UNIT)),
                PriorityParameters(rtsj_priority),
                PeriodicParameters(
                    AbsoluteTime.from_nanos(round(spec.offset * NS_PER_UNIT)),
                    RelativeTime.from_units(spec.period),
                ),
                name=spec.name,
            )
        )

    for event in system.events:
        handler = ServableAsyncEventHandler(
            cost=RelativeTime.from_units(event.declared_cost),
            server=server,
            actual_cost=RelativeTime.from_units(event.cost),
            name=f"h{event.event_id}",
        )
        sae = ServableAsyncEvent(name=f"e{event.event_id}")
        sae.add_servable_handler(handler)
        vm.schedule_timer_event(
            round(event.release * NS_PER_UNIT),
            lambda now, e=sae: e.fire(),
        )
    trace = vm.run(horizon_ns)
    return SystemResult(metrics=server.run_metrics(), trace=trace)


def run_campaign(
    sets: tuple[GenerationParameters, ...] = PAPER_SETS,
    overhead: OverheadModel | None = None,
    arms: tuple[str, ...] = ARMS,
) -> CampaignResult:
    """Run the full evaluation; returns per-arm tables keyed like the
    paper's ``(density, std)`` columns."""
    result = CampaignResult(tables={arm: {} for arm in arms})
    for params in sets:
        key = (params.task_density, params.std_deviation)
        systems = RandomSystemGenerator(params).generate()
        per_arm: dict[str, list[RunMetrics]] = {arm: [] for arm in arms}
        for system in systems:
            if "ps_sim" in arms:
                per_arm["ps_sim"].append(
                    simulate_system(system, "polling").metrics
                )
            if "ds_sim" in arms:
                per_arm["ds_sim"].append(
                    simulate_system(system, "deferrable").metrics
                )
            if "ps_exec" in arms:
                per_arm["ps_exec"].append(
                    execute_system(system, "polling", overhead).metrics
                )
            if "ds_exec" in arms:
                per_arm["ds_exec"].append(
                    execute_system(system, "deferrable", overhead).metrics
                )
        for arm in arms:
            result.tables[arm][key] = aggregate(per_arm[arm])
    return result
