"""The virtual-machine instruction set yielded by thread logic.

A :class:`~repro.rtsj.thread.RealtimeThread`'s logic is a Python
generator.  Each ``yield`` hands the VM one of the instruction objects
below; the VM resumes the generator when the instruction is satisfied.
Everything executed *between* two yields is instantaneous in virtual time
(explicit :class:`Compute` instructions model every consumed cycle,
including modelled runtime overheads).
"""

from __future__ import annotations

__all__ = ["Instruction", "Compute", "WaitForNextPeriod", "AwaitRelease", "Sleep"]


class Instruction:
    """Base class for VM instructions."""

    __slots__ = ()


class Compute(Instruction):
    """Burn ``duration_ns`` of CPU time.

    ``deadline_ns`` (absolute, optional) is the wall-clock interrupt point
    installed by :class:`~repro.rtsj.interruptible.Timed`: if it arrives
    before the computation finishes, the VM throws
    ``AsynchronouslyInterruptedException`` into the generator at this
    yield point.
    """

    __slots__ = ("duration_ns", "deadline_ns", "deadline_owner", "remaining_ns")

    def __init__(self, duration_ns: int, deadline_ns: int | None = None,
                 deadline_owner: object | None = None) -> None:
        if not isinstance(duration_ns, int):
            raise TypeError("duration_ns must be an integer nanosecond count")
        if duration_ns < 0:
            raise ValueError(f"duration_ns must be >= 0, got {duration_ns}")
        self.duration_ns = duration_ns
        self.deadline_ns = deadline_ns
        #: the Timed whose deadline this is — gives the delivered
        #: AsynchronouslyInterruptedException its RTSJ-style identity so
        #: nested interruptible sections can tell whose budget expired
        self.deadline_owner = deadline_owner
        self.remaining_ns = duration_ns

    def with_deadline(self, deadline_ns: int,
                      owner: object | None = None) -> "Compute":
        """A copy whose interrupt point is the earlier of the two.

        On a tie the existing (inner) owner is kept: the innermost
        expired section aborts and its enclosing sections continue.
        """
        if self.deadline_ns is not None and self.deadline_ns <= deadline_ns:
            deadline_ns = self.deadline_ns
            owner = self.deadline_owner
        return Compute(self.duration_ns, deadline_ns, owner)

    def __repr__(self) -> str:
        return (
            f"Compute({self.duration_ns}ns"
            + (f", deadline={self.deadline_ns}" if self.deadline_ns is not None else "")
            + ")"
        )


class WaitForNextPeriod(Instruction):
    """Block until the thread's next periodic release."""

    __slots__ = ()


class AwaitRelease(Instruction):
    """Block until the owning handler's pending-fire count is positive,
    then consume one firing (async event handler threads only)."""

    __slots__ = ()


class Sleep(Instruction):
    """Block until an absolute virtual time (no CPU consumed)."""

    __slots__ = ("until_ns",)

    def __init__(self, until_ns: int) -> None:
        if not isinstance(until_ns, int):
            raise TypeError("until_ns must be an integer nanosecond count")
        self.until_ns = until_ns
