"""Seeded, composable fault models.

Injectors transform the *workload* (the
:class:`~repro.workload.spec.GeneratedSystem` descriptors both evaluation
arms consume), so a faulted campaign still feeds byte-identical inputs to
the simulator and the emulated-RTSJ execution — the invariant the whole
evaluation methodology rests on.  :class:`FireFaultInjector` additionally
perturbs the ``ServableAsyncEvent`` fire path at runtime for scenarios
where the *delivery* (not the workload) misbehaves.

Every injector draws from a :class:`~repro.workload.rng.PortableRandom`
stream derived from ``(plan seed, system id)``, so a faulted workload is
reproducible across platforms exactly like the clean one.  A
:class:`FaultPlan` with no injectors (or ``enabled=False``) returns the
input system object unchanged — zero drift on the golden path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

from ..workload.rng import PortableRandom
from ..workload.spec import AperiodicEventSpec, GeneratedSystem, PeriodicTaskSpec

__all__ = [
    "FaultInjector",
    "WcetOverrun",
    "ReleaseJitter",
    "EventBurst",
    "DroppedActivation",
    "TimerDrift",
    "FaultPlan",
    "FireFaultInjector",
    "ExecutionSkew",
]


class FaultInjector(ABC):
    """One fault model: a pure transformation of an event list."""

    @abstractmethod
    def transform(
        self,
        events: list[AperiodicEventSpec],
        rng: PortableRandom,
        horizon: float,
    ) -> list[AperiodicEventSpec]:
        """Return the faulted event list (may change length and order)."""

    def transform_periodic(
        self,
        tasks: list[PeriodicTaskSpec],
        rng: PortableRandom,
    ) -> list[PeriodicTaskSpec]:
        """Return the faulted periodic task list (default: untouched)."""
        return tasks


@dataclass(frozen=True)
class WcetOverrun(FaultInjector):
    """Selected handlers run ``factor`` times their declared cost.

    The declared cost (what admission control and ``chooseNextEvent``
    see) is left untouched; only the *actual* execution demand is
    inflated — the paper's Scenario 3 mis-declaration, generalised.
    ``periodic=True`` additionally inflates periodic tasks' actual cost
    past their declared WCET.
    """

    factor: float = 2.0
    probability: float = 1.0
    periodic: bool = False

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def transform(self, events, rng, horizon):
        out = []
        for event in events:
            if rng.random() < self.probability:
                event = replace(
                    event, actual_cost=event.cost * self.factor
                )
            out.append(event)
        return out

    def transform_periodic(self, tasks, rng):
        if not self.periodic:
            return tasks
        out = []
        for task in tasks:
            if rng.random() < self.probability:
                task = replace(task, actual_cost=task.cost * self.factor)
            out.append(task)
        return out


@dataclass(frozen=True)
class ReleaseJitter(FaultInjector):
    """Each release is delayed by a uniform jitter in [0, max_jitter]."""

    max_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.max_jitter < 0:
            raise ValueError(
                f"max_jitter must be >= 0, got {self.max_jitter}"
            )

    def transform(self, events, rng, horizon):
        out = [
            replace(e, release=e.release + rng.uniform(0.0, self.max_jitter))
            for e in events
        ]
        return [e for e in out if e.release < horizon]


@dataclass(frozen=True)
class EventBurst(FaultInjector):
    """An arrival turns into a burst (storm) of back-to-back arrivals.

    With probability ``probability`` an event is replicated ``extra``
    additional times, spaced ``spacing`` tu apart — the overload regime
    D-OVER's competitive guarantee and server capacity sharing both
    target.
    """

    extra: int = 2
    probability: float = 0.2
    spacing: float = 0.05

    def __post_init__(self) -> None:
        if self.extra < 1:
            raise ValueError(f"extra must be >= 1, got {self.extra}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.spacing <= 0:
            raise ValueError(f"spacing must be > 0, got {self.spacing}")

    def transform(self, events, rng, horizon):
        out: list[AperiodicEventSpec] = []
        for event in events:
            out.append(event)
            if rng.random() < self.probability:
                for k in range(1, self.extra + 1):
                    release = event.release + k * self.spacing
                    if release >= horizon:
                        break
                    out.append(replace(event, release=release))
        return out


@dataclass(frozen=True)
class DroppedActivation(FaultInjector):
    """Activations are lost (a missed interrupt, a dropped message)."""

    probability: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def transform(self, events, rng, horizon):
        return [e for e in events if rng.random() >= self.probability]


@dataclass(frozen=True)
class TimerDrift(FaultInjector):
    """The release timer runs fast or slow by ``ppm`` parts per million.

    Models clock drift on the event source: every release time is scaled
    by ``1 + ppm/1e6``.  The emulated VM offers the same knob natively
    (``RTSJVirtualMachine(timer_drift_ppm=...)``) for runs where only
    the runtime's timers drift.
    """

    ppm: float = 0.0

    def transform(self, events, rng, horizon):
        scale = 1.0 + self.ppm / 1e6
        out = [replace(e, release=e.release * scale) for e in events]
        return [e for e in out if 0 <= e.release < horizon]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded pipeline of injectors applied to generated systems.

    ``apply`` is deterministic in ``(seed, system.system_id)``; with no
    injectors or ``enabled=False`` it returns the *same object* it was
    given, so the golden path cannot drift.

    ``targets`` (optional) restricts the perturbation to the named items:
    periodic tasks by spec name (``"tau3"``) and aperiodic events by
    their job name (``"h7"``, i.e. ``f"h{event_id}"``).  Everything else
    passes through byte-identical.  Because the plan transforms the
    *workload descriptor* — before any single- or multicore placement
    decision — a targeted fault perturbs exactly the same tasks and
    events regardless of which core a partitioner or a global scheduler
    later puts them on.
    """

    injectors: tuple[FaultInjector, ...] = ()
    seed: int = 0
    enabled: bool = True
    targets: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        for injector in self.injectors:
            if not isinstance(injector, FaultInjector):
                raise TypeError(
                    f"injectors must be FaultInjector instances, "
                    f"got {injector!r}"
                )
        if self.targets is not None:
            for target in self.targets:
                if not isinstance(target, str):
                    raise TypeError(
                        f"targets must be names (str), got {target!r}"
                    )

    @property
    def active(self) -> bool:
        return self.enabled and bool(self.injectors)

    def apply(self, system: GeneratedSystem) -> GeneratedSystem:
        """Return the faulted system (or ``system`` itself when inactive)."""
        if not self.active:
            return system
        rng = PortableRandom(
            (self.seed << 1) ^ (system.system_id * 0x9E3779B9)
        )
        events = list(system.events)
        tasks = list(system.periodic_tasks)
        if self.targets is None:
            for injector in self.injectors:
                events = injector.transform(events, rng, system.horizon)
                tasks = injector.transform_periodic(tasks, rng)
        else:
            events, tasks = self._apply_targeted(
                events, tasks, rng, system.horizon
            )
        events.sort(key=lambda e: (e.release, e.event_id))
        # re-id so downstream job names stay unique after bursts
        events = [
            replace(e, event_id=i) for i, e in enumerate(events)
        ]
        return replace(
            system, events=tuple(events), periodic_tasks=tuple(tasks)
        )

    def _apply_targeted(
        self,
        events: list[AperiodicEventSpec],
        tasks: list[PeriodicTaskSpec],
        rng: PortableRandom,
        horizon: float,
    ) -> tuple[list[AperiodicEventSpec], list[PeriodicTaskSpec]]:
        """Run the pipeline over the targeted subset only.

        The rng stream is consumed solely by targeted items, so the
        perturbation a given target receives does not depend on how many
        untargeted items surround it.
        """
        target_set = set(self.targets or ())
        hit_events = [e for e in events if f"h{e.event_id}" in target_set]
        other_events = [
            e for e in events if f"h{e.event_id}" not in target_set
        ]
        hit_tasks = [t for t in tasks if t.name in target_set]
        other_tasks = [t for t in tasks if t.name not in target_set]
        for injector in self.injectors:
            hit_events = injector.transform(hit_events, rng, horizon)
            hit_tasks = injector.transform_periodic(hit_tasks, rng)
        # splice transformed tasks back into their original positions
        # (registration order is a scheduling tie-break downstream)
        by_name: dict[str, list[PeriodicTaskSpec]] = {}
        for task in hit_tasks:
            by_name.setdefault(task.name, []).append(task)
        merged_tasks: list[PeriodicTaskSpec] = []
        for task in tasks:
            if task.name in target_set:
                replacements = by_name.get(task.name, [])
                if replacements:
                    merged_tasks.append(replacements.pop(0))
                # a dropped task simply disappears
            else:
                merged_tasks.append(task)
        for leftovers in by_name.values():
            merged_tasks.extend(leftovers)
        return other_events + hit_events, merged_tasks

    def apply_all(
        self, systems: list[GeneratedSystem]
    ) -> list[GeneratedSystem]:
        return [self.apply(s) for s in systems]


@dataclass
class FireFaultInjector:
    """Runtime faults on the ``ServableAsyncEvent`` fire path.

    Attach to an event (``sae.fault_injector = injector``) to perturb
    *delivery* rather than the workload: firings can be dropped, delayed
    (uniform in ``[0, max_delay_ns]``) or duplicated.  Unset (the
    default), ``fire()`` behaves exactly as the paper describes.  Every
    decision is drawn from a seeded portable stream and counted.
    """

    seed: int = 0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_delay_ns: int = 0
    rng: PortableRandom = field(init=False, repr=False)
    dropped: int = field(init=False, default=0)
    duplicated: int = field(init=False, default=0)
    delayed: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be in [0, 1]")
        if self.max_delay_ns < 0:
            raise ValueError("max_delay_ns must be >= 0")
        self.rng = PortableRandom(self.seed)

    def on_fire(self, event, vm) -> bool:
        """Decide one firing's fate; returns False when it is dropped.

        Duplication and delay are realised through the VM event queue;
        the injector records what it did so campaigns can report it.
        """
        from ..sim.trace import TraceEventKind
        from ..rtsj.vm import NS_PER_UNIT

        if self.rng.random() < self.drop_probability:
            self.dropped += 1
            vm.trace.add_event(
                vm.now_ns / NS_PER_UNIT, TraceEventKind.FAULT,
                event.name, "fire dropped",
            )
            return False
        if self.rng.random() < self.duplicate_probability:
            self.duplicated += 1
            vm.trace.add_event(
                vm.now_ns / NS_PER_UNIT, TraceEventKind.FAULT,
                event.name, "fire duplicated",
            )
            vm.schedule_event(
                vm.now_ns, lambda now: event._deliver(), order=2
            )
        if self.max_delay_ns > 0:
            delay = int(self.rng.uniform(0, float(self.max_delay_ns)))
            if delay > 0:
                self.delayed += 1
                vm.trace.add_event(
                    vm.now_ns / NS_PER_UNIT, TraceEventKind.FAULT,
                    event.name, f"fire delayed {delay / NS_PER_UNIT:g}tu",
                )
                vm.schedule_event(
                    vm.now_ns + delay, lambda now: event._deliver(), order=2
                )
                return False
        return True


@dataclass(frozen=True)
class ExecutionSkew:
    """Deterministic twin/actual skew for the live admission service.

    Where the offline injectors transform a *workload*, this one skews
    the *execution* the service's digital twin must reconcile against:
    the executor's actual timeline runs ``drift_ppm`` parts per million
    fast or slow against the twin's predictions (the ``TimerDrift``
    analogue), and each request independently overruns its declared cost
    by ``overrun_factor`` with ``overrun_probability`` (the
    ``WcetOverrun`` analogue).

    Skew is keyed by ``(seed, request_id)`` through a platform-stable
    digest — not by draw order — so a service restarted from a
    checkpoint mid-storm re-derives the *same* actual execution for
    every in-flight request.
    """

    drift_ppm: float = 0.0
    overrun_factor: float = 1.0
    overrun_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.overrun_factor <= 0:
            raise ValueError(
                f"overrun_factor must be > 0, got {self.overrun_factor}"
            )
        if not 0.0 <= self.overrun_probability <= 1.0:
            raise ValueError(
                "overrun_probability must be in [0, 1], got "
                f"{self.overrun_probability}"
            )

    @property
    def active(self) -> bool:
        return self.drift_ppm != 0.0 or (
            self.overrun_probability > 0.0 and self.overrun_factor != 1.0
        )

    def factors(self, seed: int, request_id: str) -> tuple[float, float]:
        """The ``(drift_scale, overrun_scale)`` pair for one request.

        Deterministic in ``(seed, request_id)`` alone: the same request
        skews identically before and after a checkpoint restart.
        """
        import hashlib

        digest = hashlib.blake2b(
            request_id.encode("utf-8"), digest_size=8,
            key=seed.to_bytes(8, "little", signed=False),
        ).digest()
        rng = PortableRandom(int.from_bytes(digest, "little"))
        drift = 1.0 + self.drift_ppm / 1e6
        overrun = (
            self.overrun_factor
            if rng.random() < self.overrun_probability else 1.0
        )
        return drift, overrun
