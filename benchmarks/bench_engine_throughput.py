"""Infrastructure benchmarks: simulator kernel and VM throughput.

Not a paper table — these pin the cost of the two substrates so that
regressions in the event kernels are visible: RTSS processing dense and
wide periodic sets over long horizons, and the emulated RTSJ VM running
the full Table 1 configuration with events.

``bench_rtss_kernel_dense_periodic`` runs the kernel in its throughput
configuration (``kernel="fast"``, ``trace_mode="compact"``); the
``*_default`` companions pin the byte-identical default path so a
regression in either mode is visible on its own.  The committed
before/after medians live in ``benchmarks/BENCH_engine.json`` and are
guarded by the ``bench-smoke`` CI job (see docs/performance.md).
"""

from __future__ import annotations

from repro.experiments import SCENARIOS, run_scenario_execution
from repro.sim import FixedPriorityPolicy, Simulation, TraceEventKind
from repro.workload.spec import PeriodicTaskSpec

DENSE_TASKS = [(1, 5), (2, 8), (1, 10), (3, 20), (2, 25)]
DENSE_UNTIL = 5000.0
# 40 low-utilisation tasks: stresses ready-set maintenance rather than
# per-slice bookkeeping (the dense set stresses the opposite).
WIDE_TASKS = [(0.2 + (i % 7) * 0.1, 20 + (i * 13) % 60) for i in range(40)]
WIDE_UNTIL = 3000.0


def _build(tasks, base_priority, **knobs):
    sim = Simulation(FixedPriorityPolicy(), **knobs)
    for i, (cost, period) in enumerate(tasks):
        sim.add_periodic_task(
            PeriodicTaskSpec(f"t{i}", cost=cost, period=period,
                             priority=base_priority - i)
        )
    return sim


def bench_rtss_kernel_dense_periodic(benchmark):
    def run():
        return _build(DENSE_TASKS, 10, kernel="fast",
                      trace_mode="compact").run(until=DENSE_UNTIL)

    trace = benchmark(run)
    assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []
    # sanity: the fast path reports the same workload totals as the
    # reference kernel on the same task set
    ref = _build(DENSE_TASKS, 10, kernel="reference").run(until=DENSE_UNTIL)
    assert len(trace.events_of(TraceEventKind.RELEASE)) == len(
        ref.events_of(TraceEventKind.RELEASE)
    )
    assert abs(trace.busy_time() - ref.busy_time()) < 1e-6
    releases = len(trace.events_of(TraceEventKind.RELEASE))
    print(f"\nprocessed {releases} releases, "
          f"{len(trace.segments)} segments over {DENSE_UNTIL:g} tu")


def bench_rtss_kernel_dense_periodic_default(benchmark):
    def run():
        return _build(DENSE_TASKS, 10).run(until=DENSE_UNTIL)

    trace = benchmark(run)
    assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []


def bench_rtss_kernel_wide_taskset(benchmark):
    def run():
        return _build(WIDE_TASKS, 50, kernel="fast",
                      trace_mode="compact").run(until=WIDE_UNTIL)

    trace = benchmark(run)
    assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []


def bench_rtss_kernel_wide_taskset_default(benchmark):
    def run():
        return _build(WIDE_TASKS, 50).run(until=WIDE_UNTIL)

    trace = benchmark(run)
    assert trace.events_of(TraceEventKind.DEADLINE_MISS) == []


def bench_rtsj_vm_scenario_pipeline(benchmark):
    def run():
        return [run_scenario_execution(spec) for spec in SCENARIOS]

    outcomes = benchmark(run)
    assert len(outcomes) == 3
