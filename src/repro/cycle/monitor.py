"""Cycle-consistency trace monitor.

Checks the structural obligations a fast-forwarded trace carries: at
most one :attr:`~repro.sim.trace.TraceEventKind.CYCLE` marker, a
well-formed detail payload, and a clean gap — no segment may start and
no point event may fire strictly inside the skipped span
``(detected_at, detected_at + windows * period)``, because the kernel
was advanced over it in one jump.
"""

from __future__ import annotations

from ..sim.engine import EPS
from ..sim.trace import TraceEventKind
from ..verify.invariants import TraceMonitor

__all__ = ["CycleConsistencyMonitor"]


def parse_cycle_detail(detail: str) -> dict:
    """Decode a CYCLE event's ``start=... period=... windows=...`` payload."""
    out: dict = {}
    for token in detail.split():
        key, _, value = token.partition("=")
        out[key] = int(value) if key == "windows" else float(value)
    return out


class CycleConsistencyMonitor(TraceMonitor):
    """Verifies the CYCLE marker and the emptiness of the skipped gap."""

    name = "cycle-consistency"

    def __init__(self) -> None:
        super().__init__()
        self._cycles: list[tuple[float, dict]] = []

    def on_event(self, index: int, event) -> None:
        if event.kind is TraceEventKind.CYCLE:
            self._cycles.append((event.time, parse_cycle_detail(event.detail)))

    def finish(self, horizon: float) -> None:
        assert self.trace is not None
        if len(self._cycles) > 1:
            self.report.record(
                "multiple-cycle-markers", self._cycles[1][0], ("kernel",),
                f"{len(self._cycles)} CYCLE events recorded; the tracker "
                "stops sampling after the first detection",
            )
        for time, info in self._cycles:
            missing = [k for k in ("start", "period", "windows")
                       if k not in info]
            if missing:
                self.report.record(
                    "malformed-cycle-marker", time, ("kernel",),
                    f"CYCLE detail lacks {missing}",
                )
                continue
            if info["windows"] <= 0:
                continue  # detect-only marker: nothing was skipped
            gap_start = time
            gap_end = time + info["windows"] * info["period"]
            for segment in self.trace.segments:
                if (
                    segment.start > gap_start + EPS
                    and segment.start < gap_end - EPS
                ):
                    self.report.record(
                        "segment-in-gap", segment.start, (segment.entity,),
                        f"segment [{segment.start:g},{segment.end:g}) starts "
                        f"inside the fast-forwarded span "
                        f"({gap_start:g},{gap_end:g})",
                    )
            for event in self.trace.events:
                if (
                    event.time > gap_start + EPS
                    and event.time < gap_end - EPS
                ):
                    self.report.record(
                        "event-in-gap", event.time, (event.subject,),
                        f"{event.kind.value} at {event.time:g} inside the "
                        f"fast-forwarded span ({gap_start:g},{gap_end:g})",
                    )
