"""Common machinery for aperiodic task servers (ideal, literature form).

A server is an :class:`~repro.sim.engine.Entity` competing for the
processor at a fixed priority, holding a FIFO queue of pending
:class:`~repro.sim.task.AperiodicJob` and a capacity account whose
management distinguishes the policies (paper Section 2).

Unlike the RTSJ implementations of ``repro.core``, the servers here have
the exact literature semantics: handlers are *resumable* (a job partially
served in one server instance continues in the next) and there is no
runtime overhead.
"""

from __future__ import annotations

from abc import abstractmethod
from collections import deque
from typing import TYPE_CHECKING

from ..engine import EPS, Entity, Simulation
from ..task import AperiodicJob, JobState
from ..trace import TraceEventKind
from ...workload.spec import ServerSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...faults.enforcement import EnforcementConfig

__all__ = ["AperiodicServer"]


class AperiodicServer(Entity):
    """Base class: FIFO pending queue + capacity account.

    ``enforcement`` (see :mod:`repro.faults.enforcement`) optionally
    bounds each job to its *declared* cost: without it a mis-declared
    job simply drains capacity for longer (the literature behaviour);
    with it the configured overrun policy applies.  Either way a server
    can never consume more than its capacity per period — the account
    enforces that invariant itself.
    """

    def __init__(self, spec: ServerSpec, name: str | None = None,
                 enforcement: "EnforcementConfig | None" = None) -> None:
        self.spec = spec
        self.name = name if name is not None else type(self).__name__
        self.priority = spec.priority
        self.enforcement = enforcement
        self.pending: deque[AperiodicJob] = deque()
        self.capacity: float = 0.0
        self.completed: list[AperiodicJob] = []
        self.submitted: list[AperiodicJob] = []
        #: jobs cut or shed by overrun enforcement
        self.enforced: list[AperiodicJob] = []
        self._shed_pending = 0
        #: (time, capacity) breakpoints — the capacity curve the paper's
        #: figures chart alongside the schedule
        self.capacity_history: list[tuple[float, float]] = []
        self._sim: Simulation | None = None

    # -- wiring --------------------------------------------------------------

    def attach(self, sim: Simulation, horizon: float) -> None:
        """Register with a simulation and schedule periodic bookkeeping."""
        self._sim = sim
        sim.register_entity(self)
        self._schedule_housekeeping(sim, horizon)
        self.record_capacity(0.0)

    def record_capacity(self, now: float) -> None:
        """Append a (time, capacity) breakpoint (deduplicated)."""
        point = (now, self.capacity)
        if not self.capacity_history or self.capacity_history[-1] != point:
            self.capacity_history.append(point)

    def capacity_at(self, t: float) -> float:
        """Last recorded capacity at or before ``t`` (staircase view)."""
        value = 0.0
        for time, capacity in self.capacity_history:
            if time > t + 1e-12:
                break
            value = capacity
        return value

    @abstractmethod
    def _schedule_housekeeping(self, sim: Simulation, horizon: float) -> None:
        """Schedule activations / replenishments up to ``horizon``."""

    def submit(self, now: float, job: AperiodicJob) -> None:
        """Arrival hook: pass as handler to ``Simulation.submit_aperiodic``."""
        if self._sim is None:
            raise RuntimeError(
                f"server {self.name!r} is not attached to a simulation"
            )
        self.submitted.append(job)
        if self._shed_pending > 0:
            # skip-next-release recovery: the arrival is shed outright
            self._shed_pending -= 1
            job.state = JobState.ABORTED
            job.finish_time = now
            self.enforced.append(job)
            self._sim.trace.add_event(
                now, TraceEventKind.FAULT, job.name,
                "release shed (skip-next-release)",
            )
            return
        self.pending.append(job)
        self._sim.trace.add_event(now, TraceEventKind.RELEASE, job.name)
        self._on_arrival(now, job)

    def _on_arrival(self, now: float, job: AperiodicJob) -> None:
        """Policy hook: a job just joined the pending queue."""

    # -- Entity protocol ------------------------------------------------------

    def ready(self, now: float) -> bool:
        return bool(self.pending) and self.capacity > EPS

    def _enforcement_left(self, job: AperiodicJob) -> float | None:
        """Remaining declared-cost budget, or ``None`` when no cutting
        enforcement applies to this server."""
        config = self.enforcement
        if config is None or not config.cuts_execution:
            return None
        executed = job.cost - job.remaining
        return config.budget_for(job.declared_cost) - executed

    def budget(self, now: float) -> float:
        if not self.pending:
            return 0.0
        job = self.pending[0]
        base = min(job.remaining, self.capacity)
        left = self._enforcement_left(job)
        if left is not None:
            base = min(base, max(left, 0.0))
        return base

    def current_job_label(self) -> str | None:
        return self.pending[0].name if self.pending else None

    def consume(self, start: float, duration: float, sim: Simulation) -> None:
        job = self.pending[0]
        if job.start_time is None:
            job.start_time = start
            sim.trace.add_event(start, TraceEventKind.START, job.name)
        job.consume(duration)
        self.capacity = max(0.0, self.capacity - duration)
        self.record_capacity(start + duration)
        config = self.enforcement
        if (
            config is not None
            and not config.cuts_execution
            and not getattr(job, "_overrun_logged", False)
            and job.cost - job.remaining
                > config.budget_for(job.declared_cost) + EPS
        ):
            job._overrun_logged = True  # type: ignore[attr-defined]
            sim.record_overrun(
                start + duration, job.name,
                f"budget={config.budget_for(job.declared_cost):g}",
            )

    def on_budget_exhausted(self, now: float, sim: Simulation) -> None:
        job = self.pending[0]
        if job.remaining <= EPS:
            self.pending.popleft()
            job.state = JobState.COMPLETED
            job.finish_time = now
            self.completed.append(job)
            sim.trace.add_event(now, TraceEventKind.COMPLETION, job.name)
        else:
            left = self._enforcement_left(job)
            if left is not None and left <= EPS:
                self._enforce_overrun(now, job, sim)
        if self.capacity <= EPS:
            sim.trace.add_event(
                now, TraceEventKind.CAPACITY_EXHAUSTED, self.name
            )
            self._on_capacity_exhausted(now)
        elif not self.pending:
            self._on_idle(now)

    def _enforce_overrun(self, now: float, job: AperiodicJob,
                         sim: Simulation) -> None:
        """Apply the configured overrun policy to the head job."""
        config = self.enforcement
        assert config is not None and config.cuts_execution
        self.pending.popleft()
        job.finish_time = now
        self.enforced.append(job)
        sim.record_overrun(
            now, job.name,
            f"policy={config.policy} "
            f"budget={config.budget_for(job.declared_cost):g}",
        )
        if config.completes_on_cut:
            job.state = JobState.COMPLETED
            self.completed.append(job)
            sim.trace.add_event(now, TraceEventKind.COMPLETION, job.name)
        else:
            job.state = JobState.ABORTED
            job.interrupted = True
            sim.trace.add_event(
                now, TraceEventKind.ABORT, job.name, "cost overrun"
            )
        if config.sheds_next:
            self._shed_pending += 1

    def _on_capacity_exhausted(self, now: float) -> None:
        """Policy hook: the capacity account just hit zero."""

    def _on_idle(self, now: float) -> None:
        """Policy hook: the queue drained while capacity remains."""

    # -- bookkeeping helpers ---------------------------------------------------

    def _replenish(self, now: float, amount: float, cap: float | None = None) -> None:
        limit = cap if cap is not None else self.spec.capacity
        self.capacity = min(limit, self.capacity + amount)
        self.record_capacity(now)
        assert self._sim is not None
        self._sim.trace.add_event(
            now, TraceEventKind.REPLENISH, self.name,
            f"capacity={self.capacity:g}",
        )

    # -- metrics ---------------------------------------------------------------

    @property
    def served_ratio(self) -> float:
        """Fraction of submitted jobs completed (ASR numerator/denominator)."""
        if not self.submitted:
            return 1.0
        return len(self.completed) / len(self.submitted)

    @property
    def response_times(self) -> list[float]:
        """Response times of all completed jobs, in completion order."""
        out: list[float] = []
        for job in self.completed:
            rt = job.response_time
            assert rt is not None
            out.append(rt)
        return out
