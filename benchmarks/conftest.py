"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` regenerates one of the paper's tables; the
benchmark measures the full pipeline (generation + run + aggregation)
for its arm, and the regenerated rows are printed so the harness output
can be compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.tables import TABLE_ARMS, format_comparison
from repro.workload.generator import PAPER_SETS


@pytest.fixture(scope="session")
def paper_sets():
    return PAPER_SETS


def run_arm(arm: str):
    """Run the campaign for a single arm and return its table."""
    return run_campaign(arms=(arm,)).table(arm)


def report_table(table_no: int, measured) -> None:
    """Print the regenerated table next to the paper's values."""
    print()
    print(format_comparison(table_no, measured))


def run_table_benchmark(benchmark, table_no: int):
    """The common body of the four table benchmarks."""
    arm = TABLE_ARMS[table_no]
    measured = benchmark(run_arm, arm)
    report_table(table_no, measured)
    # sanity: all six sets regenerated
    assert len(measured) == 6
    return measured
