"""Trace serialization: save and reload execution traces as JSON.

RTSS "can simulate the execution of a real-time system and display a
temporal diagram" — this module adds the persistence layer a downstream
user needs: traces round-trip through a stable JSON schema, so runs can
be archived, diffed across versions, and re-rendered without re-running.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from .trace import ExecutionTrace, Segment, TraceEvent, TraceEventKind

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace",
           "diff_traces"]

_SCHEMA_VERSION = 1


def trace_to_dict(trace: ExecutionTrace) -> dict:
    """A JSON-serialisable representation of a trace."""
    return {
        "schema": _SCHEMA_VERSION,
        "segments": [
            {"start": s.start, "end": s.end, "entity": s.entity,
             "job": s.job}
            | ({"core": s.core} if s.core is not None else {})
            for s in trace.segments
        ],
        "events": [
            {"time": e.time, "kind": e.kind.value, "subject": e.subject,
             "detail": e.detail}
            for e in trace.events
        ],
    }


def trace_from_dict(data: dict) -> ExecutionTrace:
    """Rebuild a trace from :func:`trace_to_dict` output.

    Forward-compatible on event kinds: a trace written by a newer build
    may carry kinds this build does not know; such events are skipped
    with a warning instead of failing the whole load, so old tooling can
    still render and diff newer traces.
    """
    schema = data.get("schema")
    if schema != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {schema!r} "
            f"(this build reads version {_SCHEMA_VERSION})"
        )
    trace = ExecutionTrace()
    trace.segments = [
        Segment(s["start"], s["end"], s["entity"], s.get("job"),
                s.get("core"))
        for s in data["segments"]
    ]
    events: list[TraceEvent] = []
    unknown: dict[str, int] = {}
    for e in data["events"]:
        try:
            kind = TraceEventKind(e["kind"])
        except ValueError:
            unknown[e["kind"]] = unknown.get(e["kind"], 0) + 1
            continue
        events.append(
            TraceEvent(e["time"], kind, e["subject"], e.get("detail", ""))
        )
    if unknown:
        detail = ", ".join(
            f"{kind!r} x{count}" for kind, count in sorted(unknown.items())
        )
        warnings.warn(
            f"skipped {sum(unknown.values())} trace event(s) of unknown "
            f"kind(s): {detail}",
            stacklevel=2,
        )
    trace.events = events
    trace.validate()
    return trace


def save_trace(trace: ExecutionTrace, path: str | Path) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=1))


def load_trace(path: str | Path) -> ExecutionTrace:
    """Read a trace from a JSON file."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def diff_traces(a: ExecutionTrace, b: ExecutionTrace,
                tolerance: float = 1e-9) -> list[str]:
    """Human-readable differences between two traces (empty if equal).

    Compares segments positionally and events positionally; intended for
    regression comparisons of runs that should be identical.
    """
    problems: list[str] = []
    if len(a.segments) != len(b.segments):
        problems.append(
            f"segment count differs: {len(a.segments)} vs {len(b.segments)}"
        )
    for i, (sa, sb) in enumerate(zip(a.segments, b.segments)):
        if (
            abs(sa.start - sb.start) > tolerance
            or abs(sa.end - sb.end) > tolerance
            or sa.entity != sb.entity
            or sa.job != sb.job
            or sa.core != sb.core
        ):
            problems.append(f"segment {i}: {sa} vs {sb}")
    if len(a.events) != len(b.events):
        problems.append(
            f"event count differs: {len(a.events)} vs {len(b.events)}"
        )
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if (
            abs(ea.time - eb.time) > tolerance
            or ea.kind is not eb.kind
            or ea.subject != eb.subject
        ):
            problems.append(f"event {i}: {ea} vs {eb}")
    return problems
