"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.rtsj import (
    AbsoluteTime,
    Compute,
    NS_PER_UNIT,
    OverheadModel,
    PeriodicParameters,
    PriorityParameters,
    RealtimeThread,
    RelativeTime,
    RTSJVirtualMachine,
    WaitForNextPeriod,
)

M = NS_PER_UNIT  # 1 time unit in nanoseconds


def periodic_logic(cost_ns: int):
    """Thread logic burning ``cost_ns`` every period."""

    def logic(thread):
        while True:
            yield Compute(cost_ns)
            yield WaitForNextPeriod()

    return logic


def make_periodic_thread(name: str, cost: float, period: float,
                         priority: int, offset: float = 0.0) -> RealtimeThread:
    """A periodic VM thread with costs/periods in time units."""
    return RealtimeThread(
        periodic_logic(round(cost * M)),
        PriorityParameters(priority),
        PeriodicParameters(
            AbsoluteTime.from_nanos(round(offset * M)),
            RelativeTime.from_units(period),
        ),
        name=name,
    )


@pytest.fixture
def zero_vm() -> RTSJVirtualMachine:
    """A VM with all overheads disabled (exact integer timelines)."""
    return RTSJVirtualMachine(overhead=OverheadModel.zero())


def segments_of(trace, entity: str) -> list[tuple[float, float]]:
    """Rounded [start, end) pairs of an entity's trace segments."""
    return [
        (round(s.start, 6), round(s.end, 6))
        for s in trace.segments_of(entity)
    ]
