"""Seeded wall-clock soak drills for the admission gateway.

``run_gateway_soak`` stands up a real gateway on a Unix socket, pushes
a seeded Poisson arrival schedule through retrying clients — optionally
through the :class:`NetworkFaultProxy` and across one mid-run gateway
kill + journal restore — then closes the books two ways:

* the **protocol sweep**: :class:`GatewayProtocolMonitor` and the
  fabric protocol monitor over the merged (gateway + every service
  incarnation) timeline must report zero violations;
* the **control replay**: the ingestion journal's (stamp, request)
  pairs are replayed against a fresh service on a ``VirtualClock``
  (``run_control_replay``), and every request's terminal fate —
  (first decision, completed/shed) — must be *identical* to the
  wall-clock run's.  OS jitter may move event timestamps; it must never
  change a fate.

Determinism note: the drill runs the service with the overload
detector, breakers and skew off and an effectively-infinite twin
heartbeat — every remaining decision input is then a pure function of
the journaled stamps, which is exactly what the control replay feeds
back.  The gateway's own robustness machinery (busy/draining edge
rejections, torn-frame accounting, the clock watchdog) stays on and is
verified by the monitors instead.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.service import (
    AdmissionService,
    AdmissionTicket,
    EventRequest,
    ServiceConfig,
    TwinConfig,
    VirtualClock,
)
from repro.sim.trace import ExecutionTrace, TraceEventKind
from repro.workload.rng import PortableRandom

from .faults import NetworkFaultProxy, ProxyFaultPlan
from .gateway import AdmissionGateway, GatewayConfig, load_journal
from .protocol import (
    FrameError,
    parse_ticket,
    read_frame,
    submit_payload,
    write_frame,
)

__all__ = [
    "GatewaySoakConfig",
    "GatewaySoakReport",
    "default_gateway_service_config",
    "soak_requests",
    "run_control_replay",
    "run_gateway_soak",
]


def default_gateway_service_config(
    capacity: float = 2.0, period: float = 2.0
) -> ServiceConfig:
    """The soak's service tuning: every nondeterminism channel off.

    Breakers and the overload detector key decisions off wall-jittered
    observation order; the twin heartbeat would fire on wall delays.
    All are disabled so fates are a pure function of the journaled
    stamps — liveness is the gateway watchdog's job here.
    """
    return ServiceConfig(
        capacity=capacity, period=period,
        breaker=None, detector=None, queue_bound=256,
        twin=TwinConfig(heartbeat=1e9),
        monitored=False,
    )


@dataclass(frozen=True)
class GatewaySoakConfig:
    """One seeded wall-clock drill."""

    requests: int = 200
    #: mean Poisson arrival rate (per tu)
    rate: float = 2.0
    seed: int = 0
    #: wall seconds per tu (1e-3 = the 1 tu = 1 ms convention)
    scale: float = 1e-3
    sources: int = 3
    cost_range: tuple[float, float] = (0.05, 0.3)
    deadline_factor: float = 60.0
    hard_fraction: float = 0.7
    capacity: float = 2.0
    period: float = 2.0
    max_in_flight: int = 64
    #: kill the gateway when the schedule reaches this nominal tu,
    #: then restore it from journal + checkpoint (None = no kill)
    kill_at: float | None = None
    restart_delay_s: float = 0.05
    proxy: ProxyFaultPlan | None = None
    max_attempts: int = 8
    response_timeout_s: float = 0.75
    retry_backoff_s: float = 0.02

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.sources < 1:
            raise ValueError(f"sources must be >= 1, got {self.sources}")


@dataclass
class GatewaySoakReport:
    """Everything the drill measured, plus the two verdicts."""

    config: GatewaySoakConfig
    submitted: int = 0
    delivered: int = 0
    lost: int = 0
    retries: int = 0
    busy_retries: int = 0
    duplicates_seen: int = 0
    stray_responses: int = 0
    killed: bool = False
    restored: bool = False
    replayed: int = 0
    fates: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    control_fates: dict[str, tuple[str, str | None]] = field(
        default_factory=dict
    )
    fate_mismatches: list[tuple[str, tuple, tuple]] = field(
        default_factory=list
    )
    violations: list = field(default_factory=list)
    decisions: dict[str, int] = field(default_factory=dict)
    proxy: dict | None = None
    gateway_metrics: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def requests_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.delivered / self.wall_seconds

    @property
    def clean(self) -> bool:
        return (
            not self.violations
            and not self.fate_mismatches
            and self.lost == 0
            and (self.config.kill_at is None or self.restored)
        )

    def summary(self) -> dict:
        return {
            "submitted": self.submitted,
            "delivered": self.delivered,
            "lost": self.lost,
            "retries": self.retries,
            "busy_retries": self.busy_retries,
            "duplicates_seen": self.duplicates_seen,
            "killed": self.killed,
            "restored": self.restored,
            "replayed": self.replayed,
            "decisions": dict(self.decisions),
            "fate_mismatches": len(self.fate_mismatches),
            "violations": len(self.violations),
            "proxy": self.proxy,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_sec": round(self.requests_per_sec, 1),
            "clean": self.clean,
        }


def soak_requests(
    config: GatewaySoakConfig,
) -> list[tuple[float, EventRequest]]:
    """The seeded arrival schedule: (nominal send tu, request)."""
    rng = PortableRandom(config.seed)
    low, high = config.cost_range
    out: list[tuple[float, EventRequest]] = []
    t = 0.0
    for i in range(config.requests):
        t += rng.exponential(1.0 / config.rate)
        cost = rng.uniform(low, high)
        relative = cost * config.deadline_factor * rng.uniform(0.8, 1.2)
        out.append((t, EventRequest(
            request_id=f"req-{i:05d}",
            cost=cost,
            relative_deadline=relative,
            hard=rng.random() < config.hard_fraction,
            source=f"src-{i % config.sources}",
        )))
    return out


def _fates_from_trace(
    trace: ExecutionTrace,
) -> dict[str, str]:
    """request id -> first terminal kind ('completion' or 'shed')."""
    terminals: dict[str, str] = {}
    for event in trace.events:
        if event.kind in (TraceEventKind.COMPLETION, TraceEventKind.SHED):
            terminals.setdefault(event.subject, event.kind.value)
    return terminals


def _wall_fates(
    journal_ops: list[dict], merged: ExecutionTrace
) -> dict[str, tuple[str, str | None]]:
    terminals = _fates_from_trace(merged)
    fates: dict[str, tuple[str, str | None]] = {}
    for op in journal_ops:
        if op.get("op") != "decided":
            continue
        rid = op["id"]
        if rid in fates:
            continue  # later occurrences are idempotent replays
        decision = op["ticket"]["decision"]
        fates[rid] = (decision, terminals.get(rid))
    return fates


async def _control_replay_async(
    journal_ops: list[dict], service_config: ServiceConfig, seed: int,
) -> tuple[dict[str, tuple[str, str | None]], AdmissionService]:
    clock = VirtualClock(start=service_config.start)
    service = AdmissionService(
        replace(service_config, monitored=False), clock=clock, seed=seed,
    )
    await service.start()
    first: dict[str, AdmissionTicket] = {}
    for op in journal_ops:
        if op.get("op") != "ingest":
            continue
        stamp = op["t"]
        request = EventRequest.from_dict(op["request"])
        await clock.advance(stamp)
        ticket = await service.submit(request, at=stamp)
        first.setdefault(request.request_id, ticket)
    await service.drain()
    terminals = _fates_from_trace(service.trace)
    fates = {
        rid: (ticket.decision.value, terminals.get(rid))
        for rid, ticket in first.items()
    }
    return fates, service


def run_control_replay(
    journal_ops: list[dict], service_config: ServiceConfig, seed: int = 0,
) -> dict[str, tuple[str, str | None]]:
    """Replay a gateway journal on a :class:`VirtualClock`.

    Returns request id -> (first decision, terminal kind or ``None``)
    — the fate map the wall-clock run must match exactly.
    """
    async def run():
        fates, _service = await _control_replay_async(
            journal_ops, service_config, seed
        )
        return fates

    return asyncio.run(run())


# -- the retrying soak client -------------------------------------------


class _SoakClient:
    """One source's connection: sequential, idempotent, retrying."""

    def __init__(self, endpoint: tuple[str, int] | str,
                 config: GatewaySoakConfig,
                 report: GatewaySoakReport) -> None:
        self.endpoint = endpoint
        self.config = config
        self.report = report
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self.writer is not None:
            return
        if isinstance(self.endpoint, str):
            self.reader, self.writer = await asyncio.open_unix_connection(
                self.endpoint
            )
        else:
            host, port = self.endpoint
            self.reader, self.writer = await asyncio.open_connection(
                host, port
            )

    def _disconnect(self) -> None:
        if self.writer is not None:
            transport = self.writer.transport
            if transport is not None:
                transport.abort()
        self.reader = self.writer = None

    async def _await_ticket(
        self, rid: str, timeout: float
    ) -> AdmissionTicket:
        assert self.reader is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(f"no response for {rid}")
            payload = await read_frame(
                self.reader, idle_timeout=remaining, read_timeout=remaining,
            )
            if payload is None:
                raise ConnectionResetError("gateway closed the connection")
            if payload.get("kind") != "ticket":
                continue  # pongs / error frames are not our ticket
            ticket = parse_ticket(payload)
            if ticket.request_id == rid:
                return ticket
            # a stale response to a proxy-duplicated earlier frame
            self.report.stray_responses += 1

    async def submit(self, request: EventRequest) -> AdmissionTicket | None:
        """At-least-once delivery of one request; None = gave up."""
        for attempt in range(1, self.config.max_attempts + 1):
            if attempt > 1:
                self.report.retries += 1
                await asyncio.sleep(self.config.retry_backoff_s * attempt)
            try:
                await self._connect()
                assert self.writer is not None
                await write_frame(self.writer, submit_payload(request))
                ticket = await self._await_ticket(
                    request.request_id, self.config.response_timeout_s
                )
            except (ConnectionError, OSError, TimeoutError, FrameError,
                    asyncio.IncompleteReadError):
                self._disconnect()
                continue
            if ticket.duplicate:
                self.report.duplicates_seen += 1
            if ticket.decision.value == "reject_busy":
                self.report.busy_retries += 1
                continue  # retryable backpressure: same id, try again
            return ticket
        return None


# -- the drill itself ----------------------------------------------------


async def _run_soak_async(
    config: GatewaySoakConfig, workdir: Path
) -> GatewaySoakReport:
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal_path = workdir / "gateway-journal.jsonl"
    checkpoint_path = workdir / "gateway-checkpoint.jsonl"
    socket_path = str(workdir / "gateway.sock")
    service_config = default_gateway_service_config(
        config.capacity, config.period
    )
    gateway_config = GatewayConfig(
        unix_path=socket_path,
        max_in_flight=config.max_in_flight,
        idle_timeout_s=30.0,
        read_timeout_s=5.0,
    )
    report = GatewaySoakReport(config=config)
    started = time.monotonic()

    holder: dict[str, AdmissionGateway] = {}
    holder["gateway"] = await AdmissionGateway(
        gateway_config, service_config,
        seed=config.seed,
        journal_path=journal_path, checkpoint_path=checkpoint_path,
    ).start()

    proxy: NetworkFaultProxy | None = None
    endpoint: tuple[str, int] | str = socket_path
    if config.proxy is not None and config.proxy.active:
        proxy = await NetworkFaultProxy(
            config.proxy, socket_path,
            listen_unix_path=str(workdir / "proxy.sock"),
            seed=config.seed,
        ).start()
        endpoint = proxy.address  # type: ignore[assignment]

    schedule = soak_requests(config)
    per_source: dict[int, list[tuple[float, EventRequest]]] = {}
    for nominal, request in schedule:
        idx = int(request.source.split("-")[1])
        per_source.setdefault(idx, []).append((nominal, request))

    pace_origin = time.monotonic()

    async def pace_to(nominal: float) -> None:
        target = pace_origin + nominal * config.scale
        delay = target - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)

    async def client_task(entries: list[tuple[float, EventRequest]]) -> None:
        client = _SoakClient(endpoint, config, report)
        try:
            for nominal, request in entries:
                await pace_to(nominal)
                report.submitted += 1
                ticket = await client.submit(request)
                if ticket is None:
                    report.lost += 1
                else:
                    report.delivered += 1
                    value = ticket.decision.value
                    report.decisions[value] = (
                        report.decisions.get(value, 0) + 1
                    )
        finally:
            client._disconnect()

    async def kill_task() -> None:
        assert config.kill_at is not None
        await pace_to(config.kill_at)
        holder["gateway"].kill()
        report.killed = True
        await asyncio.sleep(config.restart_delay_s)
        restored = await AdmissionGateway.restore(
            gateway_config, service_config,
            journal_path=journal_path, checkpoint_path=checkpoint_path,
            scale=config.scale, seed=config.seed,
            predecessor=holder["gateway"],
        )
        holder["gateway"] = restored
        report.restored = True
        report.replayed = restored.replayed

    tasks = [
        asyncio.create_task(client_task(entries))
        for _idx, entries in sorted(per_source.items())
    ]
    if config.kill_at is not None:
        tasks.append(asyncio.create_task(kill_task()))
    await asyncio.gather(*tasks)

    gateway = holder["gateway"]
    gateway.request_shutdown()
    assert gateway.terminated is not None
    await gateway.terminated.wait()
    if proxy is not None:
        await proxy.close()
        report.proxy = proxy.metrics()

    verdict, merged = gateway.finish()
    report.violations = list(verdict.violations)
    journal_ops = load_journal(journal_path)
    report.fates = _wall_fates(journal_ops, merged)
    report.gateway_metrics = gateway.metrics()
    report.wall_seconds = time.monotonic() - started

    control, _service = await _control_replay_async(
        journal_ops, service_config, config.seed
    )
    report.control_fates = control
    ids = sorted(set(report.fates) | set(control))
    for rid in ids:
        wall = report.fates.get(rid, ("<missing>", None))
        ctrl = control.get(rid, ("<missing>", None))
        if wall != ctrl:
            report.fate_mismatches.append((rid, wall, ctrl))
    return report


def run_gateway_soak(
    config: GatewaySoakConfig, workdir: Path | str
) -> GatewaySoakReport:
    """Run one seeded wall-clock soak drill end to end.

    Sets up journal/checkpoint/sockets under ``workdir``, drives the
    schedule (through the fault proxy and across a kill/restore when
    configured), drains, verifies the merged timeline, and cross-checks
    every fate against the ``VirtualClock`` control replay.
    """
    return asyncio.run(_run_soak_async(config, Path(workdir)))
