"""Tests for the experiments runner CLI."""

from __future__ import annotations

import pytest

from repro.experiments.runner import main


class TestRunnerTargets:
    def test_single_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2." in out
        assert "Table 3." not in out

    def test_compare_mode(self, capsys):
        assert main(["table4", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "5.30" in out  # the paper's Table 4 (1,0) AART

    def test_checks_target(self, capsys):
        assert main(["checks"]) == 0
        out = capsys.readouterr().out
        assert "Shape checks" in out
        assert "FAIL" not in out

    def test_figures_target_with_svg(self, tmp_path, capsys):
        assert main(["figures", "--svg-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 4" in out
        svgs = sorted(p.name for p in tmp_path.glob("*.svg"))
        assert svgs == [
            "figure2_scenario1.svg",
            "figure3_scenario2.svg",
            "figure4_scenario3.svg",
        ]

    def test_report_target_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--output", str(out_file)]) == 0
        assert "report written" in capsys.readouterr().out
        assert "Shape checks" in out_file.read_text()

    def test_no_overhead_flag(self, capsys):
        assert main(["table3", "--no-overhead"]) == 0
        out = capsys.readouterr().out
        # without overheads the execution arm never interrupts
        for line in out.splitlines():
            if line.startswith("AIR"):
                assert set(line.split()[1:]) == {"0.00"}

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])


class TestBatchTarget:
    def test_batch_sweep_with_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "shards.jsonl"
        argv = ["batch", "--sweep-systems", "6", "--shard-size", "4",
                "--checkpoint", str(checkpoint)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ps_sim:" in out and "ds_sim:" in out
        assert "36 system(s)" in out
        assert "systems/sec" in out
        assert checkpoint.exists()
        # a second invocation resumes every shard from the checkpoint
        assert main(argv) == 0
        assert "(12 resumed)" in capsys.readouterr().out

    def test_table_target_accepts_batch_flag(self, capsys):
        assert main(["table2", "--batch", "auto"]) == 0
        assert "Table 2." in capsys.readouterr().out

    def test_bad_sweep_arguments_rejected(self, capsys):
        assert main(["batch", "--sweep-systems", "0"]) == 1
        assert main(["batch", "--shard-size", "0"]) == 1


class TestMulticoreTarget:
    ARGS = ["multicore", "--cores", "2", "--systems", "2",
            "--utilization", "1.2"]

    def test_all_modes(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        for mode in ("part-ff", "part-wf", "part-bf", "global-fp",
                     "global-edf"):
            assert f"=== {mode}" in out
        assert "migrations" in out

    def test_single_placement_arm(self, capsys):
        assert main([*self.ARGS, "--placement", "wf"]) == 0
        out = capsys.readouterr().out
        assert "=== part-wf" in out
        assert "global" not in out

    def test_single_global_arm_with_workers(self, capsys):
        assert main([*self.ARGS, "--global-sched", "edf",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "=== global-edf" in out
        assert "part-" not in out

    def test_svg_output(self, tmp_path, capsys):
        assert main([*self.ARGS, "--global-sched", "fp",
                     "--svg-dir", str(tmp_path)]) == 0
        svg = tmp_path / "multicore_global-fp.svg"
        assert svg.exists()
        assert "core 1" in svg.read_text(encoding="utf-8")

    def test_bad_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--workers", "0"])


class TestFabricTarget:
    ARGS = ["fabric", "--storm-rate", "0.4", "--storm-horizon", "50"]

    def test_kill_drill_reports_clean(self, tmp_path, capsys):
        assert main([*self.ARGS, "--fabric-kill", "20:1:corrupt",
                     "--fabric-checkpoint-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert '"declared_down": 1' in out
        assert '"restored": 1' in out
        assert "fabric storm clean" in out
        assert (tmp_path / "shard-1.jsonl").exists()

    def test_kills_default_to_a_temporary_checkpoint_dir(self, capsys):
        assert main([*self.ARGS, "--fabric-kill", "20:0"]) == 0
        assert "fabric storm clean" in capsys.readouterr().out

    def test_bad_kill_spec_rejected(self, capsys):
        assert main([*self.ARGS, "--fabric-kill", "bogus"]) == 1
        err = capsys.readouterr().err
        assert "TIME:SHARD" in err
        assert main([*self.ARGS, "--fabric-kill", "20:9"]) == 1

    def test_bad_shard_count_rejected(self, capsys):
        assert main(["fabric", "--fabric-shards", "0"]) == 1


class TestGatewayTarget:
    ARGS = ["gateway", "--soak-requests", "40", "--soak-rate", "4"]

    def test_soak_drill_reports_clean(self, tmp_path, capsys):
        assert main([*self.ARGS, "--soak-dir", str(tmp_path),
                     "--proxy-faults", "reset=0.02,dup=0.04",
                     "--kill-at", "5"]) == 0
        captured = capsys.readouterr()
        assert '"clean": true' in captured.out
        assert "gateway soak clean" in captured.out
        assert "kill + restore" in captured.out
        assert (tmp_path / "gateway-journal.jsonl").exists()

    def test_soak_without_faults_defaults_to_tmpdir(self, capsys):
        assert main([*self.ARGS]) == 0
        assert "gateway soak clean" in capsys.readouterr().out

    def test_bad_proxy_fault_spec_rejected(self, capsys):
        assert main([*self.ARGS, "--proxy-faults", "bogus=1"]) == 1
        assert "--proxy-faults" in capsys.readouterr().err

    def test_bad_listen_spec_rejected(self, capsys):
        assert main(["gateway", "--listen", "nonsense"]) == 1
        assert "--listen" in capsys.readouterr().err


class _FakeSoakReport:
    """A violating soak report, for the fail-fast plumbing."""

    def __init__(self):
        self.violations = ["[fake] t=1 the stamps ran backwards"]
        self.fate_mismatches = [("r-1", ("admit", None), ("shed", None))]
        self.lost = 0
        self.delivered = 1
        self.retries = 0
        self.killed = False
        self.replayed = 0
        self.requests_per_sec = 1.0

    def summary(self):
        return {"violations": 1, "fate_mismatches": 1}


class _FakeStormReport:
    """A violating storm report, for exercising the fail-fast plumbing
    without having to construct a real invariant-breaking workload."""

    def __init__(self):
        self.violations = ["[fake] t=1 the sky fell"]
        self.double_admitted = []
        self.hard_misses = 0
        self.killed = False
        self.kills = 0
        self.declared_down = 0
        self.restored = 0

    def to_dict(self):
        return {"violations": self.violations}


class TestFailFast:
    """``--fail-fast`` means exit 2 with a picklable RunExhausted on
    every target, the single-run storm targets included."""

    def test_service_violations_exit_2(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.service.run_service_storm",
                            lambda *a, **kw: _FakeStormReport())
        assert main(["service", "--fail-fast"]) == 2
        err = capsys.readouterr().err
        assert "fail-fast" in err and "service" in err

    def test_service_violations_without_flag_exit_1(self, monkeypatch,
                                                    capsys):
        monkeypatch.setattr("repro.service.run_service_storm",
                            lambda *a, **kw: _FakeStormReport())
        assert main(["service"]) == 1

    def test_fabric_violations_exit_2(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.fabric.run_fabric_storm",
                            lambda *a, **kw: _FakeStormReport())
        assert main(["fabric", "--fail-fast"]) == 2
        err = capsys.readouterr().err
        assert "fail-fast" in err and "fabric" in err

    def test_fabric_violations_without_flag_exit_1(self, monkeypatch,
                                                   capsys):
        monkeypatch.setattr("repro.fabric.run_fabric_storm",
                            lambda *a, **kw: _FakeStormReport())
        assert main(["fabric"]) == 1

    def test_gateway_violations_exit_2(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.gateway.run_gateway_soak",
                            lambda *a, **kw: _FakeSoakReport())
        assert main(["gateway", "--fail-fast"]) == 2
        err = capsys.readouterr().err
        assert "fail-fast" in err and "gateway" in err

    def test_gateway_violations_without_flag_exit_1(self, monkeypatch,
                                                    capsys):
        monkeypatch.setattr("repro.gateway.run_gateway_soak",
                            lambda *a, **kw: _FakeSoakReport())
        assert main(["gateway"]) == 1
        err = capsys.readouterr().err
        assert "fate divergence" in err

    def test_storm_exhausted_round_trips_through_pickle(self):
        import pickle

        from repro.experiments.runner import _storm_exhausted

        exc = pickle.loads(pickle.dumps(_storm_exhausted(
            "fabric", 7, "[fake] t=1 the sky fell"
        )))
        assert exc.record.arm == "fabric"
        assert exc.record.system_id == 7
        assert exc.record.status == "failed"
        assert "gave up after 1 attempt(s)" in str(exc)
