"""``Timed`` / ``Interruptible`` — RTSJ asynchronous transfer of control.

The paper's task servers enforce their capacity with exactly this
mechanism (Section 4): the handler body is an :class:`Interruptible`
executed through :meth:`Timed.do_interruptible`; if the budget elapses
before ``run()`` completes, an :class:`AsynchronouslyInterruptedException`
is delivered at the handler's current yield point and
``interrupt_action()`` runs instead of the remainder.

Budget expiry is *wall-clock* (the RTSJ ``Timed`` is driven by a timer),
so virtual time spent preempted — e.g. by the event-firing timer ISRs the
paper blames for its interrupted-aperiodics ratio — counts against the
budget even though it consumes no handler CPU.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator

from .instructions import Compute, Instruction
from .time_types import RelativeTime

__all__ = ["AsynchronouslyInterruptedException", "Interruptible", "Timed"]


class AsynchronouslyInterruptedException(Exception):
    """Delivered into an interruptible section whose time budget expired.

    ``owner`` identifies the :class:`Timed` whose deadline fired (the
    RTSJ gives each ATC an identity for exactly this reason): with
    nested timed sections, only the owner's section aborts — enclosing
    sections observe the inner failure and continue under their own
    budgets.  ``None`` means "unowned" and is treated as belonging to
    whichever section catches it first.
    """

    def __init__(self, owner: object | None = None) -> None:
        super().__init__()
        self.owner = owner


class Interruptible(ABC):
    """A section of code that may be abandoned part-way through.

    ``run`` is a *generator* (it yields VM instructions); ``interrupt_action``
    is a plain callback invoked — in virtual zero time — when the section
    is abandoned.
    """

    @abstractmethod
    def run(self, timed: "Timed") -> Generator[Instruction, Any, Any]:
        """The interruptible logic (a generator of VM instructions)."""

    def interrupt_action(
        self, exc: AsynchronouslyInterruptedException
    ) -> None:
        """Called when ``run`` was interrupted before completing."""


class Timed:
    """Execute an :class:`Interruptible` under a wall-clock time budget."""

    def __init__(self, budget: RelativeTime, *, now_ns: int) -> None:
        if budget.total_nanos <= 0:
            raise ValueError("Timed budget must be positive")
        self.budget = budget
        self._deadline_ns = now_ns + budget.total_nanos

    @property
    def deadline_ns(self) -> int:
        """Absolute virtual time at which the section will be interrupted."""
        return self._deadline_ns

    def do_interruptible(
        self, interruptible: Interruptible
    ) -> Generator[Instruction, Any, bool]:
        """Generator helper: ``ok = yield from timed.do_interruptible(i)``.

        Returns ``True`` when ``run`` completed within the budget and
        ``False`` when it was interrupted (after ``interrupt_action`` ran).
        """
        section = interruptible.run(self)
        try:
            yield from self._bounded(section)
        except AsynchronouslyInterruptedException as exc:
            if exc.owner is not None and exc.owner is not self:
                # an enclosing Timed's interrupt: not ours to absorb —
                # keep unwinding so its own wrapper handles it
                raise
            interruptible.interrupt_action(exc)
            return False
        return True

    def _bounded(
        self, section: Generator[Instruction, Any, Any]
    ) -> Generator[Instruction, Any, Any]:
        """Re-yield the section's instructions with the budget deadline
        attached to every compute slice.

        Interrupt delivery honours ATC identity: an exception owned by a
        *nested* Timed is forwarded into the section (where that inner
        wrapper consumes it) and this section then continues; an
        exception owned by *this* Timed (or unowned) must terminate the
        section — a section that swallows it and keeps yielding is
        abandoned.
        """
        try:
            instr = next(section)
        except StopIteration as stop:
            return stop.value
        while True:
            if isinstance(instr, Compute):
                instr = instr.with_deadline(self._deadline_ns, self)
            try:
                sent = yield instr
            except AsynchronouslyInterruptedException as exc:
                mine = exc.owner is None or exc.owner is self
                try:
                    instr = section.throw(exc)
                except StopIteration as stop:
                    if mine:
                        # our budget expired; the section may not absorb
                        # the ATC even by finishing early
                        raise exc
                    return stop.value
                except AsynchronouslyInterruptedException:
                    # not consumed below: propagate to our caller
                    raise
                else:
                    if mine:
                        # the section swallowed our ATC and kept yielding
                        section.close()
                        raise
                    # an inner Timed consumed its own interrupt and the
                    # section continued: keep serving it
                    continue
            try:
                instr = section.send(sent)
            except StopIteration as stop:
                return stop.value
