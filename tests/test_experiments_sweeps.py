"""Tests for the sweep utilities and the getInterference adapter."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DeferrableServerInterference,
    PeriodicInterference,
    TaskServerInterference,
    response_time_with_interference,
)
from repro.core import (
    DeferrableTaskServer,
    PollingTaskServer,
    TaskServerParameters,
)
from repro.experiments import sweep_server_configuration
from repro.rtsj import OverheadModel, RelativeTime, RTSJVirtualMachine
from repro.workload import GenerationParameters

BASE = GenerationParameters(
    task_density=1.0, average_cost=1.0, std_deviation=0.0,
    server_capacity=4.0, server_period=6.0, nb_generation=3, seed=5,
)


class TestSweep:
    def test_holds_rate_and_window_fixed(self):
        points = sweep_server_configuration(
            BASE, [(2.0, 3.0), (4.0, 6.0)], "polling"
        )
        assert [p.utilization for p in points] == pytest.approx([2 / 3, 2 / 3])
        # identical arrival rate: expected event counts agree (same rate
        # and same window; streams differ because the params differ)
        assert len(points) == 2

    def test_empty_configurations_rejected(self):
        with pytest.raises(ValueError):
            sweep_server_configuration(BASE, [], "polling")

    def test_sim_latency_improves_with_granularity(self):
        points = sweep_server_configuration(
            BASE, [(1.0, 1.5), (8.0, 12.0)], "polling"
        )
        assert points[0].sim.aart < points[1].sim.aart


class TestTaskServerInterferenceAdapter:
    def _servers(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        ps = PollingTaskServer(
            TaskServerParameters(
                RelativeTime(3, 0), RelativeTime(6, 0), priority=30
            )
        )
        ds = DeferrableTaskServer(
            TaskServerParameters(
                RelativeTime(3, 0), RelativeTime(6, 0), priority=30
            )
        )
        ps.attach(vm, 60_000_000)
        vm2 = RTSJVirtualMachine(overhead=OverheadModel.zero())
        ds.attach(vm2, 60_000_000)
        return ps, ds

    def test_adapter_matches_closed_forms(self):
        ps, ds = self._servers()
        ps_adapter = TaskServerInterference(ps)
        ds_adapter = TaskServerInterference(ds)
        ps_closed = PeriodicInterference(3.0, 6.0, priority=30)
        ds_closed = DeferrableServerInterference(3.0, 6.0, priority=30)
        for w in (0.5, 3.0, 6.0, 6.5, 13.0, 25.0):
            assert ps_adapter.interference(w) == pytest.approx(
                ps_closed.interference(w)
            ), w
            assert ds_adapter.interference(w) == pytest.approx(
                ds_closed.interference(w)
            ), w

    def test_adapter_drives_the_generic_rta(self):
        ps, ds = self._servers()
        # the Table 1 verdicts, reproduced through the servers' own
        # getInterference() instead of hand-built sources
        rt_under_ps = response_time_with_interference(
            cost=1.0, deadline=6.0, priority=15,
            sources=[
                TaskServerInterference(ps),
                PeriodicInterference(2.0, 6.0, priority=20),
            ],
        )
        assert rt_under_ps == pytest.approx(6.0)
        rt_under_ds = response_time_with_interference(
            cost=1.0, deadline=6.0, priority=15,
            sources=[
                TaskServerInterference(ds),
                PeriodicInterference(2.0, 6.0, priority=20),
            ],
        )
        assert rt_under_ds is None  # the double hit breaks t2
