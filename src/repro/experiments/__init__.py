"""Experiment harness: every table and figure of the paper's evaluation."""

from .campaign import (
    ARMS,
    CampaignResult,
    SystemResult,
    execute_system,
    run_campaign,
    simulate_system,
)
from .scenarios import (
    SCENARIOS,
    TABLE1_SERVER,
    TABLE1_TASKS,
    ScenarioOutcome,
    ScenarioSpec,
    run_scenario_execution,
    run_scenario_ideal_simulation,
)
from .tables import (
    PAPER_TABLES,
    TABLE_ARMS,
    format_comparison,
    format_table,
    shape_checks,
)
from .report import generate_report, markdown_report
from .sweeps import SweepPoint, sweep_server_configuration
from .figures import (
    EXPECTED_TIMELINES,
    figure_text,
    render_all_figures,
    render_figure,
    timeline_of,
)

__all__ = [
    "ARMS",
    "CampaignResult",
    "SystemResult",
    "execute_system",
    "run_campaign",
    "simulate_system",
    "SCENARIOS",
    "TABLE1_SERVER",
    "TABLE1_TASKS",
    "ScenarioOutcome",
    "ScenarioSpec",
    "run_scenario_execution",
    "run_scenario_ideal_simulation",
    "PAPER_TABLES",
    "TABLE_ARMS",
    "format_comparison",
    "format_table",
    "shape_checks",
    "EXPECTED_TIMELINES",
    "figure_text",
    "render_all_figures",
    "render_figure",
    "timeline_of",
    "generate_report",
    "markdown_report",
    "SweepPoint",
    "sweep_server_configuration",
]
