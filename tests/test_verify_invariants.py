"""Unit tests for the schedule sanitizer (`repro.verify.invariants`)."""

from __future__ import annotations

import pytest

from repro.sim import FixedPriorityPolicy, Simulation
from repro.sim.gantt import svg_gantt, svg_gantt_cores
from repro.sim.trace import (
    ExecutionTrace,
    Segment,
    TraceEvent,
    TraceEventKind,
)
from repro.verify import (
    BreakerMonitor,
    EDFOrderMonitor,
    FixedPriorityMonitor,
    MonitoredTrace,
    MonotoneClockMonitor,
    NonOverlapMonitor,
    ReleaseAccountingMonitor,
    ServerCapacityMonitor,
    monitors_for_system,
    run_monitors,
)
from repro.verify.mutations import _selftest_system
from repro.workload.spec import PeriodicTaskSpec


def make_trace(segments=(), events=()):
    """A trace assembled directly, bypassing the kernels (and their own
    asserts), so illegal schedules can be fed to the monitors."""
    trace = ExecutionTrace()
    trace.segments = [Segment(*s) for s in segments]
    trace.events = [TraceEvent(*e) for e in events]
    return trace


R, C = TraceEventKind.RELEASE, TraceEventKind.COMPLETION


class TestNonOverlap:
    def test_clean(self):
        trace = make_trace([(0, 2, "a", "a#0", 0), (2, 3, "b", "b#0", 0)])
        assert run_monitors(trace, [NonOverlapMonitor()]).ok

    def test_flags_same_core_overlap(self):
        trace = make_trace([(0, 2, "a", "a#0", 0), (1, 3, "b", "b#0", 0)])
        report = run_monitors(trace, [NonOverlapMonitor()])
        assert report.kinds() == {"overlap"}

    def test_parallel_cores_are_legal(self):
        trace = make_trace([(0, 2, "a", "a#0", 0), (0, 2, "b", "b#0", 1)])
        assert run_monitors(trace, [NonOverlapMonitor()]).ok


class TestMonotoneClock:
    def test_flags_time_regression(self):
        # the post-hoc replay re-sorts by time, so a regression is only
        # observable on the live feed
        trace = MonitoredTrace([MonotoneClockMonitor()])
        trace.add_event(5.0, R, "a#0")
        trace.add_event(1.0, C, "a#0")
        report = trace.finish_monitors(10.0)
        assert report.kinds() == {"clock-skew"}

    def test_equal_timestamps_are_legal(self):
        trace = make_trace(events=[(1.0, R, "a#0", ""), (1.0, R, "b#0", "")])
        assert run_monitors(trace, [MonotoneClockMonitor()]).ok


class TestOrderingMonitors:
    def test_fp_inversion_flagged(self):
        trace = make_trace(
            segments=[(0, 2, "lo", "lo#0", None), (2, 3, "hi", "hi#0", None)],
            events=[(0, R, "hi#0", ""), (0, R, "lo#0", ""),
                    (2, C, "lo#0", ""), (3, C, "hi#0", "")],
        )
        report = run_monitors(
            trace, [FixedPriorityMonitor({"hi": 2, "lo": 1})], horizon=10.0
        )
        assert report.kinds() == {"fp-inversion"}

    def test_fp_legal_order_clean(self):
        trace = make_trace(
            segments=[(0, 1, "hi", "hi#0", None), (1, 3, "lo", "lo#0", None)],
            events=[(0, R, "hi#0", ""), (0, R, "lo#0", ""),
                    (1, C, "hi#0", ""), (3, C, "lo#0", "")],
        )
        assert run_monitors(
            trace, [FixedPriorityMonitor({"hi": 2, "lo": 1})], horizon=10.0
        ).ok

    def test_fp_core_scope_suppresses_cross_core(self):
        # partitioned: hi waits on core 1 while lo runs on core 0 — legal
        trace = make_trace(
            segments=[(0, 2, "lo", "lo#0", 0), (2, 3, "hi", "hi#0", 1)],
            events=[(0, R, "hi#0", ""), (0, R, "lo#0", ""),
                    (2, C, "lo#0", ""), (3, C, "hi#0", "")],
        )
        monitor = FixedPriorityMonitor(
            {"hi": 2, "lo": 1}, core_of={"hi": 1, "lo": 0}
        )
        assert run_monitors(trace, [monitor], horizon=10.0).ok

    def test_edf_inversion_flagged(self):
        trace = make_trace(
            segments=[(0, 2, "b", "b#0", None), (2, 3, "a", "a#0", None)],
            events=[(0, R, "a#0", ""), (0, R, "b#0", ""),
                    (2, C, "b#0", ""), (3, C, "a#0", "")],
        )
        report = run_monitors(
            trace, [EDFOrderMonitor({"a": 5.0, "b": 20.0})], horizon=10.0
        )
        assert report.kinds() == {"edf-inversion"}

    def test_edf_legal_order_clean(self):
        trace = make_trace(
            segments=[(0, 1, "a", "a#0", None), (1, 3, "b", "b#0", None)],
            events=[(0, R, "a#0", ""), (0, R, "b#0", ""),
                    (1, C, "a#0", ""), (3, C, "b#0", "")],
        )
        assert run_monitors(
            trace, [EDFOrderMonitor({"a": 5.0, "b": 20.0})], horizon=10.0
        ).ok


class TestServerCapacity:
    def monitor(self, **kwargs):
        defaults = dict(server="DS", capacity=1.0, period=5.0,
                        family="deferrable")
        defaults.update(kwargs)
        return ServerCapacityMonitor(**defaults)

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="family"):
            self.monitor(family="cosmic")

    def test_overdraw_flagged(self):
        trace = make_trace([(0, 2, "DS", "h0", None)])
        report = run_monitors(trace, [self.monitor()])
        assert "capacity-overdraw" in report.kinds()

    def test_over_replenish_flagged(self):
        trace = make_trace(
            events=[(5.0, TraceEventKind.REPLENISH, "DS", "capacity=2.5")]
        )
        report = run_monitors(trace, [self.monitor()])
        assert report.kinds() == {"over-replenish"}

    def test_off_boundary_replenish_flagged(self):
        trace = make_trace(
            events=[(3.3, TraceEventKind.REPLENISH, "DS", "capacity=1")]
        )
        report = run_monitors(trace, [self.monitor()])
        assert report.kinds() == {"replenish-off-boundary"}
        relaxed = self.monitor(check_boundary=False)
        assert run_monitors(trace, [relaxed]).ok

    def test_conserving_run_clean(self):
        trace = make_trace(
            segments=[(0, 1, "DS", "h0", None), (5, 6, "DS", "h1", None)],
            events=[(5.0, TraceEventKind.REPLENISH, "DS", "capacity=1")],
        )
        assert run_monitors(trace, [self.monitor()]).ok


class TestReleaseAccounting:
    def test_duplicate_terminal_flagged(self):
        trace = make_trace(
            segments=[(0, 1, "t", "t#0", None)],
            events=[(0, R, "t#0", ""), (1, C, "t#0", ""), (2, C, "t#0", "")],
        )
        report = run_monitors(trace, [ReleaseAccountingMonitor()])
        assert "duplicate-terminal" in report.kinds()

    def test_exec_after_terminal_flagged(self):
        trace = make_trace(
            segments=[(0, 1, "t", "t#0", None), (2, 3, "t", "t#0", None)],
            events=[(0, R, "t#0", ""), (1, C, "t#0", "")],
        )
        report = run_monitors(trace, [ReleaseAccountingMonitor()])
        assert "exec-after-terminal" in report.kinds()

    def test_demand_conservation(self):
        trace = make_trace(
            segments=[(0, 1, "t", "t#0", None)],
            events=[(0, R, "t#0", ""), (1, C, "t#0", "")],
        )
        under = run_monitors(
            trace, [ReleaseAccountingMonitor(costs={"t#0": 2.0})]
        )
        assert "under-service" in under.kinds()
        over = run_monitors(
            trace, [ReleaseAccountingMonitor(costs={"t#0": 0.5})]
        )
        assert "over-execution" in over.kinds()
        exact = run_monitors(
            trace, [ReleaseAccountingMonitor(costs={"t#0": 1.0})]
        )
        assert exact.ok

    def test_strict_serve_flags_dropped_release(self):
        trace = make_trace(events=[(0, R, "t#0", "")])
        lax = run_monitors(
            trace, [ReleaseAccountingMonitor(check_demand=False)]
        )
        assert lax.ok
        strict = run_monitors(
            trace,
            [ReleaseAccountingMonitor(check_demand=False, strict_serve=True)],
        )
        assert strict.kinds() == {"unserved-release"}


class TestBreakerMonitor:
    def test_close_without_open_flagged(self):
        trace = make_trace(
            events=[(1.0, TraceEventKind.BREAKER_CLOSE, "src", "")]
        )
        report = run_monitors(trace, [BreakerMonitor()])
        assert report.kinds() == {"breaker-close-without-open"}

    def test_open_then_close_is_legal(self):
        trace = make_trace(events=[
            (1.0, TraceEventKind.BREAKER_OPEN, "src", ""),
            (2.0, TraceEventKind.BREAKER_CLOSE, "src", ""),
        ])
        assert run_monitors(trace, [BreakerMonitor()]).ok


class TestMonitoredTrace:
    def test_violations_stamped_and_idempotent(self):
        trace = MonitoredTrace([BreakerMonitor()])
        trace.add_event(1.0, TraceEventKind.BREAKER_CLOSE, "src")
        first = trace.finish_monitors(10.0)
        assert not first.ok
        stamped = trace.events_of(TraceEventKind.VIOLATION)
        assert len(stamped) == 1
        assert stamped[0].subject == "src"
        # a second sweep returns the same report and stamps nothing new
        assert trace.finish_monitors(10.0) is first
        assert len(trace.events_of(TraceEventKind.VIOLATION)) == 1

    def test_engine_hook_rejects_trace_and_monitors(self):
        with pytest.raises(ValueError):
            Simulation(
                FixedPriorityPolicy(),
                trace=ExecutionTrace(),
                monitors=[NonOverlapMonitor()],
            )

    def test_clean_engine_run_verifies_ok(self):
        sim = Simulation(FixedPriorityPolicy(), monitors=[
            NonOverlapMonitor(),
            MonotoneClockMonitor(),
            FixedPriorityMonitor({"hi": 2, "lo": 1}),
        ])
        sim.add_periodic_task(
            PeriodicTaskSpec("hi", cost=1.0, period=5.0, priority=2)
        )
        sim.add_periodic_task(
            PeriodicTaskSpec("lo", cost=2.0, period=10.0, priority=1)
        )
        trace = sim.run(until=30.0)
        report = trace.finish_monitors(30.0)
        assert report.ok, report.summary()
        assert trace.events_of(TraceEventKind.VIOLATION) == []


class TestMonitorsForSystem:
    def test_standard_battery_composition(self):
        system = _selftest_system()
        monitors = monitors_for_system(system)
        names = {type(m).__name__ for m in monitors}
        assert {"NonOverlapMonitor", "MonotoneClockMonitor",
                "BreakerMonitor", "ReleaseAccountingMonitor",
                "FixedPriorityMonitor"} <= names

    def test_edf_policy_swaps_ordering_monitor(self):
        system = _selftest_system()
        monitors = monitors_for_system(system, policy="edf")
        names = {type(m).__name__ for m in monitors}
        assert "EDFOrderMonitor" in names
        assert "FixedPriorityMonitor" not in names

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            monitors_for_system(_selftest_system(), policy="lottery")


class TestGanttViolationMarkers:
    def violating_trace(self):
        trace = MonitoredTrace([BreakerMonitor()])
        trace.add_segment(0.0, 1.0, "a", "a#0", core=0)
        trace.add_event(0.5, TraceEventKind.BREAKER_CLOSE, "src")
        trace.finish_monitors(2.0)
        return trace

    def test_markers_rendered_on_both_renderers(self):
        trace = self.violating_trace()
        assert "✖" in svg_gantt(trace)
        cores = svg_gantt_cores(trace, n_cores=2)
        assert "✖" in cores
        assert "violation:" in cores

    def test_clean_traces_carry_no_marker(self):
        trace = ExecutionTrace()
        trace.add_segment(0.0, 1.0, "a", "a#0", core=0)
        assert "✖" not in svg_gantt(trace)
        assert "✖" not in svg_gantt_cores(trace, n_cores=2)
