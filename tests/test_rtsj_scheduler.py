"""Direct unit tests for the PriorityScheduler (ready queue + feasibility)."""

from __future__ import annotations

import pytest

from repro.rtsj import (
    MAX_RT_PRIORITY,
    MIN_RT_PRIORITY,
    PriorityParameters,
    PriorityScheduler,
    RealtimeThread,
)
from repro.rtsj.instructions import Compute


def thread(name, priority):
    t = RealtimeThread(lambda th: iter(()), PriorityParameters(priority),
                       name=name)
    # give it a dispatchable instruction without going through a VM
    t.set_resume_marker()
    return t


class TestReadyQueue:
    def test_pick_highest_priority(self):
        s = PriorityScheduler()
        lo, hi = thread("lo", 15), thread("hi", 30)
        s.make_ready(lo)
        s.make_ready(hi)
        assert s.pick() is hi

    def test_fifo_within_priority(self):
        s = PriorityScheduler()
        first, second = thread("first", 20), thread("second", 20)
        s.make_ready(first)
        s.make_ready(second)
        assert s.pick() is first

    def test_fifo_resets_on_requeue(self):
        s = PriorityScheduler()
        a, b = thread("a", 20), thread("b", 20)
        s.make_ready(a)
        s.make_ready(b)
        s.remove(a)
        s.make_ready(a)  # went to the back of its level
        assert s.pick() is b

    def test_make_ready_idempotent(self):
        s = PriorityScheduler()
        a = thread("a", 20)
        s.make_ready(a)
        s.make_ready(a)
        assert s.ready_threads == [a]

    def test_remove_absent_is_noop(self):
        s = PriorityScheduler()
        s.remove(thread("ghost", 20))

    def test_empty_pick(self):
        assert PriorityScheduler().pick() is None

    def test_eligibility_filter(self):
        s = PriorityScheduler()
        hi, lo = thread("hi", 30), thread("lo", 15)
        s.make_ready(hi)
        s.make_ready(lo)
        assert s.pick(lambda t: t is not hi) is lo
        assert s.pick(lambda t: False) is None

    def test_should_preempt_strictly_higher(self):
        s = PriorityScheduler()
        a, b, c = thread("a", 20), thread("b", 20), thread("c", 25)
        assert s.should_preempt(c, a)
        assert not s.should_preempt(b, a)
        assert not s.should_preempt(a, c)

    def test_priority_range_enforced_on_ready(self):
        s = PriorityScheduler()
        with pytest.raises(ValueError):
            s.make_ready(thread("low", MIN_RT_PRIORITY - 1))
        with pytest.raises(ValueError):
            s.make_ready(thread("high", MAX_RT_PRIORITY + 1))
        s.make_ready(thread("edge-lo", MIN_RT_PRIORITY))
        s.make_ready(thread("edge-hi", MAX_RT_PRIORITY))


class TestFeasibilitySet:
    def test_add_remove(self):
        s = PriorityScheduler()
        a = thread("a", 20)
        s.add_to_feasibility(a)
        s.add_to_feasibility(a)  # idempotent
        assert s.feasibility_set == [a]
        s.remove_from_feasibility(a)
        assert s.feasibility_set == []
        s.remove_from_feasibility(a)  # no-op

    def test_task_server_registers_itself(self):
        from repro.core import PollingTaskServer, TaskServerParameters
        from repro.rtsj import OverheadModel, RelativeTime, RTSJVirtualMachine

        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        server = PollingTaskServer(
            TaskServerParameters(
                RelativeTime(3, 0), RelativeTime(6, 0), priority=30
            )
        )
        server.attach(vm, 10_000_000)
        server.add_to_feasibility()
        assert server in vm.scheduler.feasibility_set
