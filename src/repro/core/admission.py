"""On-line admission control for aperiodic events (paper Sections 2 & 7).

The paper separates the off-line feasibility of the periodic tasks (and
the server) from the *on-line* feasibility of each aperiodic arrival: at
the arrival instant, with the server at the highest priority, the event's
response time can be computed and its execution "possibly cancelled" if
a deadline would be missed.  The constant-time variant relies on the
Section 7 bucket queue.

Two controllers are provided:

* :class:`BucketAdmissionController` — wraps a bucket-mode
  :class:`~repro.core.polling.PollingTaskServer`; O(1) per decision
  (equation (5));
* :class:`IdealPSAdmissionController` — the analytic test of
  equations (1)-(4) over an explicit backlog, for the standard policy.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass

from ..rtsj.time_types import RelativeTime
from ..rtsj.vm import NS_PER_UNIT
from .events import ServableAsyncEvent, ServableAsyncEventHandler
from .polling import PollingTaskServer
from .response_time import ideal_ps_response_time

__all__ = [
    "AdmissionDecision",
    "BucketAdmissionController",
    "BucketLedger",
    "BucketSlot",
    "IdealPSAdmissionController",
]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission test."""

    accepted: bool
    predicted_response_time: float
    relative_deadline: float

    @property
    def margin(self) -> float:
        """Slack between deadline and predicted response (negative when
        rejected)."""
        return self.relative_deadline - self.predicted_response_time


class BucketAdmissionController:
    """O(1) admission against a bucket-mode Polling task server."""

    def __init__(self, server: PollingTaskServer) -> None:
        if server.queue_kind != "bucket":
            raise ValueError(
                "admission control requires a bucket-queue PollingTaskServer"
            )
        self.server = server
        self.decisions: list[AdmissionDecision] = []

    def test(self, cost: RelativeTime,
             relative_deadline: RelativeTime) -> AdmissionDecision:
        """Would an event of ``cost`` fired *now* meet the deadline?"""
        predicted_ns = self.server.predict_response_time_ns(cost.total_nanos)
        decision = AdmissionDecision(
            accepted=predicted_ns <= relative_deadline.total_nanos,
            predicted_response_time=predicted_ns / NS_PER_UNIT,
            relative_deadline=relative_deadline.total_nanos / NS_PER_UNIT,
        )
        self.decisions.append(decision)
        return decision

    def fire_if_admitted(
        self,
        event: ServableAsyncEvent,
        handler: ServableAsyncEventHandler,
        relative_deadline: RelativeTime,
    ) -> AdmissionDecision:
        """Admission-gated firing: fire ``event`` only when ``handler``'s
        predicted response time meets the deadline."""
        decision = self.test(handler.cost, relative_deadline)
        if decision.accepted:
            event.fire()
        return decision

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of tested events admitted so far."""
        if not self.decisions:
            return 1.0
        return sum(d.accepted for d in self.decisions) / len(self.decisions)


@dataclass(frozen=True)
class BucketSlot:
    """Where one admitted event landed in the Section 7 bucket queue.

    ``instance`` is the server instance (bucket) index serving the event,
    ``before`` the cumulative cost claimed ahead of it inside that bucket
    and ``finish`` the predicted absolute completion instant.
    """

    instance: int
    before: float
    cost: float
    finish: float


class BucketLedger:
    """Pure-arithmetic Section 7 bucket queue for *online* admission.

    The VM-attached :class:`BucketAdmissionController` answers equation
    (5) against a live ``PollingTaskServer``; this ledger answers the
    same question with nothing but the server parameters and a running
    tail — the state an admission *service* keeps between requests.
    Admission and completion are O(1); a schedule repair rebuilds the
    tail from a caller-supplied backlog (O(n) in backlog size, not in
    elapsed time — no re-simulation from t=0).

    The model is the paper's worst-case polling shape: an instance ``k``
    opens at ``start + k*period`` and serves its bucket contiguously from
    that instant (the server is required to sit at the highest priority),
    so an event placed at (instance, before) finishes at
    ``start + k*period + before + cost``.  Events admitted mid-instance
    join the *next* instance — the non-resumable polling pessimism.
    """

    def __init__(self, capacity: float, period: float,
                 start: float = 0.0) -> None:
        if capacity <= 0 or period <= 0 or capacity > period:
            raise ValueError("need 0 < capacity <= period")
        self.capacity = capacity
        self.period = period
        self.start = start
        self._tail_instance = 0
        self._tail_fill = 0.0
        #: total declared cost admitted and not yet completed/shed
        self.backlog_demand = 0.0
        self.backlog_count = 0

    def _first_instance_at(self, now: float) -> int:
        """The earliest instance that can serve an arrival at ``now``."""
        if now <= self.start:
            return 0
        return int(math.ceil((now - self.start) / self.period - 1e-12))

    def instance_start(self, instance: int) -> float:
        return self.start + instance * self.period

    def peek(self, now: float, cost: float) -> BucketSlot:
        """The slot an event of ``cost`` would get *now*, without
        mutating the ledger; O(1)."""
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")
        if cost > self.capacity:
            raise ValueError("cost exceeds the server capacity")
        instance, fill = self._tail_instance, self._tail_fill
        floor = self._first_instance_at(now)
        if instance < floor:
            instance, fill = floor, 0.0
        if fill + cost > self.capacity + 1e-12:
            instance, fill = instance + 1, 0.0
        return BucketSlot(
            instance=instance, before=fill, cost=cost,
            finish=self.instance_start(instance) + fill + cost,
        )

    def place(self, slot: BucketSlot) -> None:
        """Commit a slot previously returned by :meth:`peek`; O(1)."""
        self._tail_instance = slot.instance
        self._tail_fill = slot.before + slot.cost
        self.backlog_demand += slot.cost
        self.backlog_count += 1

    def admit(self, now: float, cost: float) -> BucketSlot:
        """Peek-and-place in one step; O(1)."""
        slot = self.peek(now, cost)
        self.place(slot)
        return slot

    def release(self, cost: float) -> None:
        """An admitted event left the backlog (served or shed); O(1).

        While work is still outstanding the tail placement is left
        alone — capacity already claimed in past or current buckets
        stays claimed, the conservative reading of equation (5).  Once
        the backlog empties there is no outstanding claim left to
        protect, so the tail resets; otherwise a long-running service
        would push every future prediction monotonically later (the
        floor clamp in :meth:`peek` keeps the reset sound).
        """
        self.backlog_demand = max(0.0, self.backlog_demand - cost)
        self.backlog_count = max(0, self.backlog_count - 1)
        if self.backlog_count == 0:
            self._tail_instance = 0
            self._tail_fill = 0.0
            self.backlog_demand = 0.0

    def rebuild(self, now: float,
                backlog: list[tuple[str, float]]) -> dict[str, BucketSlot]:
        """Re-place ``backlog`` — ``(key, cost)`` pairs in the caller's
        desired service order — from scratch starting at ``now``.

        This is the schedule-repair primitive: the tail is reset to the
        first instance that can still serve, every surviving event is
        re-bucketed in order and the new slots are returned keyed by the
        caller's keys.  O(len(backlog)).
        """
        self._tail_instance = self._first_instance_at(now)
        self._tail_fill = 0.0
        self.backlog_demand = 0.0
        self.backlog_count = 0
        return {key: self.admit(now, cost) for key, cost in backlog}

    def state(self) -> dict:
        """JSON-ready snapshot of the ledger (checkpoint/hash input)."""
        return {
            "capacity": self.capacity,
            "period": self.period,
            "start": self.start,
            "tail_instance": self._tail_instance,
            "tail_fill": round(self._tail_fill, 9),
            "backlog_demand": round(self.backlog_demand, 9),
            "backlog_count": self.backlog_count,
        }


class IdealPSAdmissionController:
    """Analytic admission for the standard (resumable) Polling Server.

    Maintains an explicit deadline-ordered backlog of admitted events;
    suited to simulator-side studies and to validating the equations
    against :class:`~repro.sim.servers.polling.IdealPollingServer` runs.
    """

    def __init__(self, capacity: float, period: float,
                 start: float = 0.0) -> None:
        if capacity <= 0 or period <= 0 or capacity > period:
            raise ValueError("need 0 < capacity <= period")
        self.capacity = capacity
        self.period = period
        self.start = start
        #: admitted backlog as (cost, absolute_deadline) pairs
        self.backlog: list[tuple[float, float]] = []
        self.decisions: list[AdmissionDecision] = []

    def server_capacity_at(self, t: float, consumed_in_instance: float) -> float:
        """Remaining capacity ``cs(t)`` given how much of the current
        instance's budget has been consumed."""
        if consumed_in_instance < 0 or consumed_in_instance > self.capacity:
            raise ValueError("consumed_in_instance out of range")
        return self.capacity - consumed_in_instance

    def test(self, now: float, cost: float, relative_deadline: float,
             cs_t: float) -> AdmissionDecision:
        """Admission test at time ``now``; admitted events join the
        backlog (their demand counts against later arrivals)."""
        deadline = now + relative_deadline
        predicted = ideal_ps_response_time(
            release=now,
            pending=self.backlog,
            cost=cost,
            deadline=deadline,
            cs_t=cs_t,
            capacity=self.capacity,
            period=self.period,
            start=self.start,
        )
        decision = AdmissionDecision(
            accepted=predicted <= relative_deadline,
            predicted_response_time=predicted,
            relative_deadline=relative_deadline,
        )
        self.decisions.append(decision)
        if decision.accepted:
            insort(self.backlog, (cost, deadline), key=lambda cd: cd[1])
        return decision

    def complete(self, cost: float, deadline: float) -> bool:
        """An admitted event finished (or was shed): remove its backlog
        entry so its demand no longer delays newcomers.  Returns whether
        an entry was actually removed."""
        try:
            self.backlog.remove((cost, deadline))
        except ValueError:
            return False
        return True

    def expire(self, now: float) -> None:
        """Drop backlog entries whose deadline has passed (their demand
        no longer delays newcomers)."""
        self.backlog = [(c, d) for c, d in self.backlog if d > now]
