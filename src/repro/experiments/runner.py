"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner table3     # one table
    python -m repro.experiments.runner figures    # scenario diagrams
    python -m repro.experiments.runner checks     # shape assertions
    repro-experiments --svg-dir out/ figures      # also write SVGs
    repro-experiments --workers 4 all             # parallel campaign
    repro-experiments multicore --cores 4 --placement wf
    repro-experiments multicore --cores 2 --global-sched edf
    repro-experiments overload --queue-bound 6 --shed-policy drop-oldest
    repro-experiments fabric --fabric-shards 3 --fabric-kill 30:1:corrupt

Exit status is non-zero if any shape check fails, 2 when ``--fail-fast``
stops the sweep on the first run that exhausts its retry budget.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..overload import SHED_POLICIES as _SHED_POLICIES
from ..rtsj import OverheadModel
from .campaign import RunExhausted, RunPolicy, run_campaign
from .figures import render_all_figures
from .tables import TABLE_ARMS, format_comparison, format_table, shape_checks

__all__ = ["main"]

_TARGETS = ("all", "table2", "table3", "table4", "table5", "figures",
            "checks", "report", "multicore", "overload", "verify",
            "service", "batch", "fabric", "gateway")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "target", nargs="?", default="all", choices=_TARGETS,
        help="what to regenerate (default: all)",
    )
    parser.add_argument(
        "--svg-dir", type=Path, default=None,
        help="also write the figures as SVG files into this directory",
    )
    parser.add_argument(
        "--no-overhead", action="store_true",
        help="run the execution arms with the overhead model disabled "
             "(the ablation of DESIGN.md)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="print paper-vs-measured instead of the plain table",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="for the 'report' target: write the markdown there "
             "(default: print to stdout)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock limit per campaign run; a hung run is recorded "
             "as a failure instead of wedging the sweep",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a crashed/hung run up to N times with a bumped "
             "generator seed",
    )
    parser.add_argument(
        "--checkpoint", type=Path, default=None, metavar="PATH",
        help="JSONL checkpoint of per-run results; an existing file is "
             "resumed, completed runs are skipped",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan campaign runs out over N worker processes "
             "(results are bit-identical to a sequential sweep)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort the whole sweep (exit status 2) as soon as one run "
             "exhausts its retry budget instead of recording it and "
             "carrying on",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="attach the runtime-verification monitors to every campaign "
             "run; a run with violations is recorded as failed",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the target under cProfile and print the hottest "
             "kernel frames (sorted by total time) afterwards",
    )
    parser.add_argument(
        "--cycle", choices=("off", "detect", "fastforward"), default="off",
        help="hyperperiod cycle handling for the simulation arms: "
             "'detect' marks the first repeated kernel state (CYCLE trace "
             "event), 'fastforward' additionally skips ahead whole "
             "release-pattern windows with exact metric extrapolation; "
             "ineligible runs stand down loudly and run in full "
             "(default: off — byte-identical traces)",
    )
    parser.add_argument(
        "--horizon-multiplier", type=int, default=1, metavar="N",
        dest="horizon_multiplier",
        help="stretch every generated system's observation horizon N-fold "
             "(long-horizon runs are where --cycle fastforward pays off; "
             "default: 1)",
    )
    verify_group = parser.add_argument_group("verify target")
    verify_group.add_argument(
        "--chaos-systems", type=int, default=50, metavar="N",
        help="number of seeded chaos scenarios (default: 50)",
    )
    verify_group.add_argument(
        "--chaos-seed", type=int, default=20260806, metavar="SEED",
        help="master seed of the chaos campaign (default: 20260806)",
    )
    verify_group.add_argument(
        "--no-multicore", action="store_true",
        help="drop the multicore chaos flavors (smaller smoke budget)",
    )
    verify_group.add_argument(
        "--no-shrink", action="store_true",
        help="keep failing systems as-is instead of shrinking them to "
             "minimal witnesses",
    )
    verify_group.add_argument(
        "--mutations", action="store_true",
        help="also run the mutation self-test proving every monitor "
             "family non-vacuous",
    )
    verify_group.add_argument(
        "--kernel", choices=("auto", "reference", "fast"), default="auto",
        help="simulator kernel for the chaos checkers (default: auto; "
             "the dover/differential flavors always run default knobs)",
    )
    verify_group.add_argument(
        "--trace-mode", choices=("object", "compact"), default=None,
        dest="trace_mode",
        help="trace representation for the chaos checkers "
             "(default: object)",
    )
    batch_group = parser.add_argument_group("batched kernel")
    batch_group.add_argument(
        "--batch", choices=("off", "auto", "force"), default="off",
        help="route the table targets' sim arms through the vectorized "
             "batch kernel (metrics bit-identical; 'auto' falls back per "
             "system outside the envelope, 'force' raises; default: off)",
    )
    batch_group.add_argument(
        "--shard-size", type=int, default=512, metavar="N",
        help="systems per shard for the 'batch' sweep target "
             "(default: 512)",
    )
    batch_group.add_argument(
        "--sweep-systems", type=int, default=1000, metavar="N",
        help="systems per parameter set for the 'batch' sweep target "
             "(default: 1000; six sets, so the population is 6N)",
    )
    batch_group.add_argument(
        "--verify-fraction", type=float, default=0.05, metavar="F",
        help="fraction of each shard cross-validated against the "
             "per-system reference kernel (default: 0.05)",
    )
    overload_group = parser.add_argument_group("overload target")
    overload_group.add_argument(
        "--queue-bound", type=int, default=None, metavar="N",
        help="bound every server's pending queue to N releases "
             "(default: 6)",
    )
    overload_group.add_argument(
        "--shed-policy", choices=_SHED_POLICIES, default=None,
        help="what to shed when the queue bound is hit "
             "(default: drop-oldest)",
    )
    overload_group.add_argument(
        "--breaker-window", type=float, default=None, metavar="TU",
        help="sliding window (in tu) over which per-source circuit "
             "breakers count failures",
    )

    service = parser.add_argument_group("service target")
    service.add_argument(
        "--storm-rate", type=float, default=0.5, metavar="R",
        help="Poisson arrival rate of the service storm, per tu "
             "(default: 0.5)",
    )
    service.add_argument(
        "--storm-horizon", type=float, default=200.0, metavar="TU",
        help="last arrival instant of the storm (default: 200)",
    )
    service.add_argument(
        "--storm-seed", type=int, default=0, metavar="SEED",
        help="master seed of the storm (default: 0)",
    )
    service.add_argument(
        "--drift-ppm", type=float, default=0.0, metavar="PPM",
        help="injected timer drift of the executor, parts per million "
             "(default: 0 — no drift)",
    )
    service.add_argument(
        "--overrun-factor", type=float, default=1.0, metavar="F",
        help="WCET overrun multiplier for skewed requests (default: 1)",
    )
    service.add_argument(
        "--overrun-probability", type=float, default=0.0, metavar="P",
        help="fraction of requests that overrun (default: 0)",
    )
    service.add_argument(
        "--kill-at", type=float, default=None, metavar="TU",
        help="crash the service at this instant and report the twin "
             "state hash (restart drill)",
    )
    service.add_argument(
        "--service-checkpoint", type=Path, default=None, metavar="FILE",
        help="write-ahead JSONL op log of the service (required for "
             "--kill-at restart drills)",
    )
    service.add_argument(
        "--service-resume", action="store_true",
        help="resume a killed storm from --service-checkpoint instead "
             "of starting fresh (completes the restart drill)",
    )
    fabric = parser.add_argument_group("fabric target")
    fabric.add_argument(
        "--fabric-shards", type=int, default=3, metavar="N",
        help="number of supervised admission shards (default: 3)",
    )
    fabric.add_argument(
        "--fabric-sources", type=int, default=6, metavar="N",
        help="number of declared client sources (default: 6)",
    )
    fabric.add_argument(
        "--fabric-kill", action="append", default=[],
        metavar="TIME:SHARD[:corrupt]",
        help="crash shard SHARD at instant TIME; append ':corrupt' to "
             "also tear the tail of its checkpoint (repeatable)",
    )
    fabric.add_argument(
        "--fabric-restart-delay", type=float, default=None, metavar="TU",
        help="supervisor delay between declaring a shard down and "
             "restoring it from its checkpoint",
    )
    fabric.add_argument(
        "--fabric-checkpoint-dir", type=Path, default=None, metavar="DIR",
        help="directory for the per-shard JSONL write-ahead checkpoints "
             "(default: a temporary directory; required persistent for "
             "post-mortem inspection of kill drills)",
    )
    fabric.add_argument(
        "--fabric-duplicate-fraction", type=float, default=0.0,
        metavar="P",
        help="fraction of requests also submitted by an impatient "
             "duplicate client (default: 0)",
    )

    gateway = parser.add_argument_group("gateway target")
    gateway.add_argument(
        "--listen", default=None, metavar="HOST:PORT|unix:PATH",
        help="serve mode: run the gateway as a long-lived listener on "
             "this address (SIGTERM drains gracefully, a second SIGTERM "
             "forces immediate exit); without --listen the target runs "
             "the seeded wall-clock soak drill instead",
    )
    gateway.add_argument(
        "--soak-requests", type=int, default=150, metavar="N",
        help="requests pushed through the soak drill (default: 150)",
    )
    gateway.add_argument(
        "--soak-rate", type=float, default=3.0, metavar="R",
        help="Poisson arrival rate of the soak, per tu (default: 3)",
    )
    gateway.add_argument(
        "--soak-seed", type=int, default=0, metavar="SEED",
        help="master seed of the soak schedule and fault draws "
             "(default: 0)",
    )
    gateway.add_argument(
        "--soak-scale", type=float, default=1e-3, metavar="S",
        help="wall seconds per logical tu (default: 1e-3)",
    )
    gateway.add_argument(
        "--soak-dir", type=Path, default=None, metavar="DIR",
        help="directory for the soak's journal/checkpoint/sockets "
             "(default: a temporary directory)",
    )
    gateway.add_argument(
        "--proxy-faults", default=None,
        metavar="K=V[,K=V...]",
        help="route the soak through the network fault proxy; keys: "
             "latency, jitter (wall seconds), reset, torn, dup, reorder "
             "(per-frame probabilities) — e.g. "
             "'reset=0.03,torn=0.02,dup=0.05,latency=0.002'",
    )

    multicore = parser.add_argument_group("multicore target")
    multicore.add_argument(
        "--cores", type=int, default=4, metavar="M",
        help="number of identical cores to simulate (default: 4)",
    )
    multicore.add_argument(
        "--placement", choices=("ff", "wf", "bf"), default=None,
        help="run only the partitioned arm with this decreasing-"
             "utilization bin-packing heuristic",
    )
    multicore.add_argument(
        "--global-sched", choices=("fp", "edf"), default=None,
        dest="global_sched",
        help="run only the global arm with this scheduler",
    )
    multicore.add_argument(
        "--utilization", type=float, default=None, metavar="U",
        help="total taskset utilization across all cores "
             "(default: cores / 2)",
    )
    multicore.add_argument(
        "--systems", type=int, default=10, metavar="N",
        help="number of generated systems per arm (default: 10)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.horizon_multiplier < 1:
        parser.error(
            f"--horizon-multiplier must be >= 1, "
            f"got {args.horizon_multiplier}"
        )

    if args.profile:
        return _run_profiled(args, parser)
    return _dispatch(args, parser)


def _run_profiled(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    """Run the selected target under cProfile and dump a pstats summary
    of the hottest ``repro`` frames (sorted by total time)."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    status = 1
    try:
        status = profiler.runcall(_dispatch, args, parser)
    finally:
        profiler.disable()
        print("\nprofile: hottest kernel frames (by total time)")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("tottime").print_stats(r"repro[/\\]", 25)
    return status


def _dispatch(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    if args.target == "report":
        from .report import generate_report, markdown_report

        if args.output is not None:
            generate_report(args.output)
            print(f"report written to {args.output}")
        else:
            print(markdown_report())
        return 0

    failures = 0
    wants_tables = args.target in ("all", "table2", "table3", "table4",
                                   "table5", "checks")
    overhead = OverheadModel.zero() if args.no_overhead else None

    run_policy = None
    if (
        args.timeout is not None
        or args.retries
        or args.checkpoint is not None
        or args.fail_fast
    ):
        try:
            run_policy = RunPolicy(
                timeout_s=args.timeout,
                max_retries=args.retries,
                checkpoint_path=args.checkpoint,
                fail_fast=args.fail_fast,
            )
        except ValueError as exc:
            parser.error(str(exc))

    try:
        if args.target == "multicore":
            return _run_multicore(args, run_policy)
        if args.target == "overload":
            return _run_overload(args, run_policy, overhead)
        if args.target == "verify":
            return _run_verify(args)
        if args.target == "service":
            return _run_service(args)
        if args.target == "batch":
            return _run_batch(args)
        if args.target == "fabric":
            return _run_fabric(args)
        if args.target == "gateway":
            return _run_gateway(args)
    except RunExhausted as exc:
        print(f"fail-fast: {exc}", file=sys.stderr)
        return 2

    if wants_tables:
        try:
            campaign = run_campaign(
                sets=_scaled_sets(args.horizon_multiplier),
                overhead=overhead, run_policy=run_policy,
                workers=args.workers, verify=args.verify,
                batch=args.batch, cycle=args.cycle,
            )
        except RunExhausted as exc:
            print(f"fail-fast: {exc}", file=sys.stderr)
            return 2
        if campaign.failures:
            print(f"WARNING: {len(campaign.failures)} run(s) failed:")
            for record in campaign.failures:
                print(
                    f"  [{record.status}] {record.arm} set={record.set_key} "
                    f"system={record.system_id} after {record.attempts} "
                    f"attempt(s)"
                )
            failures += len(campaign.failures)
        table_numbers = (
            (2, 3, 4, 5) if args.target in ("all", "checks")
            else (int(args.target[-1]),)
        )
        if args.target != "checks":
            for number in table_numbers:
                measured = campaign.table(TABLE_ARMS[number])
                if args.compare:
                    print(format_comparison(number, measured))
                else:
                    print(format_table(number, measured))
                print()
        if args.target in ("all", "checks"):
            print("Shape checks (paper conclusions):")
            for check in shape_checks(campaign.tables):
                status = "ok  " if check.holds else "FAIL"
                print(f"  [{status}] {check.description}")
                if not check.holds:
                    failures += 1
            print()

    if args.target in ("all", "figures"):
        print(render_all_figures(svg_dir=args.svg_dir))

    return 1 if failures else 0


def _scaled_sets(multiplier: int):
    """The paper's parameter sets with ``horizon_periods`` stretched
    ``multiplier``-fold (``--horizon-multiplier``)."""
    from dataclasses import replace

    from ..workload.generator import PAPER_SETS

    if multiplier == 1:
        return PAPER_SETS
    return tuple(
        replace(params, horizon_periods=params.horizon_periods * multiplier)
        for params in PAPER_SETS
    )


def _run_multicore(args: argparse.Namespace, run_policy) -> int:
    """The ``multicore`` target: run the SMP campaign and print tables.

    With ``--svg-dir`` the first generated system is additionally
    re-simulated under each selected arm and rendered as a per-core
    Gantt chart (one lane per core, migrations marked).
    """
    from ..sim import svg_gantt_cores
    from ..smp import (
        MULTICORE_MODES,
        MulticoreParameters,
        build_multicore_system,
        format_multicore_campaign,
        run_multicore_campaign,
        run_multicore_system,
    )

    if args.cores < 1:
        print(f"--cores must be >= 1, got {args.cores}", file=sys.stderr)
        return 1
    modes: tuple[str, ...]
    if args.placement is not None and args.global_sched is not None:
        modes = (f"part-{args.placement}", f"global-{args.global_sched}")
    elif args.placement is not None:
        modes = (f"part-{args.placement}",)
    elif args.global_sched is not None:
        modes = (f"global-{args.global_sched}",)
    else:
        modes = MULTICORE_MODES
    utilization = (
        args.utilization if args.utilization is not None
        else args.cores / 2.0
    )
    params = MulticoreParameters(
        n_cores=args.cores,
        total_utilization=utilization,
        nb_systems=args.systems,
        horizon_periods=10 * args.horizon_multiplier,
    )
    result = run_multicore_campaign(
        params, modes=modes, run_policy=run_policy, workers=args.workers,
        verify=args.verify, cycle=args.cycle,
    )
    print(format_multicore_campaign(result.tables))
    failures = [r for r in result.records if r.status != "ok"]
    if failures:
        print(f"WARNING: {len(failures)} run(s) failed:")
        for record in failures:
            print(
                f"  [{record.status}] {record.arm} "
                f"system={record.system_id} after {record.attempts} "
                f"attempt(s)"
            )
    if args.svg_dir is not None:
        args.svg_dir.mkdir(parents=True, exist_ok=True)
        system = build_multicore_system(params, 0)
        for mode in modes:
            run = run_multicore_system(
                system, params.n_cores, mode, cycle=args.cycle
            )
            path = args.svg_dir / f"multicore_{mode}.svg"
            path.write_text(
                svg_gantt_cores(run.trace, n_cores=params.n_cores),
                encoding="utf-8",
            )
            print(f"wrote {path}")
    return 1 if failures else 0


def _run_verify(args: argparse.Namespace) -> int:
    """The ``verify`` target: the seeded chaos campaign (and, with
    ``--mutations``, the monitor non-vacuity self-test)."""
    from ..verify.chaos import run_chaos_campaign

    if args.chaos_systems < 1:
        print(f"--chaos-systems must be >= 1, got {args.chaos_systems}",
              file=sys.stderr)
        return 1
    failures = 0
    result = run_chaos_campaign(
        n_systems=args.chaos_systems,
        seed=args.chaos_seed,
        multicore=not args.no_multicore,
        shrink=not args.no_shrink,
        kernel=args.kernel,
        trace_mode=args.trace_mode,
        cycle=args.cycle,
    )
    print(result.summary())
    for run in result.failures:
        if run.witness_note:
            print(f"  witness #{run.index}: {run.witness_note}")
        for violation in run.violations[:5]:
            print(f"    {violation}")
    failures += len(result.failures)
    if args.mutations:
        from ..verify.mutations import run_mutation_selftest

        print("\nMutation self-test (each monitor family must catch "
              "its seeded bug):")
        for outcome in run_mutation_selftest():
            status = "ok  " if outcome.caught else "FAIL"
            caught = sorted(outcome.kinds & outcome.expected)
            print(f"  [{status}] {outcome.name}: "
                  f"{', '.join(caught) if caught else 'nothing caught'}")
            if not outcome.caught:
                failures += 1
    return 1 if failures else 0


def _run_batch(args: argparse.Namespace) -> int:
    """The ``batch`` target: a population-scale sweep of the paper's six
    parameter tuples on the batched kernel — sharded, checkpointed
    (``--checkpoint``), differentially sampled against the reference
    kernel, with a systems/sec throughput summary."""
    from dataclasses import replace

    from ..batch import (
        BatchUnsupported,
        BatchVerificationError,
        run_batched_campaign,
    )

    if args.sweep_systems < 1:
        print(f"--sweep-systems must be >= 1, got {args.sweep_systems}",
              file=sys.stderr)
        return 1
    if args.shard_size < 1:
        print(f"--shard-size must be >= 1, got {args.shard_size}",
              file=sys.stderr)
        return 1
    sets = tuple(
        replace(params, nb_generation=args.sweep_systems)
        for params in _scaled_sets(args.horizon_multiplier)
    )
    try:
        result = run_batched_campaign(
            sets=sets,
            shard_size=args.shard_size,
            workers=args.workers,
            checkpoint_path=args.checkpoint,
            verify_fraction=args.verify_fraction,
            mode="force" if args.batch == "force" else "auto",
            keep_runs=False,
            cycle=args.cycle,
        )
    except BatchVerificationError as exc:
        print(f"DIFFERENTIAL FAILURE: {exc}", file=sys.stderr)
        return 1
    except BatchUnsupported as exc:
        print(f"batch=force: {exc}", file=sys.stderr)
        return 1
    for arm in sorted(result.tables):
        print(f"{arm}:")
        for key, metrics in result.tables[arm].items():
            print(
                f"  (d={key[0]:g}, s={key[1]:g})  "
                f"AART {metrics.aart:8.4f}  AIR {metrics.air:6.4f}  "
                f"ASR {metrics.asr:6.4f}"
            )
        print()
    print(
        f"{result.systems} system(s) in {len(result.shards)} shard(s) "
        f"({result.resumed} resumed), {result.fallbacks} fallback(s), "
        f"{result.verified} differentially verified, "
        f"{result.elapsed_s:.2f}s "
        f"({result.systems_per_sec:,.0f} systems/sec)"
    )
    return 0


def _run_service(args: argparse.Namespace) -> int:
    """The ``service`` target: one seeded Poisson storm against the
    online admission service, with optional execution skew and a
    kill-at-restart drill; prints the storm report and fails on any
    invariant-monitor violation."""
    import json as _json

    from ..service import StormConfig, run_service_storm

    try:
        config = StormConfig(
            rate=args.storm_rate,
            horizon=args.storm_horizon,
            seed=args.storm_seed,
            drift_ppm=args.drift_ppm,
            overrun_factor=args.overrun_factor,
            overrun_probability=args.overrun_probability,
            kill_at=args.kill_at,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    report = run_service_storm(
        config, checkpoint_path=args.service_checkpoint,
        resume=args.service_resume,
    )
    print(_json.dumps(report.to_dict(), indent=1))
    if args.service_resume:
        print(f"\nresumed from twin hash {report.resumed_from_hash[:16]}\u2026")
    if report.killed:
        print(f"\nkilled at t={report.horizon:g}; twin hash "
              f"{report.twin_hash[:16]}… — resume from "
              f"{args.service_checkpoint}")
        return 0
    if report.violations:
        print(f"\n{len(report.violations)} invariant violation(s):",
              file=sys.stderr)
        for violation in report.violations:
            print(f"  {violation}", file=sys.stderr)
        if args.fail_fast:
            raise _storm_exhausted(
                "service", args.storm_seed, str(report.violations[0])
            )
        return 1
    print("\nstorm clean: every monitor invariant held")
    return 0


def _storm_exhausted(arm: str, system_id: int,
                     error: str) -> RunExhausted:
    """A fail-fast exception for the single-run storm targets, shaped
    like the campaign's so ``--fail-fast`` means exit 2 everywhere (and
    stays picklable across worker-pool boundaries)."""
    return RunExhausted({
        "arm": arm,
        "set_key": [0.0, 0.0],
        "system_id": system_id,
        "status": "failed",
        "attempts": 1,
        "error": error,
    })


def _run_fabric(args: argparse.Namespace) -> int:
    """The ``fabric`` target: a seeded Poisson storm against the sharded
    admission fabric, with an optional kill-the-shard chaos schedule
    (``--fabric-kill TIME:SHARD[:corrupt]``), supervised failover, and
    checkpoint restore; prints the fabric storm report and fails on any
    merged-trace monitor violation, double admission, or unshed hard
    deadline miss."""
    import json as _json
    import tempfile
    from dataclasses import replace as _dc_replace

    from ..fabric import (
        FabricStormConfig,
        ShardKill,
        SupervisorConfig,
        run_fabric_storm,
    )

    kills = []
    for spec in args.fabric_kill:
        parts = spec.split(":")
        try:
            if len(parts) == 3 and parts[2] == "corrupt":
                kills.append(ShardKill(at=float(parts[0]),
                                       shard=int(parts[1]),
                                       corrupt_tail=True))
            elif len(parts) == 2:
                kills.append(ShardKill(at=float(parts[0]),
                                       shard=int(parts[1])))
            else:
                raise ValueError(spec)
        except ValueError:
            print(f"--fabric-kill wants TIME:SHARD[:corrupt], got "
                  f"{spec!r}", file=sys.stderr)
            return 1
    supervisor = SupervisorConfig()
    if args.fabric_restart_delay is not None:
        supervisor = _dc_replace(
            supervisor, restart_delay=args.fabric_restart_delay
        )
    try:
        config = FabricStormConfig(
            rate=args.storm_rate,
            horizon=args.storm_horizon,
            seed=args.storm_seed,
            drift_ppm=args.drift_ppm,
            overrun_factor=args.overrun_factor,
            overrun_probability=args.overrun_probability,
            shards=args.fabric_shards,
            sources=args.fabric_sources,
            supervisor=supervisor,
            kills=tuple(sorted(kills, key=lambda k: (k.at, k.shard))),
            duplicate_fraction=args.fabric_duplicate_fraction,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1

    def drill(checkpoint_dir):
        return run_fabric_storm(config, checkpoint_dir=checkpoint_dir)

    if args.fabric_checkpoint_dir is not None:
        report = drill(args.fabric_checkpoint_dir)
    elif kills:
        with tempfile.TemporaryDirectory() as tmp:
            report = drill(Path(tmp))
    else:
        report = drill(None)
    print(_json.dumps(report.to_dict(), indent=1))
    problems = list(report.violations)
    if report.double_admitted:
        problems.append(
            f"double admission: {sorted(report.double_admitted)}"
        )
    if report.hard_misses:
        problems.append(
            f"{report.hard_misses} hard deadline miss(es) without SHED"
        )
    if problems:
        print(f"\n{len(problems)} fabric violation(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        if args.fail_fast:
            raise _storm_exhausted("fabric", args.storm_seed, problems[0])
        return 1
    print(f"\nfabric storm clean: {report.kills} kill(s), "
          f"{report.declared_down} declared, {report.restored} restored, "
          "every monitor invariant held")
    return 0


def _parse_proxy_faults(spec: str):
    """``k=v,...`` -> :class:`~repro.gateway.ProxyFaultPlan`."""
    from ..gateway import ProxyFaultPlan

    keys = {
        "latency": "latency_s", "jitter": "jitter_s",
        "reset": "reset_probability", "torn": "torn_frame_probability",
        "dup": "duplicate_probability", "reorder": "reorder_probability",
    }
    kwargs = {}
    for item in spec.split(","):
        if not item.strip():
            continue
        key, _, value = item.partition("=")
        field = keys.get(key.strip())
        if field is None or not value:
            raise ValueError(
                f"--proxy-faults wants K=V with K in "
                f"{sorted(keys)}, got {item!r}"
            )
        kwargs[field] = float(value)
    return ProxyFaultPlan(**kwargs)


def _run_gateway(args: argparse.Namespace) -> int:
    """The ``gateway`` target.

    Without ``--listen``: the seeded wall-clock soak drill — a real
    Unix-socket gateway under a Poisson front (optionally through the
    network fault proxy and across one ``--kill-at`` kill + journal
    restore), cross-checked fate-for-fate against a ``VirtualClock``
    control replay.  With ``--listen``: a long-lived serving gateway;
    SIGTERM drains gracefully (explicit drain-cutoff fates), a second
    SIGTERM forces an immediate exit.
    """
    import json as _json
    import tempfile

    from ..gateway import GatewaySoakConfig, run_gateway_soak

    plan = None
    if args.proxy_faults is not None:
        try:
            plan = _parse_proxy_faults(args.proxy_faults)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1

    if args.listen is not None:
        return _serve_gateway(args)

    try:
        config = GatewaySoakConfig(
            requests=args.soak_requests,
            rate=args.soak_rate,
            seed=args.soak_seed,
            scale=args.soak_scale,
            kill_at=args.kill_at,
            proxy=plan,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1

    if args.soak_dir is not None:
        report = run_gateway_soak(config, args.soak_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            report = run_gateway_soak(config, Path(tmp))
    print(_json.dumps(report.summary(), indent=1))
    problems = [str(v) for v in report.violations]
    problems.extend(
        f"fate divergence {rid}: wall {wall} vs control {control}"
        for rid, wall, control in report.fate_mismatches
    )
    if report.lost:
        problems.append(
            f"{report.lost} request(s) exhausted client retries"
        )
    if problems:
        print(f"\n{len(problems)} gateway violation(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        if args.fail_fast:
            raise _storm_exhausted("gateway", args.soak_seed, problems[0])
        return 1
    print(f"\ngateway soak clean: {report.delivered} request(s) "
          f"delivered at {report.requests_per_sec:.0f} req/s, "
          f"{report.retries} retr{'y' if report.retries == 1 else 'ies'}, "
          + (f"1 kill + restore ({report.replayed} replayed), "
             if report.killed else "")
          + "every fate matched the control replay")
    return 0


def _serve_gateway(args: argparse.Namespace) -> int:
    """Long-lived serving mode of the ``gateway`` target."""
    import asyncio
    import json as _json
    import signal

    from ..gateway import AdmissionGateway, GatewayConfig
    from ..gateway.soak import default_gateway_service_config

    listen = args.listen
    if listen.startswith("unix:"):
        gateway_config = GatewayConfig(unix_path=listen[len("unix:"):])
    else:
        host, _, port = listen.rpartition(":")
        try:
            gateway_config = GatewayConfig(
                host=host or "127.0.0.1", port=int(port)
            )
        except ValueError:
            print(f"--listen wants HOST:PORT or unix:PATH, got "
                  f"{listen!r}", file=sys.stderr)
            return 1

    if args.soak_dir is not None:
        args.soak_dir.mkdir(parents=True, exist_ok=True)

    async def serve() -> int:
        gateway = await AdmissionGateway(
            gateway_config, default_gateway_service_config(),
            seed=args.soak_seed,
            journal_path=(
                args.soak_dir / "gateway-journal.jsonl"
                if args.soak_dir is not None else None
            ),
            checkpoint_path=(
                args.soak_dir / "gateway-checkpoint.jsonl"
                if args.soak_dir is not None else None
            ),
        ).start()
        loop = asyncio.get_running_loop()
        # both signals funnel into the idempotent shutdown path:
        # first = graceful drain, second = forced immediate exit
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, gateway.request_shutdown)
        print(f"gateway listening on {gateway.address}", flush=True)
        assert gateway.terminated is not None
        await gateway.terminated.wait()
        report, _merged = gateway.finish()
        print(_json.dumps(gateway.metrics(), indent=1))
        if report.violations:
            print(f"{len(report.violations)} violation(s):",
                  file=sys.stderr)
            for violation in report.violations:
                print(f"  {violation}", file=sys.stderr)
            if args.fail_fast:
                raise _storm_exhausted(
                    "gateway", args.soak_seed, str(report.violations[0])
                )
            return 1
        return 0

    return asyncio.run(serve())


def _run_overload(args: argparse.Namespace, run_policy,
                  overhead) -> int:
    """The ``overload`` target: burst-fault sweeps with the overload
    stack armed, reporting shed/breaker/degraded-mode behaviour next to
    the usual response-time metrics."""
    from dataclasses import replace

    from .campaign import default_overload_config, run_overload_campaign

    overload = default_overload_config()
    if args.queue_bound is not None:
        if args.queue_bound < 1:
            print(f"--queue-bound must be >= 1, got {args.queue_bound}",
                  file=sys.stderr)
            return 1
        overload = replace(
            overload,
            queue_bound=replace(
                overload.queue_bound, max_items=args.queue_bound
            ),
        )
    if args.shed_policy is not None:
        overload = replace(
            overload,
            queue_bound=replace(
                overload.queue_bound, policy=args.shed_policy
            ),
        )
    if args.breaker_window is not None:
        if args.breaker_window <= 0:
            print(
                f"--breaker-window must be > 0, got {args.breaker_window}",
                file=sys.stderr,
            )
            return 1
        overload = replace(
            overload,
            breaker=replace(overload.breaker, window=args.breaker_window),
        )

    result = run_overload_campaign(
        overhead=overhead, overload=overload, run_policy=run_policy,
        workers=args.workers,
    )
    arms = sorted({run.arm for run in result.runs})
    for arm in arms:
        summary = result.summary(arm)
        print(f"{arm}:")
        for key, value in summary.items():
            print(f"  {key:>24s}: {value:.4g}")
        print()
    failures = result.failures
    if failures:
        print(f"WARNING: {len(failures)} run(s) failed:")
        for record in failures:
            print(
                f"  [{record.status}] {record.arm} set={record.set_key} "
                f"system={record.system_id}"
            )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
