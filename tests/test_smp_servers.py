"""Per-core task servers on the multicore kernel.

The paper's capacity invariant — a server executes at most ``capacity``
units inside any of its periods — must hold *per core* when one server
instance runs on every core of a partitioned system, including when
aperiodic handlers overrun their declared cost.
"""

from __future__ import annotations

import pytest

from repro.faults import EnforcementConfig, FaultPlan, WcetOverrun
from repro.smp import (
    MulticoreParameters,
    build_multicore_system,
    run_multicore_system,
)

EPS = 1e-6

PARAMS = MulticoreParameters(
    n_cores=2,
    n_tasks=6,
    total_utilization=1.2,
    task_density=4.0,  # a dense stream keeps every server saturated
    nb_systems=1,
    seed=42,
    horizon_periods=4,
)

OVERRUN_PLAN = FaultPlan(
    injectors=(WcetOverrun(factor=3.0, probability=1.0),), seed=9
)


def _server_budget_per_period(trace, name: str, period: float,
                              horizon: float) -> list[float]:
    """Executed server time inside each [k*period, (k+1)*period) window."""
    n_windows = int(horizon / period + 0.5)
    used = [0.0] * n_windows
    for segment in trace.segments_of(name):
        k = int(segment.start / period + 1e-9)
        # a server slice never spans its own replenishment boundary
        assert segment.end <= (k + 1) * period + EPS
        used[min(k, n_windows - 1)] += segment.end - segment.start
    return used


@pytest.mark.parametrize("server", ["polling", "deferrable"])
class TestPerCoreCapacityBound:
    def test_capacity_bound_holds_per_core(self, server):
        system = build_multicore_system(PARAMS, 0)
        result = run_multicore_system(system, 2, "part-ff", server=server)
        capacity = system.server.capacity
        period = system.server.period
        for core in range(2):
            name = f"{server}{core}".upper()
            used = _server_budget_per_period(
                result.trace, name, period, system.horizon
            )
            assert any(u > 0 for u in used), f"{name} never ran"
            for window, budget in enumerate(used):
                assert budget <= capacity + EPS, (
                    f"{name} used {budget} > {capacity} in window {window}"
                )

    def test_capacity_bound_holds_under_overrun(self, server):
        system = OVERRUN_PLAN.apply(build_multicore_system(PARAMS, 0))
        result = run_multicore_system(
            system, 2, "part-ff", server=server,
            enforcement=EnforcementConfig(policy="log-and-continue"),
        )
        capacity = system.server.capacity
        period = system.server.period
        for core in range(2):
            used = _server_budget_per_period(
                result.trace, f"{server}{core}".upper(), period,
                system.horizon,
            )
            for budget in used:
                assert budget <= capacity + EPS

    def test_servers_stay_on_their_cores(self, server):
        system = build_multicore_system(PARAMS, 0)
        result = run_multicore_system(system, 2, "part-ff", server=server)
        for core in range(2):
            name = f"{server}{core}".upper()
            cores_used = {
                s.core for s in result.trace.segments_of(name)
            }
            assert cores_used <= {core}
