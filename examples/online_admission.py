#!/usr/bin/env python
"""On-line admission control with O(1) response-time prediction.

Demonstrates the paper's Section 7 machinery: a Polling task server
configured with the *list-of-lists* (bucket) queue computes, at each
event's arrival instant, the exact response time the event will get
(equation (5)) in constant time — so events that would miss their
deadline are cancelled at fire time instead of wasting server capacity.

The run then verifies the promise: every admitted event completes at
exactly its predicted instant.

Run:  python examples/online_admission.py
"""

import _bootstrap  # noqa: F401  (makes `repro` importable from any CWD)

from repro.core import (
    BucketAdmissionController,
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServerParameters,
)
from repro.rtsj import (
    NS_PER_UNIT as M,
    OverheadModel,
    RelativeTime,
    RTSJVirtualMachine,
)
from repro.workload.rng import PortableRandom

CAPACITY, PERIOD, HORIZON = 4.0, 6.0, 90.0


def main() -> None:
    vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
    server = PollingTaskServer(
        TaskServerParameters(
            RelativeTime.from_units(CAPACITY),
            RelativeTime.from_units(PERIOD),
            priority=30,
        ),
        queue="bucket",
    )
    server.attach(vm, round(HORIZON * M))
    controller = BucketAdmissionController(server)

    # A random stream of events, each with a cost and a firm relative
    # deadline; the controller decides at fire time.
    rng = PortableRandom(7_2007)
    decisions = []

    def submit(index: int):
        cost = rng.uniform(0.5, 3.5)
        deadline = rng.uniform(4.0, 25.0)
        handler = ServableAsyncEventHandler(
            RelativeTime.from_units(cost), server, name=f"ev{index}"
        )
        event = ServableAsyncEvent(handler.name)
        event.add_servable_handler(handler)

        def fire(now):
            decision = controller.fire_if_admitted(
                event, handler, RelativeTime.from_units(deadline)
            )
            decisions.append((handler.name, cost, deadline, decision))

        return fire

    t = 0.0
    index = 0
    while t < HORIZON * 0.8:
        t += rng.exponential(3.0)
        vm.schedule_event(round(t * M), submit(index))
        index += 1

    vm.run(round(HORIZON * M))

    print(f"{'event':>6} {'cost':>6} {'deadline':>9} {'predicted':>10} "
          f"{'verdict':>8} {'actual':>8}")
    jobs = {j.name.split("@")[0]: j for j in server.jobs}
    for name, cost, deadline, decision in decisions:
        actual = ""
        if decision.accepted:
            job = jobs[name]
            actual = f"{job.response_time:8.2f}"
            assert abs(job.response_time - decision.predicted_response_time) \
                < 1e-6, "prediction must be exact"
        print(
            f"{name:>6} {cost:6.2f} {deadline:9.2f} "
            f"{decision.predicted_response_time:10.2f} "
            f"{'admit' if decision.accepted else 'REJECT':>8} {actual:>8}"
        )
    admitted = sum(1 for *_x, d in decisions if d.accepted)
    print(
        f"\nadmitted {admitted}/{len(decisions)} events "
        f"(acceptance ratio {controller.acceptance_ratio:.2f}); every "
        "admitted event met its deadline at exactly the predicted time"
    )


if __name__ == "__main__":
    main()
