"""Ideal Deferrable Server (Strosnider, Lehoczky & Sha 1995; paper S2.2).

The server preserves its capacity while idle and serves an aperiodic job
the instant it arrives (at the server's priority) as long as capacity
remains; the capacity is restored to its full value at every period
boundary.  This "deferred" bandwidth is what buys the DS its better
average response times at the cost of a modified periodic-task
feasibility analysis (implemented in
:mod:`repro.analysis.server_analysis`).
"""

from __future__ import annotations

from ..engine import EPS, Simulation
from .base import AperiodicServer

__all__ = ["IdealDeferrableServer"]


class IdealDeferrableServer(AperiodicServer):
    """Literature Deferrable Server semantics (resumable, zero overhead)."""

    def _schedule_housekeeping(self, sim: Simulation, horizon: float) -> None:
        self.capacity = self.spec.capacity
        period = self.spec.period
        k = 1
        while k * period < horizon - EPS:
            sim.schedule_at(
                k * period,
                lambda now: self._replenish_full(now),
                order=6,
            )
            k += 1

    def _replenish_full(self, now: float) -> None:
        # full (not incremental) restoration, the classic DS rule; the
        # service scale (1.0 on the golden path, float-identical) shrinks
        # the restored budget while an overload detector holds the system
        # in degraded mode
        self.capacity = 0.0
        self._replenish(now, self.spec.capacity * self.service_scale)
