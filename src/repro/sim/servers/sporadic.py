"""Sporadic Server (Sprunt, Sha & Lehoczky 1989; cited in paper S2).

The Sporadic Server preserves capacity like the Deferrable Server but
replenishes it in a way that makes the server indistinguishable from a
periodic task for feasibility purposes: capacity consumed from time
``t_A`` onward (the instant the server becomes *active*) is returned one
full period after ``t_A``, in the amount actually consumed.

This implementation follows the classic high-priority formulation: the
server is active whenever it is eligible to execute (pending work and
positive capacity).  Each activation opens a replenishment record
``(t_A + T_s, consumed)`` that is closed when the server stops being
eligible, at which point the replenishment is scheduled.
"""

from __future__ import annotations

from ..engine import EPS, Simulation
from ..task import AperiodicJob
from .base import AperiodicServer

__all__ = ["SporadicServer"]


class SporadicServer(AperiodicServer):
    """SS policy: capacity returned T_s after the start of each active span."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active_since: float | None = None
        self._consumed_in_span: float = 0.0

    def _schedule_housekeeping(self, sim: Simulation, horizon: float) -> None:
        self.capacity = self.spec.capacity
        self._horizon = horizon

    # -- active-span tracking --------------------------------------------------

    def _on_arrival(self, now: float, job: AperiodicJob) -> None:
        self._maybe_open_span(now)

    def _maybe_open_span(self, now: float) -> None:
        if self._active_since is None and self.ready(now):
            self._active_since = now
            self._consumed_in_span = 0.0

    def consume(self, start: float, duration: float, sim: Simulation) -> None:
        # the span may open on dispatch rather than arrival (e.g. capacity
        # was replenished while jobs waited)
        self._maybe_open_span(start)
        super().consume(start, duration, sim)
        self._consumed_in_span += duration

    def on_budget_exhausted(self, now: float, sim: Simulation) -> None:
        super().on_budget_exhausted(now, sim)
        if not self.ready(now):
            self._close_span(now)

    def _close_span(self, now: float) -> None:
        if self._active_since is None:
            return
        amount = self._consumed_in_span
        replenish_at = self._active_since + self.spec.period
        self._active_since = None
        self._consumed_in_span = 0.0
        if amount <= EPS:
            return
        assert self._sim is not None
        if replenish_at < self._horizon - EPS:
            self._sim.schedule_at(
                replenish_at,
                lambda t, a=amount: self._replenish_and_wake(t, a),
                order=6,
            )

    def _replenish_and_wake(self, now: float, amount: float) -> None:
        self._replenish(now, amount)
        self._maybe_open_span(now)
