"""The parallel campaign executor: determinism, checkpoints, resume."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.campaign import (
    PAPER_SETS,
    RunPolicy,
    RunRecord,
    run_campaign,
)
from repro.smp import (
    MulticoreParameters,
    format_multicore_campaign,
    run_multicore_campaign,
)

SMALL_SETS = tuple(
    dataclasses.replace(s, nb_generation=2) for s in PAPER_SETS[:2]
)
ARMS = ("polling", "deferrable")

MC_PARAMS = MulticoreParameters(
    n_cores=2, n_tasks=6, total_utilization=1.2, nb_systems=3, seed=7,
    horizon_periods=4,
)
MC_MODES = ("part-ff", "global-edf")


def _table_rows(campaign):
    return {
        arm: {key: campaign.tables[arm][key].as_row()
              for key in campaign.tables[arm]}
        for arm in campaign.tables
    }


class TestUniprocessorParallelism:
    def test_workers_bit_identical_to_sequential(self):
        seq = run_campaign(sets=SMALL_SETS, arms=ARMS, workers=1)
        par = run_campaign(sets=SMALL_SETS, arms=ARMS, workers=3)
        assert _table_rows(par) == _table_rows(seq)
        assert (
            [r.to_dict() for r in par.records]
            == [r.to_dict() for r in seq.records]
        )

    def test_workers_write_parent_only_checkpoint(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_campaign(
            sets=SMALL_SETS, arms=ARMS, workers=2,
            run_policy=RunPolicy(checkpoint_path=path),
        )
        lines = path.read_text().splitlines()
        assert len(lines) == len(SMALL_SETS) * 2 * len(ARMS)
        for line in lines:
            record = RunRecord.from_dict(json.loads(line))
            assert record.status == "ok"

    def test_resume_skips_completed_runs(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        policy = RunPolicy(checkpoint_path=path)
        first = run_campaign(sets=SMALL_SETS, arms=ARMS, workers=2,
                             run_policy=policy)
        n_lines = len(path.read_text().splitlines())
        resumed = run_campaign(sets=SMALL_SETS, arms=ARMS, workers=2,
                               run_policy=policy)
        # nothing re-ran, nothing re-written, identical tables
        assert len(path.read_text().splitlines()) == n_lines
        assert _table_rows(resumed) == _table_rows(first)


class TestStartMethods:
    def test_parallel_map_spawn_matches_inline(self):
        """The pool works under an explicit ``spawn`` context: workers
        re-import everything from scratch (no inherited state), so every
        entry point and task payload must pickle by qualified name and
        produce bit-identical ordered results."""
        from repro.batch.driver import _batch_shard_worker
        from repro.experiments.campaign import _parallel_map

        params = dataclasses.replace(PAPER_SETS[0], nb_generation=4)
        tasks = [
            (params, ("ps_sim",), shard, shard * 2, 2, 0.05, 1 + shard,
             "auto")
            for shard in range(2)
        ]
        inline = _parallel_map(_batch_shard_worker, tasks, 1)
        spawned = _parallel_map(
            _batch_shard_worker, tasks, 2, mp_context="spawn"
        )
        assert spawned == inline

    def test_parallel_map_explicit_context_object(self):
        import multiprocessing

        from repro.batch.driver import _batch_shard_worker
        from repro.experiments.campaign import _parallel_map

        params = dataclasses.replace(PAPER_SETS[0], nb_generation=2)
        tasks = [(params, ("ds_sim",), 0, 0, 2, 0.0, 1, "auto")]
        # a single task runs inline regardless of context; two workers
        # with a context object exercise the ctx.Pool branch
        inline = _parallel_map(_batch_shard_worker, tasks, 1)
        pooled = _parallel_map(
            _batch_shard_worker, tasks * 2, 2,
            mp_context=multiprocessing.get_context("spawn"),
        )
        assert pooled == inline * 2


class TestMulticoreParallelism:
    def test_workers_bit_identical_to_sequential(self):
        seq = run_multicore_campaign(MC_PARAMS, modes=MC_MODES, workers=1)
        par = run_multicore_campaign(MC_PARAMS, modes=MC_MODES, workers=3)
        assert (
            format_multicore_campaign(par.tables)
            == format_multicore_campaign(seq.tables)
        )
        assert (
            [r.to_dict() for r in par.records]
            == [r.to_dict() for r in seq.records]
        )

    def test_resume_from_truncated_checkpoint(self, tmp_path):
        path = tmp_path / "mc.jsonl"
        policy = RunPolicy(checkpoint_path=path)
        golden = run_multicore_campaign(
            MC_PARAMS, modes=MC_MODES, run_policy=policy, workers=2
        )
        lines = path.read_text().splitlines(True)
        assert len(lines) == MC_PARAMS.nb_systems * len(MC_MODES)
        # simulate a crash mid-append: final line half written
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        resumed = run_multicore_campaign(
            MC_PARAMS, modes=MC_MODES, run_policy=policy, workers=1
        )
        assert (
            format_multicore_campaign(resumed.tables)
            == format_multicore_campaign(golden.tables)
        )
        # the re-run record landed on a line of its own (the truncated
        # line is isolated and ignored); a third sweep re-runs nothing
        parsed, broken = 0, 0
        for line in path.read_text().splitlines():
            try:
                json.loads(line)
                parsed += 1
            except json.JSONDecodeError:
                broken += 1
        assert parsed == len(lines)
        assert broken == 1
        n_lines = len(path.read_text().splitlines())
        run_multicore_campaign(
            MC_PARAMS, modes=MC_MODES, run_policy=policy, workers=1
        )
        assert len(path.read_text().splitlines()) == n_lines

    def test_payload_round_trips_per_core_metrics(self):
        result = run_multicore_campaign(
            dataclasses.replace(MC_PARAMS, nb_systems=1),
            modes=("part-ff",),
        )
        record = result.records[0]
        assert record.payload is not None
        restored = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert restored.payload == record.payload
        assert restored.to_dict() == record.to_dict()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_multicore_campaign(MC_PARAMS, modes=("part-zz",))
