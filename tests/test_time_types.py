"""Unit tests for the RTSJ high-resolution time types."""

from __future__ import annotations

import pytest

from repro.rtsj.time_types import (
    AbsoluteTime,
    HighResolutionTime,
    NANOS_PER_MILLI,
    RelativeTime,
)


class TestConstruction:
    def test_millis_nanos_composition(self):
        t = RelativeTime(3, 500)
        assert t.total_nanos == 3 * NANOS_PER_MILLI + 500
        assert t.milliseconds == 3
        assert t.nanoseconds == 500

    def test_nanos_overflow_carries_into_millis(self):
        t = RelativeTime(1, 2_500_000)
        assert t.milliseconds == 3
        assert t.nanoseconds == 500_000

    def test_negative_value_canonical_form(self):
        t = RelativeTime(-1, 0)
        # RTSJ canonical form: nanos in [0, 1e6), sign carried by total
        assert t.total_nanos == -NANOS_PER_MILLI
        assert t.milliseconds == -1
        assert t.nanoseconds == 0
        assert t.is_negative()

    def test_from_nanos_roundtrip(self):
        t = AbsoluteTime.from_nanos(1_234_567)
        assert t.total_nanos == 1_234_567
        assert t.milliseconds == 1
        assert t.nanoseconds == 234_567

    def test_from_units_rounds_to_nanos(self):
        assert RelativeTime.from_units(1.5).total_nanos == 1_500_000
        assert RelativeTime.from_units(0.0000001).total_nanos == 0

    def test_to_units(self):
        assert RelativeTime(2, 500_000).to_units() == pytest.approx(2.5)

    def test_type_checking(self):
        with pytest.raises(TypeError):
            RelativeTime(1.5, 0)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            AbsoluteTime.from_nanos(1.5)  # type: ignore[arg-type]


class TestComparison:
    def test_ordering(self):
        assert RelativeTime(1, 0) < RelativeTime(2, 0)
        assert RelativeTime(1, 999_999) < RelativeTime(2, 0)
        assert RelativeTime(2, 0) >= RelativeTime(2, 0)

    def test_equality_same_type_only(self):
        assert RelativeTime(1, 0) == RelativeTime(0, NANOS_PER_MILLI)
        assert RelativeTime(1, 0) != AbsoluteTime(1, 0)

    def test_cross_type_ordering_rejected(self):
        with pytest.raises(TypeError):
            _ = RelativeTime(1, 0) < AbsoluteTime(2, 0)

    def test_hashable_and_consistent(self):
        assert hash(RelativeTime(1, 0)) == hash(RelativeTime(0, NANOS_PER_MILLI))
        assert len({RelativeTime(1, 0), RelativeTime(1, 0)}) == 1


class TestArithmetic:
    def test_relative_add_subtract(self):
        a, b = RelativeTime(3, 0), RelativeTime(1, 500_000)
        assert a.add(b) == RelativeTime(4, 500_000)
        assert a.subtract(b) == RelativeTime(1, 500_000)

    def test_relative_scale(self):
        assert RelativeTime(2, 500_000).scale(4) == RelativeTime(10, 0)
        with pytest.raises(TypeError):
            RelativeTime(1, 0).scale(1.5)  # type: ignore[arg-type]

    def test_absolute_plus_relative(self):
        t = AbsoluteTime(10, 0).add(RelativeTime(2, 500))
        assert isinstance(t, AbsoluteTime)
        assert t.total_nanos == 12 * NANOS_PER_MILLI + 500

    def test_absolute_minus_absolute_is_relative(self):
        d = AbsoluteTime(10, 0).subtract(AbsoluteTime(4, 0))
        assert isinstance(d, RelativeTime)
        assert d == RelativeTime(6, 0)

    def test_absolute_minus_relative_is_absolute(self):
        t = AbsoluteTime(10, 0).subtract(RelativeTime(4, 0))
        assert isinstance(t, AbsoluteTime)
        assert t == AbsoluteTime(6, 0)

    def test_type_mismatches_rejected(self):
        with pytest.raises(TypeError):
            RelativeTime(1, 0).add(AbsoluteTime(1, 0))  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            AbsoluteTime(1, 0).add(AbsoluteTime(1, 0))  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            AbsoluteTime(1, 0).subtract(3)  # type: ignore[arg-type]

    def test_exactness_no_float_drift(self):
        # a million exact 1-ns steps
        t = RelativeTime(0, 0)
        step = RelativeTime(0, 1)
        for _ in range(1000):
            t = t.add(step)
        assert t.total_nanos == 1000

    def test_repr_shows_components(self):
        assert repr(RelativeTime(3, 7)) == "RelativeTime(3, 7)"
        assert repr(AbsoluteTime(0, 0)) == "AbsoluteTime(0, 0)"

    def test_base_class_is_comparable_within_type(self):
        a = HighResolutionTime(1, 0)
        b = HighResolutionTime(2, 0)
        assert a < b
