"""Multicore scheduling policies: who runs on which core.

A :class:`MulticorePolicy` maps the ready set onto the *m* cores at every
decision point.  Two families are provided:

* **global** scheduling — one logical queue; the *m* highest-ranked ready
  entities run, wherever a core is free.  Ranking is fixed-priority
  (:class:`GlobalFixedPriorityPolicy`) or earliest-deadline-first
  (:class:`GlobalEDFPolicy`).  Entities may migrate between cores; the
  assignment preserves *affinity* (a selected entity keeps the core it is
  already running on), so migrations happen only when the ready-set
  geometry forces them — exactly the events worth counting.

* **partitioned** scheduling — every entity is pinned to one core (the
  output of :mod:`repro.smp.partition`) and each core runs its own
  uniprocessor policy over its own partition.  Nothing ever migrates.

All tie-breaks are deterministic: rank, then already-running, then
registration order — so a multicore schedule is exactly reproducible, the
property the Grolleau-style periodicity tests pin down.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..sim.engine import Entity, SchedulingPolicy
from ..sim.schedulers.fp import FixedPriorityPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..overload.config import OverloadConfig
    from ..sim.servers.base import AperiodicServer

__all__ = [
    "MulticorePolicy",
    "GlobalFixedPriorityPolicy",
    "GlobalEDFPolicy",
    "PartitionedPolicy",
    "AperiodicRouter",
]


class MulticorePolicy(ABC):
    """Chooses, at a decision point, the entity each core executes."""

    name: str = "smp-policy"

    @abstractmethod
    def assign(
        self,
        now: float,
        ready: list[Entity],
        n_cores: int,
        running: list[Entity | None],
    ) -> dict[int, Entity]:
        """Return a core -> entity map (each entity on at most one core).

        ``ready`` preserves registration order; ``running`` is the
        previous assignment, indexed by core (``None`` = idle).
        """


class _GlobalPolicy(MulticorePolicy):
    """Shared top-*m* selection with affinity-preserving placement."""

    def _rank(self, entity: Entity, now: float) -> float:
        """Smaller ranks are more urgent."""
        raise NotImplementedError

    def assign(self, now, ready, n_cores, running):
        if not ready:
            return {}
        running_ids = {id(e) for e in running if e is not None}
        order = {id(e): i for i, e in enumerate(ready)}
        # rank, then keep-running, then registration order: a ready entity
        # never displaces an equally-ranked running one (no gratuitous
        # preemptions or migrations on ties)
        selected = sorted(
            ready,
            key=lambda e: (
                self._rank(e, now),
                0 if id(e) in running_ids else 1,
                order[id(e)],
            ),
        )[:n_cores]
        selected_ids = {id(e) for e in selected}
        assignment: dict[int, Entity] = {}
        placed: set[int] = set()
        for core, current in enumerate(running):
            if current is not None and id(current) in selected_ids:
                assignment[core] = current
                placed.add(id(current))
        free_cores = [c for c in range(n_cores) if c not in assignment]
        rest = [e for e in selected if id(e) not in placed]
        for core, entity in zip(free_cores, rest):
            assignment[core] = entity
        return assignment


class GlobalFixedPriorityPolicy(_GlobalPolicy):
    """Global FP: the *m* highest-priority ready entities run."""

    name = "global-fp"

    def _rank(self, entity: Entity, now: float) -> float:
        return -entity.priority


class GlobalEDFPolicy(_GlobalPolicy):
    """Global EDF: the *m* earliest-deadline ready entities run."""

    name = "global-edf"

    def _rank(self, entity: Entity, now: float) -> float:
        return entity.current_deadline(now)


# canonical dispatch hooks, stashed at class-definition time so the
# cycle detector (repro.cycle) can tell when a subclass or monkeypatch
# made dispatch non-memoryless — the multicore mirror of the
# _exact_select/_exact_preempts pattern on the uniprocessor schedulers
GlobalFixedPriorityPolicy._exact_assign = _GlobalPolicy.assign  # type: ignore[attr-defined]
GlobalFixedPriorityPolicy._exact_rank = GlobalFixedPriorityPolicy._rank  # type: ignore[attr-defined]
GlobalEDFPolicy._exact_assign = _GlobalPolicy.assign  # type: ignore[attr-defined]
GlobalEDFPolicy._exact_rank = GlobalEDFPolicy._rank  # type: ignore[attr-defined]


class AperiodicRouter:
    """Routes aperiodic arrivals onto the per-core servers.

    The golden path is plain round-robin — byte-identical to the
    historical ``i % n_cores`` placement when the decision points walk the
    jobs in submission order.  With an :class:`OverloadConfig` the router
    becomes overload-aware: a server whose circuit breaker is OPEN (a
    passive state check — probing is the breaker's own job, not the
    router's) or whose pending queue already sits at its bound is skipped,
    and when every server is saturated the arrival falls back to the
    least-loaded one, letting that server's own shedding policy decide.

    Routing decisions are made at *release* time (``route`` is the submit
    callback), so they see live breaker and queue state.
    """

    def __init__(
        self,
        servers: "list[AperiodicServer]",
        overload: "OverloadConfig | None" = None,
    ) -> None:
        if not servers:
            raise ValueError("AperiodicRouter needs at least one server")
        self.servers = list(servers)
        self.overload = overload
        #: job name -> core index, filled as arrivals are routed
        self.core_of_job: dict[str, int] = {}
        self._next = 0

    def pick(self, job) -> int:
        """Choose the core (= server index) for one arriving job."""
        n = len(self.servers)
        start = self._next
        self._next = (start + 1) % n
        if self.overload is None or not self.overload.active:
            return start
        for offset in range(n):
            k = (start + offset) % n
            if self._admissible(self.servers[k]):
                return k
        return min(range(n), key=lambda k: self._load(self.servers[k]))

    def route(self, now: float, job) -> None:
        """Submit callback: pick a server, record the core, hand over."""
        k = self.pick(job)
        self.core_of_job[job.name] = k
        self.servers[k].submit(now, job)

    def _admissible(self, server) -> bool:
        breaker = getattr(server, "breaker", None)
        if breaker is not None and breaker.is_open:
            return False
        bound = self.overload.queue_bound if self.overload else None
        if bound is not None and bound.active:
            pending = server.pending
            if bound.max_items is not None and len(pending) >= bound.max_items:
                return False
            if (
                bound.max_cost is not None
                and self._load(server) >= bound.max_cost
            ):
                return False
        return True

    @staticmethod
    def _load(server) -> float:
        return sum(job.declared_cost for job in server.pending)


class PartitionedPolicy(MulticorePolicy):
    """Static placement: each core runs its own uniprocessor policy.

    ``core_of`` maps entity *names* to cores (periodic tasks from a
    :class:`~repro.smp.partition.Partition`, plus any per-core servers
    registered under their own names).  ``policies`` optionally gives
    each core its own :class:`~repro.sim.engine.SchedulingPolicy`; the
    default is preemptive fixed-priority everywhere, the RTSJ baseline.
    """

    name = "partitioned"

    def __init__(
        self,
        core_of: dict[str, int],
        n_cores: int,
        policies: list[SchedulingPolicy] | None = None,
    ) -> None:
        if policies is not None and len(policies) != n_cores:
            raise ValueError(
                f"need one policy per core: got {len(policies)} "
                f"for {n_cores} cores"
            )
        for name, core in core_of.items():
            if not 0 <= core < n_cores:
                raise ValueError(
                    f"entity {name!r} pinned to core {core}, but there "
                    f"are only {n_cores} cores"
                )
        self.core_of = dict(core_of)
        self.n_cores = n_cores
        self.policies = (
            policies if policies is not None
            else [FixedPriorityPolicy() for _ in range(n_cores)]
        )

    def assign(self, now, ready, n_cores, running):
        per_core: dict[int, list[Entity]] = {}
        for entity in ready:
            try:
                core = self.core_of[entity.name]
            except KeyError:
                raise KeyError(
                    f"entity {entity.name!r} has no core assignment; "
                    "register it in core_of before running"
                ) from None
            per_core.setdefault(core, []).append(entity)
        assignment: dict[int, Entity] = {}
        for core, candidates in per_core.items():
            current = running[core]
            choice = self.policies[core].select(now, candidates)
            if (
                current is not None
                and current.ready(now)
                and choice is not current
                and not self.policies[core].preempts(choice, current, now)
            ):
                choice = current
            if choice is not None:
                assignment[core] = choice
        return assignment


PartitionedPolicy._exact_assign = PartitionedPolicy.assign  # type: ignore[attr-defined]
