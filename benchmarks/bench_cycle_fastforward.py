"""Hyperperiod fast-forward benchmark: O(hyperperiod) long horizons.

Not a paper table — this pins the PR's claim that ``cycle="fastforward"``
makes long-horizon simulation cost O(hyperperiod) instead of O(horizon):
a dense dyadic periodic set is run to 10x, 100x and 1000x its
hyperperiod with the knob off (full simulation) and on (detect the
release-pattern cycle once, then skip whole windows with exact metric
extrapolation).  The fast-forwarded run's per-task metrics are asserted
bit-identical to the full run before anything is timed, so the speedup
is never bought with drift.

The committed medians live in ``benchmarks/BENCH_engine.json``; the
``fastforward/off`` ratio at 100x hyperperiod is guarded by the
``bench-smoke`` CI job (must stay under 0.1 — at least 10x faster).
"""

from __future__ import annotations

from repro.cycle import cross_check, periodic_summary
from repro.sim import FixedPriorityPolicy, Simulation
from repro.workload.spec import PeriodicTaskSpec

# dense dyadic set on the 0.25-tu grid: hyperperiod 16 tu, utilization
# ~0.86, every release/completion instant exactly representable so the
# skip's exactness gate always commits
CYCLE_TASKS = [
    ("a", 0.75, 2.0, 0.0),
    ("b", 1.0, 4.0, 0.25),
    ("c", 1.25, 8.0, 0.0),
    ("d", 1.5, 16.0, 1.5),
    ("e", 2.0, 16.0, 0.0),
]
HYPERPERIOD = 16.0


def _build(cycle: str) -> Simulation:
    sim = Simulation(FixedPriorityPolicy(), cycle=cycle)
    for i, (name, cost, period, offset) in enumerate(CYCLE_TASKS):
        sim.add_periodic_task(PeriodicTaskSpec(
            name, cost=cost, period=period, offset=offset,
            priority=10 - i,
        ))
    return sim


def _run(cycle: str, multiplier: int):
    sim = _build(cycle)
    sim.run(until=HYPERPERIOD * multiplier)
    return sim


def _assert_exact(multiplier: int) -> None:
    """The fast-forwarded metrics must match the full run bit-for-bit."""
    outcome = cross_check(_build, HYPERPERIOD * multiplier)
    assert outcome.fast_forwarded, "tracker never engaged"
    assert outcome.matched, f"metric drift: {outcome.mismatches}"


def _report(sim) -> None:
    report = sim._cycle_report
    summary = periodic_summary(sim)
    skipped = (
        f", skipped {report.windows_skipped} window(s) "
        f"({report.skipped_time:g} tu)"
        if report is not None and report.fast_forwarded else ""
    )
    print(f"\n{summary.total_released} release(s) accounted over "
          f"{summary.horizon:g} tu{skipped}")


def bench_cycle_off_10x(benchmark):
    sim = benchmark(_run, "off", 10)
    _report(sim)


def bench_cycle_fastforward_10x(benchmark):
    _assert_exact(10)
    sim = benchmark(_run, "fastforward", 10)
    assert sim._cycle_report.fast_forwarded
    _report(sim)


def bench_cycle_off_100x(benchmark):
    sim = benchmark(_run, "off", 100)
    _report(sim)


def bench_cycle_fastforward_100x(benchmark):
    _assert_exact(100)
    sim = benchmark(_run, "fastforward", 100)
    assert sim._cycle_report.fast_forwarded
    _report(sim)


def bench_cycle_off_1000x(benchmark):
    sim = benchmark(_run, "off", 1000)
    _report(sim)


def bench_cycle_fastforward_1000x(benchmark):
    _assert_exact(1000)
    sim = benchmark(_run, "fastforward", 1000)
    assert sim._cycle_report.fast_forwarded
    _report(sim)
