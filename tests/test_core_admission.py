"""Unit tests for on-line admission control (paper Sections 2 & 7)."""

from __future__ import annotations

import pytest

from repro.core import (
    BucketAdmissionController,
    IdealPSAdmissionController,
    PollingTaskServer,
    ServableAsyncEvent,
    ServableAsyncEventHandler,
    TaskServerParameters,
)
from repro.rtsj import OverheadModel, RelativeTime, RTSJVirtualMachine
from repro.sim.task import JobState
from conftest import M


def bucket_setup(capacity=4.0, period=6.0, horizon=60.0):
    vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
    params = TaskServerParameters(
        RelativeTime.from_units(capacity), RelativeTime.from_units(period),
        priority=30,
    )
    server = PollingTaskServer(params, queue="bucket")
    server.attach(vm, round(horizon * M))
    return vm, server, BucketAdmissionController(server)


class TestBucketAdmission:
    def test_requires_bucket_queue(self):
        vm = RTSJVirtualMachine(overhead=OverheadModel.zero())
        params = TaskServerParameters(
            RelativeTime(4, 0), RelativeTime(6, 0), priority=30
        )
        server = PollingTaskServer(params, queue="fifo")
        server.attach(vm, 60 * M)
        with pytest.raises(ValueError, match="bucket"):
            BucketAdmissionController(server)

    def test_accepts_when_deadline_met(self):
        vm, server, ctrl = bucket_setup()
        decisions = []
        vm.schedule_event(
            1 * M,
            lambda now: decisions.append(
                ctrl.test(RelativeTime(2, 0), RelativeTime(10, 0))
            ),
        )
        vm.run(20 * M)
        (d,) = decisions
        # empty queue at t=1: served by the instance at 6, finish 8 -> 7
        assert d.accepted
        assert d.predicted_response_time == pytest.approx(7.0)
        assert d.margin == pytest.approx(3.0)

    def test_rejects_when_deadline_missed(self):
        vm, server, ctrl = bucket_setup()
        decisions = []
        vm.schedule_event(
            1 * M,
            lambda now: decisions.append(
                ctrl.test(RelativeTime(2, 0), RelativeTime(5, 0))
            ),
        )
        vm.run(20 * M)
        (d,) = decisions
        assert not d.accepted
        assert d.margin < 0

    def test_fire_if_admitted_gates_the_event(self):
        vm, server, ctrl = bucket_setup()
        h_ok = ServableAsyncEventHandler(RelativeTime(2, 0), server, name="ok")
        h_no = ServableAsyncEventHandler(RelativeTime(2, 0), server, name="no")
        e_ok, e_no = ServableAsyncEvent("ok"), ServableAsyncEvent("no")
        e_ok.add_servable_handler(h_ok)
        e_no.add_servable_handler(h_no)
        vm.schedule_event(
            1 * M,
            lambda now: ctrl.fire_if_admitted(e_ok, h_ok, RelativeTime(10, 0)),
        )
        vm.schedule_event(
            1 * M,
            lambda now: ctrl.fire_if_admitted(e_no, h_no, RelativeTime(3, 0)),
        )
        vm.run(30 * M)
        assert len(server.releases) == 1
        assert server.releases[0].handler is h_ok
        assert server.jobs[0].state is JobState.COMPLETED
        assert ctrl.acceptance_ratio == pytest.approx(0.5)

    def test_admitted_predictions_hold_at_runtime(self):
        vm, server, ctrl = bucket_setup()
        fired = []

        def admit(now, cost, deadline):
            h = ServableAsyncEventHandler(
                RelativeTime.from_units(cost), server,
                name=f"h{len(fired)}",
            )
            e = ServableAsyncEvent(h.name)
            e.add_servable_handler(h)
            d = ctrl.fire_if_admitted(e, h, RelativeTime.from_units(deadline))
            fired.append((h.name, d))

        for t, cost, deadline in [(0.5, 2.0, 9.0), (1.0, 3.0, 16.0),
                                  (2.0, 2.0, 20.0), (3.0, 4.0, 10.0)]:
            vm.schedule_event(
                round(t * M),
                lambda now, c=cost, dl=deadline: admit(now, c, dl),
            )
        vm.run(60 * M)
        accepted = {name: d for name, d in fired if d.accepted}
        jobs = {j.name.split("@")[0]: j for j in server.jobs}
        assert set(jobs) == set(accepted)
        for name, decision in accepted.items():
            job = jobs[name]
            assert job.state is JobState.COMPLETED
            assert job.response_time == pytest.approx(
                decision.predicted_response_time
            )
            assert job.response_time <= decision.relative_deadline + 1e-9


class TestIdealAdmission:
    def test_accept_and_backlog_growth(self):
        ctrl = IdealPSAdmissionController(capacity=4.0, period=6.0)
        d1 = ctrl.test(now=0.0, cost=2.0, relative_deadline=10.0, cs_t=4.0)
        assert d1.accepted
        assert d1.predicted_response_time == pytest.approx(2.0)
        # second event queues behind the first (deadline order)
        d2 = ctrl.test(now=0.0, cost=3.0, relative_deadline=12.0, cs_t=4.0)
        assert d2.accepted
        assert d2.predicted_response_time == pytest.approx(7.0)

    def test_reject_does_not_pollute_backlog(self):
        ctrl = IdealPSAdmissionController(capacity=4.0, period=6.0)
        d = ctrl.test(now=0.0, cost=4.0, relative_deadline=2.0, cs_t=0.0)
        assert not d.accepted
        assert ctrl.backlog == []

    def test_expire_drops_past_deadlines(self):
        ctrl = IdealPSAdmissionController(capacity=4.0, period=6.0)
        ctrl.test(now=0.0, cost=2.0, relative_deadline=5.0, cs_t=4.0)
        ctrl.test(now=0.0, cost=2.0, relative_deadline=50.0, cs_t=4.0)
        ctrl.expire(now=10.0)
        assert len(ctrl.backlog) == 1

    def test_capacity_query_helper(self):
        ctrl = IdealPSAdmissionController(capacity=4.0, period=6.0)
        assert ctrl.server_capacity_at(1.0, consumed_in_instance=1.5) == 2.5
        with pytest.raises(ValueError):
            ctrl.server_capacity_at(0.0, consumed_in_instance=5.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IdealPSAdmissionController(capacity=0.0, period=6.0)
        with pytest.raises(ValueError):
            IdealPSAdmissionController(capacity=7.0, period=6.0)
