"""Differential checking: the simulator arm vs the emulated-RTSJ arm.

The paper's Tables 2-5 compare the *ideal* literature servers (RTSS
simulation) against the *framework* implementations (emulated RTSJ VM).
The two arms legitimately diverge — the RTSJ servers are non-resumable
and the VM charges runtime overheads — but the divergence is bounded and
one-sided: with overheads disabled the implementation can be slower
(AART up) and serve fewer jobs (ASR down), never meaningfully faster.
A regression in either arm shows up as divergence beyond tolerance, in
either direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..rtsj import OverheadModel
from ..workload.spec import GeneratedSystem
from .violations import VerificationReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.metrics import RunMetrics

__all__ = [
    "DifferentialTolerance",
    "batch_differential_check",
    "differential_check",
]


@dataclass(frozen=True)
class DifferentialTolerance:
    """Calibrated allowances between the two arms (zero-overhead VM).

    ``aart_ratio`` bounds how much slower the implementation's average
    response may be, as a multiple of the ideal's (plus ``aart_slack``
    absolute slack for tiny samples); ``aart_speedup`` bounds the other
    direction — the implementation beating the ideal signals a broken
    ideal arm.  ``asr_drop`` / ``air_rise`` bound the served/interrupted
    ratios, which move when the non-resumable servers abandon work the
    ideal ones would finish.
    """

    aart_ratio: float = 2.5
    aart_slack: float = 1.0
    # non-resumable service can legitimately beat the ideal on single
    # jobs (unspent budget the resumable server would have drained), so
    # the speedup alarm needs headroom beyond per-job noise
    aart_speedup: float = 0.30
    asr_drop: float = 0.35
    air_rise: float = 0.60

    def __post_init__(self) -> None:
        if self.aart_ratio < 1.0:
            raise ValueError(
                f"aart_ratio must be >= 1, got {self.aart_ratio}"
            )


def differential_check(
    system: GeneratedSystem,
    policy: str = "polling",
    tolerance: DifferentialTolerance | None = None,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Run both arms on one system and flag metric divergence.

    The VM runs with :meth:`OverheadModel.zero` so the only legitimate
    differences are structural (non-resumable service, polling instants
    vs immediate service).  Metrics compared: AART (average aperiodic
    response time), ASR (served ratio) and AIR (interrupted ratio).
    """
    from ..experiments.campaign import execute_system, simulate_system

    if tolerance is None:
        tolerance = DifferentialTolerance()
    if report is None:
        report = VerificationReport()
    ideal = simulate_system(system, policy=policy).metrics
    impl = execute_system(
        system, policy=policy, overhead=OverheadModel.zero()
    ).metrics
    tag = (f"system={system.system_id}",)
    if ideal.released != impl.released:
        report.record(
            "released-count-divergence", system.horizon, tag,
            f"ideal released {ideal.released}, implementation "
            f"{impl.released}",
        )
        return report  # the arms did not even see the same workload
    if ideal.released == 0:
        return report
    if ideal.average_response_time is not None:
        bound = (
            ideal.average_response_time * tolerance.aart_ratio
            + tolerance.aart_slack
        )
        if (
            impl.average_response_time is not None
            and impl.average_response_time > bound
        ):
            report.record(
                "aart-divergence", system.horizon, tag,
                f"implementation AART {impl.average_response_time:g} "
                f"exceeds {bound:g} (ideal {ideal.average_response_time:g} "
                f"x{tolerance.aart_ratio:g} + {tolerance.aart_slack:g})",
            )
        if (
            impl.average_response_time is not None
            # AART averages over *served* jobs: when the non-resumable
            # implementation abandons the slow tail its average drops
            # legitimately, so the speedup check needs matched samples
            and impl.served == ideal.served
            and impl.average_response_time
            < ideal.average_response_time * (1.0 - tolerance.aart_speedup)
            - 1e-9
        ):
            report.record(
                "aart-speedup", system.horizon, tag,
                f"implementation AART {impl.average_response_time:g} beats "
                f"the ideal {ideal.average_response_time:g} — the ideal "
                "arm is leaving service on the table",
            )
    ideal_asr = ideal.served / ideal.released
    impl_asr = impl.served / impl.released
    if impl_asr < ideal_asr - tolerance.asr_drop:
        report.record(
            "asr-divergence", system.horizon, tag,
            f"implementation ASR {impl_asr:.3f} vs ideal "
            f"{ideal_asr:.3f} (allowed drop {tolerance.asr_drop:g})",
        )
    ideal_air = ideal.interrupted / ideal.released
    impl_air = impl.interrupted / impl.released
    if impl_air > ideal_air + tolerance.air_rise:
        report.record(
            "air-divergence", system.horizon, tag,
            f"implementation AIR {impl_air:.3f} vs ideal "
            f"{ideal_air:.3f} (allowed rise {tolerance.air_rise:g})",
        )
    return report


def batch_differential_check(
    system: GeneratedSystem,
    policy: str,
    batch_metrics: "RunMetrics",
) -> list[str]:
    """Compare one batched-kernel result against the reference kernel.

    Unlike :func:`differential_check`, which compares two *legitimately
    divergent* arms under calibrated tolerances, the batched kernel
    promises **bit-identical** metrics: the reference kernel is the
    oracle and every field must match exactly — counts as integers,
    response times float-for-float.  Returns a list of human-readable
    mismatch descriptions (empty = the sample passed).
    """
    from ..experiments.campaign import simulate_system

    reference = simulate_system(system, policy=policy).metrics
    mismatches: list[str] = []
    tag = f"system={system.system_id} policy={policy}"
    for field in ("released", "served", "interrupted"):
        ref, got = getattr(reference, field), getattr(batch_metrics, field)
        if ref != got:
            mismatches.append(f"{tag}: {field} reference={ref} batch={got}")
    if reference.average_response_time != batch_metrics.average_response_time:
        mismatches.append(
            f"{tag}: average_response_time "
            f"reference={reference.average_response_time!r} "
            f"batch={batch_metrics.average_response_time!r}"
        )
    if reference.response_times != batch_metrics.response_times:
        limit = min(len(reference.response_times),
                    len(batch_metrics.response_times))
        detail = next(
            (
                f"index {j}: reference={reference.response_times[j]!r} "
                f"batch={batch_metrics.response_times[j]!r}"
                for j in range(limit)
                if reference.response_times[j]
                != batch_metrics.response_times[j]
            ),
            f"length reference={len(reference.response_times)} "
            f"batch={len(batch_metrics.response_times)}",
        )
        mismatches.append(f"{tag}: response_times differ ({detail})")
    return mismatches
