"""Scheduling policies implemented by RTSS (paper Section 5)."""

from .fp import FixedPriorityPolicy
from .edf import EarliestDeadlineFirstPolicy
from .dover import DOverScheduler, DOverResult

__all__ = [
    "FixedPriorityPolicy",
    "EarliestDeadlineFirstPolicy",
    "DOverScheduler",
    "DOverResult",
]
