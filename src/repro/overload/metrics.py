"""Overload-campaign reporting: shed rate, breaker activity, recovery.

Everything is computed from the shared trace format plus the run's job
records, so the same report works for the ideal-simulator arm and the
emulated-RTSJ execution arm (and for per-core SMP traces, which reuse the
format).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.trace import ExecutionTrace, TraceEventKind

__all__ = ["OverloadReport", "measure_overload"]

#: SHED events whose detail starts with one of these came from the
#: breaker gate rather than a queue bound
_BREAKER_DETAIL = "breaker open"


@dataclass(frozen=True)
class OverloadReport:
    """Overload behaviour of one run (all times in tu)."""

    released: int
    shed: int
    breaker_rejections: int
    breaker_opens: int
    breaker_closes: int
    mode_changes: int
    time_in_degraded: float
    periodic_deadline_misses: int
    #: time from the last overload signal to full recovery (mode normal,
    #: breakers closed, response times back at the pre-burst level);
    #: 0.0 when the run never sheds, ``inf`` when recovery was not
    #: observed inside the horizon
    recovery_time: float
    pre_burst_aart: float | None = None

    @property
    def shed_rate(self) -> float:
        """Sheds (queue + breaker) per released aperiodic event."""
        if not self.released:
            return 0.0
        return self.shed / self.released

    @property
    def recovered(self) -> bool:
        return math.isfinite(self.recovery_time)

    def as_row(self) -> dict[str, float]:
        return {
            "shed_rate": self.shed_rate,
            "breaker_opens": float(self.breaker_opens),
            "time_in_degraded": self.time_in_degraded,
            "recovery_time": self.recovery_time,
        }


def measure_overload(
    trace: ExecutionTrace,
    jobs=(),
    horizon: float | None = None,
    pre_burst_aart: float | None = None,
    aart_tolerance: float = 0.5,
    released: int | None = None,
) -> OverloadReport:
    """Distill one run's overload behaviour from its trace.

    ``jobs`` are the run's aperiodic job records (for released counts and
    the response-time recovery criterion); ``pre_burst_aart`` is the
    average response time of an unfaulted baseline run of the same
    system — recovery then additionally requires a completion whose
    response time is back within ``(1 + aart_tolerance) *
    pre_burst_aart``.
    """
    end = horizon if horizon is not None else trace.makespan
    sheds = trace.events_of(TraceEventKind.SHED)
    opens = trace.events_of(TraceEventKind.BREAKER_OPEN)
    closes = trace.events_of(TraceEventKind.BREAKER_CLOSE)
    modes = trace.events_of(TraceEventKind.MODE_CHANGE)
    misses = trace.events_of(TraceEventKind.DEADLINE_MISS)
    breaker_rejections = sum(
        1 for e in sheds if e.detail.startswith(_BREAKER_DETAIL)
    )

    # degraded-time account from the MODE_CHANGE alternation
    time_in_degraded = 0.0
    entered: float | None = None
    for event in modes:
        if event.detail.startswith("degraded"):
            if entered is None:
                entered = event.time
        elif entered is not None:
            time_in_degraded += event.time - entered
            entered = None
    if entered is not None:
        time_in_degraded += max(0.0, end - entered)

    # recovery: from the last overload signal to the instant every
    # recovery criterion is met
    signals = [e.time for e in sheds] + [e.time for e in opens]
    signals += [e.time for e in modes if e.detail.startswith("degraded")]
    if not signals:
        recovery = 0.0
    else:
        last_signal = max(signals)
        candidates: list[float] = []
        recovered = True
        if opens:
            later_closes = [e.time for e in closes if e.time >= opens[-1].time]
            if later_closes:
                candidates.append(min(later_closes))
            else:
                recovered = False
        if any(e.detail.startswith("degraded") for e in modes):
            normals = [
                e.time for e in modes
                if e.detail.startswith("normal") and e.time >= last_signal
            ]
            if normals:
                candidates.append(min(normals))
            else:
                recovered = False
        if pre_burst_aart is not None and jobs:
            target = pre_burst_aart * (1.0 + aart_tolerance)
            back = [
                job.finish_time
                for job in jobs
                if job.response_time is not None
                and job.finish_time is not None
                and job.finish_time >= last_signal
                and job.response_time <= target
            ]
            if back:
                candidates.append(min(back))
            else:
                recovered = False
        if not recovered:
            recovery = math.inf
        else:
            recovery = max(candidates, default=last_signal) - last_signal
            recovery = max(recovery, 0.0)

    if released is None:
        # breaker rejections happen before a job record exists, so they
        # are counted on top of the job list
        released = (
            len(jobs) + breaker_rejections if jobs
            else len(trace.events_of(TraceEventKind.RELEASE))
        )
    return OverloadReport(
        released=released,
        shed=len(sheds),
        breaker_rejections=breaker_rejections,
        breaker_opens=len(opens),
        breaker_closes=len(closes),
        mode_changes=len(modes),
        time_in_degraded=time_in_degraded,
        periodic_deadline_misses=len(misses),
        recovery_time=recovery,
        pre_burst_aart=pre_burst_aart,
    )
