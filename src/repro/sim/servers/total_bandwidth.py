"""Total Bandwidth Server (Spuri & Buttazzo; deadline-environment servers
surveyed by the paper's citation [5], Ghazalie & Baker 1995).

RTSS schedules with EDF as well as fixed priorities (paper Section 5);
the TBS is the natural aperiodic server for the EDF side.  It holds no
capacity account at all: the *k*-th aperiodic job receives the deadline

    d_k = max(r_k, d_{k-1}) + C_k / U_s

where ``U_s`` is the server's reserved bandwidth, and is then submitted
to the EDF scheduler as an ordinary job.  As long as the periodic EDF
load plus ``U_s`` does not exceed 1, every deadline is met.

Unlike the fixed-priority servers of this package, the TBS is *not* an
:class:`~repro.sim.engine.Entity` wrapper around a queue — each job
becomes its own EDF competitor the moment its deadline is stamped.
"""

from __future__ import annotations

from ..engine import Entity, Simulation
from ..task import AperiodicJob, JobState
from ..trace import TraceEventKind

__all__ = ["TotalBandwidthServer"]


class _TBSJobEntity(Entity):
    """One deadline-stamped aperiodic job competing under EDF."""

    def __init__(self, job: AperiodicJob, priority: int) -> None:
        self.job = job
        self.name = job.name
        self.priority = priority
        self._pending = True

    def ready(self, now: float) -> bool:
        return self._pending and not self.job.done

    def budget(self, now: float) -> float:
        return self.job.remaining

    def current_job_label(self) -> str | None:
        return self.job.name

    def current_deadline(self, now: float) -> float:
        assert self.job.deadline is not None
        return self.job.deadline

    def consume(self, start: float, duration: float, sim: Simulation) -> None:
        if self.job.start_time is None:
            self.job.start_time = start
            sim.trace.add_event(start, TraceEventKind.START, self.job.name)
        self.job.consume(duration)

    def on_budget_exhausted(self, now: float, sim: Simulation) -> None:
        self._pending = False
        self.job.state = JobState.COMPLETED
        self.job.finish_time = now
        sim.trace.add_event(now, TraceEventKind.COMPLETION, self.job.name)


class TotalBandwidthServer:
    """Deadline-assignment server for EDF simulations.

    Parameters
    ----------
    utilization:
        The bandwidth ``U_s`` reserved for aperiodic traffic, in (0, 1).

    Use with an EDF simulation::

        sim = Simulation(EarliestDeadlineFirstPolicy())
        tbs = TotalBandwidthServer(utilization=0.25)
        tbs.attach(sim, horizon=100.0)
        sim.submit_aperiodic(job, tbs.submit)
    """

    def __init__(self, utilization: float, name: str = "TBS") -> None:
        if not 0 < utilization < 1:
            raise ValueError(
                f"utilization must be in (0, 1), got {utilization}"
            )
        self.utilization = utilization
        self.name = name
        self.submitted: list[AperiodicJob] = []
        self._last_deadline = 0.0
        self._sim: Simulation | None = None

    def attach(self, sim: Simulation, horizon: float) -> None:
        """Bind to a simulation (no periodic bookkeeping needed)."""
        self._sim = sim

    def submit(self, now: float, job: AperiodicJob) -> None:
        """Arrival hook: stamp the TBS deadline and enter the EDF race."""
        sim = self._sim
        if sim is None:
            raise RuntimeError(
                f"server {self.name!r} is not attached to a simulation"
            )
        # the deadline is stamped from the *declared* worst-case cost, as
        # in the literature (the actual demand may be smaller)
        deadline = (
            max(now, self._last_deadline)
            + job.declared_cost / self.utilization
        )
        self._last_deadline = deadline
        job.deadline = deadline
        self.submitted.append(job)
        sim.trace.add_event(
            now, TraceEventKind.RELEASE, job.name, f"tbs-deadline={deadline:g}"
        )
        entity = _TBSJobEntity(job, priority=0)
        # late registration is safe: the entity list is only frozen for
        # periodic pre-scheduling, which the TBS does not use
        sim.entities.append(entity)

    @property
    def completed(self) -> list[AperiodicJob]:
        return [j for j in self.submitted if j.state is JobState.COMPLETED]

    @property
    def served_ratio(self) -> float:
        if not self.submitted:
            return 1.0
        return len(self.completed) / len(self.submitted)
