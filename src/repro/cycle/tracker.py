"""Hyperperiod cycle detection and state fast-forward.

Grolleau, Goossens and Cucu-Grosjean ("On the periodic behavior of
real-time schedulers on identical multiprocessor platforms",
arXiv:1305.3849) prove that a deterministic memoryless scheduler over a
periodic task set reaches a cyclic state: once the kernel state observed
at one release-pattern boundary (a multiple of the hyperperiod, offset
adjusted) recurs at a later boundary, the schedule between the two
boundaries repeats verbatim for the rest of the horizon.

:class:`CycleTracker` exploits that constructively.  It samples a
canonical fingerprint of the kernel state at each boundary; on the first
match it has *proved* a cycle of the simulated system (no appeal to the
theorem is needed — equal state plus a deterministic kernel implies equal
futures), records a :attr:`~repro.sim.trace.TraceEventKind.CYCLE` event,
and — in ``fastforward`` mode — advances the kernel over ``q`` whole
cycles in O(state) instead of O(q · hyperperiod):

* every timed-callback heap entry is shifted by ``q·P`` (a uniform shift
  preserves the heap order bit-for-bit);
* every lazy release chain's instance cell advances by ``q·P/Tᵢ``;
* every queued job is re-labelled as the activation the full simulation
  would have queued at the resume instant (release/deadline recomputed
  exactly from the advanced instance number).

The skip only commits when the recomputed absolute times equal the
shifted ones bit-for-bit (true for any task set whose periods, offsets
and deadlines are binary-representable — integers, multiples of 0.25,
...); otherwise the tracker stands down loudly and the run continues in
full, still correct, merely slower.  The same stand-down discipline
guards every kernel feature that makes state non-memoryless (servers,
aperiodic streams, enforcement, watchdogs, monitors, observers, patched
hooks, non-whitelisted policies), mirroring the ``_exact_*`` identity
checks of the PR 5 fast path.
"""

from __future__ import annotations

import logging
import math
from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction

from ..sim.engine import (
    EPS,
    PeriodicTaskEntity,
    _CycleSkip,
    _EXACT_CONSUME,
    _EXACT_EXHAUSTED,
    _EXACT_RELEASE,
)
from ..sim.task import JobState
from ..sim.trace import CompactTrace, ExecutionTrace, TraceEventKind

__all__ = [
    "CycleReport",
    "CycleTracker",
    "STAND_DOWNS",
    "cycle_hyperperiod",
]

logger = logging.getLogger("repro.cycle")

#: global stand-down tally (reason -> count); the "loudly, counted" rail
STAND_DOWNS: Counter = Counter()

_MISS = TraceEventKind.DEADLINE_MISS
_ABORT = TraceEventKind.ABORT
_MIGRATION = TraceEventKind.MIGRATION
_CYCLE = TraceEventKind.CYCLE
_COMPLETED = JobState.COMPLETED


#: finest time grid the skip arithmetic accepts: 2^-20 tu.  A float is
#: "on grid" when exactly representable with <= 20 fractional bits; sums
#: and integer multiples of such values stay bit-exact up to 2^33 tu,
#: so every skipped window is a bit-exact translate of the captured one.
_GRID = 1 << 20


def _on_grid(value: float) -> bool:
    # a float's Fraction denominator is always a power of two, so a
    # magnitude test is the whole check
    return Fraction(value).denominator <= _GRID


def _stand_down(reason: str, mode: str) -> None:
    STAND_DOWNS[reason] += 1
    if mode == "fastforward":
        logger.warning("cycle fastforward stood down: %s", reason)


@dataclass
class CycleReport:
    """Outcome of cycle detection for one run (``sim._cycle_report``)."""

    mode: str
    #: "ineligible" | "armed" | "no-cycle" | "detected" | "fastforwarded"
    status: str = "armed"
    #: why the tracker stood down (ineligible / skip refused)
    reason: str = ""
    hyperperiod: float = 0.0
    #: first sampled boundary (offset-adjusted hyperperiod multiple)
    base: float = 0.0
    samples: int = 0
    cycle_start: float | None = None
    cycle_period: float | None = None
    detected_at: float | None = None
    windows_skipped: int = 0
    skipped_time: float = 0.0
    # -- per-cycle accumulators captured at detection ----------------------
    window_busy: dict = field(default_factory=dict)
    window_released: dict = field(default_factory=dict)
    window_completed: dict = field(default_factory=dict)
    window_missed: dict = field(default_factory=dict)
    window_aborted: dict = field(default_factory=dict)
    window_response_sum: dict = field(default_factory=dict)
    window_response_max: dict = field(default_factory=dict)
    #: MIGRATION events per cycle (multicore kernel only)
    window_migrations: int = 0

    @property
    def fast_forwarded(self) -> bool:
        return self.status == "fastforwarded"


@dataclass(frozen=True)
class _Sample:
    """Trace cursor recorded at one boundary."""

    time: float
    seg_count: int
    evt_count: int
    #: trailing segment rows that may still merge-extend past this
    #: boundary: (row index, end recorded at the boundary)
    tails: tuple[tuple[int, float], ...]


def cycle_hyperperiod(tasks) -> float:
    """Exact hyperperiod of ``PeriodicTask``s (delegates to
    :func:`repro.analysis.utilization.hyperperiod`)."""
    from ..analysis.utilization import hyperperiod

    return hyperperiod([t.spec for t in tasks])


# -- eligibility -------------------------------------------------------------


def _policy_reason(sim) -> str:
    """"" when the scheduling policy is whitelisted and pristine."""
    policy = sim.policy
    policy_type = type(policy)
    if hasattr(sim, "n_cores"):  # multicore kernel
        from ..smp.policies import (
            GlobalEDFPolicy,
            GlobalFixedPriorityPolicy,
            PartitionedPolicy,
        )

        if policy_type in (GlobalFixedPriorityPolicy, GlobalEDFPolicy):
            if (
                policy_type.assign
                is getattr(policy_type, "_exact_assign", None)
                and policy_type._rank
                is getattr(policy_type, "_exact_rank", None)
            ):
                return ""
            return "patched-policy"
        if policy_type is PartitionedPolicy:
            if policy_type.assign is not getattr(
                policy_type, "_exact_assign", None
            ):
                return "patched-policy"
            from ..sim.schedulers.fp import FixedPriorityPolicy

            for per_core in policy.policies:
                per_type = type(per_core)
                if per_type is not FixedPriorityPolicy or (
                    per_type.select
                    is not getattr(per_type, "_exact_select", None)
                    or per_type.preempts
                    is not getattr(per_type, "_exact_preempts", None)
                ):
                    return "non-memoryless-per-core-policy"
            return ""
        return "non-memoryless-policy"
    from ..sim.schedulers.edf import EarliestDeadlineFirstPolicy
    from ..sim.schedulers.fp import FixedPriorityPolicy

    if policy_type not in (FixedPriorityPolicy, EarliestDeadlineFirstPolicy):
        return "non-memoryless-policy"
    if (
        policy_type.select is not getattr(policy_type, "_exact_select", None)
        or policy_type.preempts
        is not getattr(policy_type, "_exact_preempts", None)
    ):
        return "patched-policy"
    return ""


def _eligibility_reason(sim, mode: str) -> str:
    """"" when cycle tracking may be armed on ``sim``; called from run()
    *before* periodic releases are scheduled, so a non-empty callback
    queue means externally scheduled events."""
    if not sim.periodic_tasks:
        return "no-periodic-tasks"
    if sim.aperiodic_jobs:
        return "aperiodic-jobs"
    if len(sim.queue):
        return "external-events"
    if sim.enforcement is not None:
        return "enforcement"
    if sim.watchdog is not None:
        return "watchdog"
    if sim.segment_observers:
        return "segment-observers"
    if hasattr(sim.trace, "finish_monitors"):
        return "monitors"
    if type(sim.trace) not in (ExecutionTrace, CompactTrace):
        return "custom-trace"
    if mode == "fastforward" and sim.kernel == "reference":
        # the eager reference path pre-creates every job and holds no
        # advanceable release chains; detection still works on it
        return "reference-kernel"
    if any(h is not None for _t, _e, h in sim._pending_periodic):
        return "per-task-horizon"
    if any(type(e) is not PeriodicTaskEntity for e in sim.entities):
        return "non-periodic-entity"
    if (
        PeriodicTaskEntity.release is not _EXACT_RELEASE
        or PeriodicTaskEntity.consume is not _EXACT_CONSUME
        or PeriodicTaskEntity.on_budget_exhausted is not _EXACT_EXHAUSTED
    ):
        return "patched-hook"
    return _policy_reason(sim)


# -- the tracker -------------------------------------------------------------


class CycleTracker:
    """Samples kernel-state fingerprints at hyperperiod boundaries and
    fast-forwards the kernel on the first recurrence."""

    @classmethod
    def install(cls, sim, until: float) -> CycleReport:
        """Arm a tracker on ``sim`` (both kernels) if it is eligible.

        Returns the :class:`CycleReport`; ``sim._cycle_tracker`` is set
        only when armed.  Must run before periodic releases are
        scheduled (the eligibility probe reads the pristine queue and
        the tracker disables deadline-sentinel elision, which release
        closures capture at creation).
        """
        mode = sim.cycle
        report = CycleReport(mode=mode)
        reason = _eligibility_reason(sim, mode)
        if not reason:
            try:
                hyper = cycle_hyperperiod(sim.periodic_tasks)
            except (OverflowError, ValueError):
                reason = "hyperperiod-overflow"
            else:
                if not math.isfinite(hyper) or hyper <= 0:
                    reason = "hyperperiod-overflow"
        if not reason:
            max_offset = max(
                t.spec.offset for t in sim.periodic_tasks
            )
            base = float(
                Fraction(hyper) * math.ceil(Fraction(max_offset) / Fraction(hyper))
            )
            if base + hyper >= until - EPS:
                # fewer than two boundaries fit: nothing to compare
                reason = "horizon-shorter-than-hyperperiod"
        if reason:
            report.status = "ineligible"
            report.reason = reason
            _stand_down(reason, mode)
            return report
        report.hyperperiod = hyper
        report.base = base
        tracker = cls(sim, until, report)
        sim._cycle_tracker = tracker
        # sentinel elision trades event positions for speed; the
        # fingerprint needs the sentinels armed, and the trace must be
        # position-complete for window accounting
        sim._elide_deadlines = False
        sim.queue.schedule(base, tracker._on_sample, order=3)
        return report

    def __init__(self, sim, until: float, report: CycleReport) -> None:
        self.sim = sim
        self.until = until
        self.report = report
        self._seen: dict[tuple, _Sample] = {}
        self._k = 0  # boundary counter: t_k = base + k * hyperperiod
        self._entity_index = {id(e): i for i, e in enumerate(sim.entities)}
        self._skip_shift = 0.0
        self._skip_windows = 0

    # -- sampling ----------------------------------------------------------

    def _on_sample(self, now: float) -> None:
        report = self.report
        report.samples += 1
        fingerprint = self._fingerprint(now)
        previous = self._seen.get(fingerprint)
        if previous is None:
            self._seen[fingerprint] = self._snapshot(now)
            self._k += 1
            next_time = report.base + self._k * report.hyperperiod
            if next_time < self.until - EPS:
                self.sim.queue.schedule(next_time, self._on_sample, order=3)
            return
        self._on_detected(previous, now)

    def _snapshot(self, now: float) -> _Sample:
        count, row = _segment_rows(self.sim.trace)
        tails = []
        k = count - 1
        while k >= 0:
            start, end, _entity = row(k)
            if end < now - EPS:
                break
            tails.append((k, end))
            k -= 1
        return _Sample(
            time=now,
            seg_count=count,
            evt_count=_event_count(self.sim.trace),
            tails=tuple(tails),
        )

    def _fingerprint(self, now: float) -> tuple:
        """Canonical relative kernel state at boundary ``now``.

        Positional over the registration order; all times are offsets
        from ``now`` compared with exact float equality.  Next-release
        phases are provably boundary-invariant (boundaries are offset-
        adjusted hyperperiod multiples) and deadline sentinels of live
        jobs are implied by the queued-job deadlines, so neither needs
        encoding; sentinels of completed jobs are no-ops either way.
        """
        sim = self.sim
        index_of = self._entity_index
        state = []
        for entity in sim.entities:
            state.append((
                entity._shed_pending,
                tuple(
                    (
                        job.remaining,
                        job.start_time is not None,
                        now - job.release,
                        job.deadline - now,
                    )
                    for job in entity._queue
                ),
            ))
        running = getattr(sim, "_running")
        if isinstance(running, list):  # multicore: per-core run state
            run_state = tuple(
                index_of[id(e)] if e is not None and e._queue else -1
                for e in running
            )
            last_core = tuple(sorted(
                (index_of[ident], core)
                for ident, core in sim._last_core.items()
                if ident in index_of
            ))
            return (tuple(state), run_state, last_core)
        run_state = (
            index_of[id(running)]
            if running is not None and running._queue else -1
        )
        return (tuple(state), run_state)

    # -- detection and skip -------------------------------------------------

    def _on_detected(self, previous: _Sample, now: float) -> None:
        sim = self.sim
        report = self.report
        period = now - previous.time
        report.status = "detected"
        report.cycle_start = previous.time
        report.cycle_period = period
        report.detected_at = now
        self._capture_window(previous, now)
        windows = 0
        if report.mode == "fastforward":
            windows = int((self.until - now) // period)
            while windows > 0 and now + windows * period > self.until:
                windows -= 1
            if windows > 0 and not self._skip_is_exact(now, windows, period):
                _stand_down("float-representation", report.mode)
                report.reason = "float-representation"
                windows = 0
        sim.trace.add_event(
            now, _CYCLE, "kernel",
            f"start={previous.time:g} period={period:g} windows={windows}",
        )
        if windows > 0:
            report.status = "fastforwarded"
            report.windows_skipped = windows
            report.skipped_time = windows * period
            self._skip_shift = windows * period
            self._skip_windows = windows
            raise _CycleSkip()
        # detect-only (or refused skip): periodicity is established, so
        # sampling stops; the run continues in full

    def _instance_steps(self, period_ratio_cache: dict, task) -> int | None:
        """Whole activations of ``task`` per cycle period, or None."""
        steps = period_ratio_cache.get(id(task))
        if steps is None:
            ratio = self.report.cycle_period / task._period
            rounded = round(ratio)
            if rounded < 1 or abs(ratio - rounded) > 1e-9:
                return None
            steps = rounded
            period_ratio_cache[id(task)] = steps
        return steps

    def _skip_is_exact(self, now: float, windows: int, period: float) -> bool:
        """True when advancing instances by ``windows`` cycles reproduces
        the uniformly shifted absolute times bit-for-bit.

        Two layers: every task parameter (and the cycle geometry) must
        sit on the dyadic grid (:func:`_on_grid`), which makes *all*
        kernel arithmetic — release instants, slice boundaries, response
        times — translation-invariant across windows; and the pending
        state's relabelled absolute times must equal the uniformly
        shifted ones exactly.  The second check alone is not enough: it
        proves the resume state, but extrapolating the skipped windows'
        response/busy sums also needs every *intermediate* window to be
        a bit-exact translate, which only the grid property guarantees
        (e.g. a period of 0.2 passes the shift check for the pending
        instance yet accumulates ulp drift in later windows).
        """
        sim = self.sim
        for task in sim.periodic_tasks:
            if not (
                _on_grid(task._period)
                and _on_grid(task._offset)
                and _on_grid(task._rel_deadline)
                and _on_grid(task.spec.cost)
            ):
                return False
        if not (_on_grid(period) and _on_grid(now)):
            return False
        shift = windows * period
        cache: dict[int, int] = {}
        self.report.cycle_period = period  # _instance_steps reads it
        for task, _entity, cell, _index in sim._cycle_cells:
            steps = self._instance_steps(cache, task)
            if steps is None:
                return False
            inst = cell[0]
            current = task._offset + inst * task._period
            advanced = task._offset + (inst + windows * steps) * task._period
            if advanced != current + shift:
                return False
        for entity in sim.entities:
            for job in entity._queue:
                task = job.task
                steps = self._instance_steps(cache, task)
                if steps is None:
                    return False
                new_instance = job.instance + windows * steps
                new_release = task._offset + new_instance * task._period
                if new_release != job.release + shift:
                    return False
                if (
                    new_release + task._rel_deadline
                    != job.deadline + shift
                ):
                    return False
        return True

    def apply_skip(self) -> None:
        """Fast-forward the kernel state over the prepared skip.

        Called by the kernel's run() when :meth:`_on_detected` raised
        :class:`_CycleSkip`; the exactness of every rewritten absolute
        time was proven by :meth:`_skip_is_exact` before the raise.
        """
        sim = self.sim
        shift = self._skip_shift
        windows = self._skip_windows
        cache: dict[int, int] = {}
        # release chains: advance each instance cell
        for task, _entity, cell, _index in sim._cycle_cells:
            steps = self._instance_steps(cache, task)
            assert steps is not None
            cell[0] += windows * steps
        # queued jobs: re-label as the activations alive at the resume
        # instant (their trace prefix stays attributed to the original
        # labels, exactly like any other partially-elided history)
        for entity in sim.entities:
            for job in entity._queue:
                task = job.task
                steps = self._instance_steps(cache, task)
                assert steps is not None
                job.instance += windows * steps
                job.name = f"{task._name}#{job.instance}"
                job.release = task._offset + job.instance * task._period
                job.deadline = job.release + task._rel_deadline
                if job.start_time is not None:
                    job.start_time += shift
        # timed callbacks: a uniform shift preserves heap order verbatim.
        # The rewrite must be in place — the lazy release closures hold
        # an alias of this exact list and re-push themselves onto it.
        heap = sim.queue._heap
        heap[:] = [
            (time + shift, order, suborder, seq, callback)
            for time, order, suborder, seq, callback in heap
        ]
        # the EDF ready index keys on absolute deadlines: re-stamp
        if getattr(sim, "_index_mode", None) == "edf":
            for entity in sim.entities:
                if entity._queue:
                    sim._entity_queue_changed(entity)
        # the multicore migration counter extrapolates linearly (its
        # per-cycle MIGRATION events are in the captured window)
        if hasattr(sim, "migrations"):
            sim.migrations += windows * self.report.window_migrations
        sim.now = sim.now + shift

    # -- per-cycle accumulators ---------------------------------------------

    def _capture_window(self, previous: _Sample, now: float) -> None:
        """Measure one full cycle window ``(previous.time, now]`` from the
        trace rows and job records laid down between the two samples."""
        sim = self.sim
        report = self.report
        trace = sim.trace
        t_i = previous.time
        count, row = _segment_rows(trace)
        busy: dict[str, float] = {}
        for k in range(previous.seg_count, count):
            start, end, entity = row(k)
            busy[entity] = busy.get(entity, 0.0) + (end - start)
        for k, old_end in previous.tails:
            start, end, entity = row(k)
            if end > old_end:
                # the straddling row merge-extended into this window
                busy[entity] = busy.get(entity, 0.0) + (end - old_end)
        report.window_busy = busy
        missed: dict[str, int] = {}
        aborted: dict[str, int] = {}
        migrations = 0
        evt_count, evt_row = _event_rows(trace)
        for k in range(previous.evt_count, evt_count):
            kind, subject = evt_row(k)
            if kind is _MISS:
                task = subject.rsplit("#", 1)[0]
                missed[task] = missed.get(task, 0) + 1
            elif kind is _ABORT:
                task = subject.rsplit("#", 1)[0]
                aborted[task] = aborted.get(task, 0) + 1
            elif kind is _MIGRATION:
                migrations += 1
        report.window_missed = missed
        report.window_aborted = aborted
        report.window_migrations = migrations
        released: dict[str, int] = {}
        completed: dict[str, int] = {}
        resp_sum: dict[str, float] = {}
        resp_max: dict[str, float] = {}
        for task in sim.periodic_tasks:
            name = task._name
            n_rel = n_done = 0
            r_sum = 0.0
            r_max = 0.0
            for job in task.jobs:
                # membership mirrors the event order at a boundary:
                # releases fire after the sampler, completions before it
                if t_i <= job.release < now:
                    n_rel += 1
                finish = job.finish_time
                if (
                    job.state is _COMPLETED
                    and finish is not None
                    and t_i < finish <= now
                ):
                    n_done += 1
                    rt = finish - job.release
                    r_sum += rt
                    if rt > r_max:
                        r_max = rt
            released[name] = n_rel
            completed[name] = n_done
            resp_sum[name] = r_sum
            resp_max[name] = r_max
        report.window_released = released
        report.window_completed = completed
        report.window_response_sum = resp_sum
        report.window_response_max = resp_max


# -- trace row accessors (positional reads over both trace layouts) ---------


def _segment_rows(trace):
    if type(trace) is CompactTrace:
        starts = trace._seg_start
        ends = trace._seg_end
        entities = trace._seg_entity

        def row(k: int):
            return starts[k], ends[k], entities[k]

        return len(starts), row
    segments = trace.segments

    def row(k: int):
        segment = segments[k]
        return segment.start, segment.end, segment.entity

    return len(segments), row


def _event_rows(trace):
    if type(trace) is CompactTrace:
        kinds = trace._evt_kind
        subjects = trace._evt_subject

        def row(k: int):
            return kinds[k], subjects[k]

        return len(kinds), row
    events = trace.events

    def row(k: int):
        event = events[k]
        return event.kind, event.subject

    return len(events), row


def _event_count(trace) -> int:
    if type(trace) is CompactTrace:
        return len(trace._evt_time)
    return len(trace.events)
